//! The SWIFI-style fault-injection campaign (paper §VI-B, Tables III & IV).
//!
//! Each run boots a full split stack, starts the workload the paper used —
//! an interactive TCP session (the SSH stand-in) and periodic DNS queries
//! over UDP — injects one fault into a randomly selected component, waits for
//! the reincarnation server to recover it, and then classifies the outcome:
//!
//! * was the crash fully transparent (the existing TCP session and the UDP
//!   socket kept working without any manual action)?
//! * is the machine still reachable from outside (a new TCP connection can
//!   be opened), possibly after a manual component restart?
//! * did the crash break established TCP connections?
//! * was UDP unaffected?
//! * was a full reboot of the stack necessary?

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use newt_kernel::rs::FaultAction;
use newt_net::link::LinkConfig;
use newt_net::peer::{DNS_PORT, SSH_PORT};
use newt_stack::builder::{NewtStack, StackConfig};
use newt_stack::endpoints::Component;

/// Which fault is injected (the paper's tool injects code mutations; the
/// observable effects are crashes and hangs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The component panics.
    Crash,
    /// The component stops making progress until the watchdog reaps it.
    Hang,
}

impl FaultKind {
    /// The reincarnation-server fault action implementing this kind.
    pub fn action(&self) -> FaultAction {
        match self {
            FaultKind::Crash => FaultAction::Crash,
            FaultKind::Hang => FaultAction::Hang,
        }
    }
}

/// Configuration of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of fault-injection runs.
    pub runs: usize,
    /// RNG seed (runs are reproducible for a given seed).
    pub seed: u64,
    /// Number of replicated stack pipelines each run boots
    /// ([`StackConfig::shards`]); the target weight table covers every
    /// replica.
    pub shards: usize,
    /// Virtual-clock speed-up used for each run.
    pub clock_speedup: f64,
    /// Fraction of faults that manifest as hangs rather than crashes.
    pub hang_fraction: f64,
    /// Per-component selection weights `(component, weight)`.  Left empty
    /// (the default), the table is derived from the booted topology via
    /// [`CampaignConfig::effective_weights`], so every per-shard replica is
    /// reachable by injection; a non-empty list overrides it.
    pub weights: Vec<(Component, u32)>,
    /// Real-time budget for each recovery wait.
    pub recovery_timeout: Duration,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            runs: 100,
            seed: 0x2012_d5ef,
            shards: 1,
            clock_speedup: 60.0,
            hang_fraction: 0.12,
            weights: Vec::new(),
            recovery_timeout: Duration::from_secs(20),
        }
    }
}

impl CampaignConfig {
    /// A small campaign suitable for unit tests and quick smoke runs.
    pub fn quick(runs: usize) -> Self {
        CampaignConfig {
            runs,
            ..Self::default()
        }
    }

    /// The components a run of this campaign can inject into: the paper's
    /// five classes (Table III), with the TCP/UDP/IP classes expanded to
    /// one target per configured shard replica.
    pub fn fault_targets(&self) -> Vec<Component> {
        topology_fault_targets(self.shards, false)
    }

    /// The weight table actually used for target selection: the explicit
    /// [`CampaignConfig::weights`] if non-empty, otherwise derived from the
    /// booted topology by [`derive_weights`].
    pub fn effective_weights(&self) -> Vec<(Component, u32)> {
        if self.weights.is_empty() {
            derive_weights(&self.fault_targets())
        } else {
            self.weights.clone()
        }
    }

    /// The deterministic injection schedule of this campaign: for a given
    /// configuration (seed, shard count, weights, …) the same sequence of
    /// `(target, fault kind)` pairs on any host — the reproducibility the
    /// determinism test pins down.  Different shard counts derive
    /// different weight tables and therefore different sequences.
    pub fn schedule(&self) -> Vec<(Component, FaultKind)> {
        let weights = self.effective_weights();
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.runs)
            .map(|_| roll_single_fault(&weights, self.hang_fraction, &mut rng))
            .collect()
    }
}

/// Draws one weighted single fault — the target pick plus the crash/hang
/// roll — from `rng`.  The one definition both campaigns schedule with,
/// so their fault-kind selection can never silently diverge.
pub(crate) fn roll_single_fault(
    weights: &[(Component, u32)],
    hang_fraction: f64,
    rng: &mut StdRng,
) -> (Component, FaultKind) {
    let target = pick_target(weights, rng);
    let kind = if rng.gen::<f64>() < hang_fraction {
        FaultKind::Hang
    } else {
        FaultKind::Crash
    };
    (target, kind)
}

/// Table III class weights (out of 100 injected faults): how often the
/// paper's injector hit each component class.
const CLASS_WEIGHTS: [(u32, &str); 6] = [
    (25, "tcp"),
    (10, "udp"),
    (24, "ip"),
    (25, "pf"),
    (16, "driver"),
    (8, "syscall"),
];

/// The injectable components of a `shards`-wide Split topology — the
/// single spelling both campaigns derive their target lists from (kept in
/// sync with the booted stack by the integration tests, which compare it
/// against [`NewtStack::fault_targets`](newt_stack::builder::NewtStack::fault_targets)).
/// A singleton stack keeps the legacy `Tcp`/`Udp`/`Ip` spellings; the
/// paper's campaign excludes SYSCALL (Table III never hit it), the
/// dependability campaign includes it.
pub fn topology_fault_targets(shards: usize, include_syscall: bool) -> Vec<Component> {
    let mut targets: Vec<Component> = if shards <= 1 {
        vec![Component::Tcp, Component::Udp, Component::Ip]
    } else {
        (0..shards)
            .flat_map(|s| {
                [
                    Component::TcpShard(s),
                    Component::UdpShard(s),
                    Component::IpShard(s),
                ]
            })
            .collect()
    };
    targets.push(Component::PacketFilter);
    targets.push(Component::Driver(0));
    if include_syscall {
        targets.push(Component::Syscall);
    }
    targets
}

/// Returns the component's class label (the Table III row it belongs to).
fn class_of(component: Component) -> &'static str {
    match component {
        Component::Tcp | Component::TcpShard(_) => "tcp",
        Component::Udp | Component::UdpShard(_) => "udp",
        Component::Ip | Component::IpShard(_) => "ip",
        Component::PacketFilter => "pf",
        Component::Driver(_) => "driver",
        Component::Syscall | Component::SyscallShard(_) => "syscall",
    }
}

/// Returns the Table III weight of a component class (syscall, which the
/// paper does not inject into, gets a small weight for the dependability
/// campaign that does).
fn weight_of_class(class: &str) -> u32 {
    CLASS_WEIGHTS
        .iter()
        .find(|(_, name)| *name == class)
        .map(|(w, _)| *w)
        .unwrap_or(1)
}

/// Derives a selection weight table from a booted topology's injectable
/// components ([`NewtStack::fault_targets`](newt_stack::builder::NewtStack::fault_targets)):
/// each class keeps its Table III share, split evenly over its replicas,
/// so a 4-shard stack injects into `tcp.3` as readily as into `tcp.0`.
pub fn derive_weights(targets: &[Component]) -> Vec<(Component, u32)> {
    let mut class_counts: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
    for target in targets {
        *class_counts.entry(class_of(*target)).or_insert(0) += 1;
    }
    targets
        .iter()
        .map(|target| {
            let class = class_of(*target);
            let replicas = class_counts[class].max(1);
            (*target, (weight_of_class(class) / replicas).max(1))
        })
        .collect()
}

/// Outcome of a single fault-injection run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunOutcome {
    /// The component the fault was injected into.
    pub target: Component,
    /// The kind of fault injected.
    pub kind: FaultKind,
    /// The crash was detected and the component restarted automatically.
    pub recovered_automatically: bool,
    /// The interactive TCP session survived the fault.
    pub tcp_session_survived: bool,
    /// A new TCP connection could be established afterwards.
    pub reachable: bool,
    /// The reachability required a manual component restart first.
    pub manually_fixed: bool,
    /// The UDP socket kept working across the fault.
    pub udp_transparent: bool,
    /// Only a full stack reboot would have restored service.
    pub reboot_needed: bool,
}

/// Aggregate results of a campaign: Table III (fault distribution) and
/// Table IV (consequences).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Individual run outcomes.
    pub runs: Vec<RunOutcome>,
}

impl CampaignReport {
    /// Total number of runs.
    pub fn total(&self) -> usize {
        self.runs.len()
    }

    /// Number of faults injected into `component` (a Table III cell).
    pub fn injected_into(&self, component: Component) -> usize {
        self.runs.iter().filter(|r| r.target == component).count()
    }

    /// Runs where recovery was fully transparent (Table IV row 1).
    pub fn fully_transparent(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| {
                r.recovered_automatically
                    && r.tcp_session_survived
                    && r.udp_transparent
                    && !r.manually_fixed
                    && !r.reboot_needed
            })
            .count()
    }

    /// Runs after which the host was reachable from outside (Table IV row 2),
    /// excluding those that needed a manual fix.
    pub fn reachable(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.reachable && !r.manually_fixed)
            .count()
    }

    /// Runs that were only reachable after a manual component restart.
    pub fn manually_fixed(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.reachable && r.manually_fixed)
            .count()
    }

    /// Runs in which established TCP connections broke (Table IV row 3).
    pub fn tcp_broken(&self) -> usize {
        self.runs.iter().filter(|r| !r.tcp_session_survived).count()
    }

    /// Runs transparent to UDP (Table IV row 4).
    pub fn udp_transparent(&self) -> usize {
        self.runs.iter().filter(|r| r.udp_transparent).count()
    }

    /// Runs that required a reboot (Table IV row 5).
    pub fn reboots(&self) -> usize {
        self.runs.iter().filter(|r| r.reboot_needed).count()
    }

    /// Number of faults injected into any replica of `component`'s class
    /// (a Table III cell: on a sharded stack `tcp.0` … `tcp.3` all count
    /// towards the TCP row).
    pub fn injected_into_class(&self, component: Component) -> usize {
        let class = class_of(component);
        self.runs
            .iter()
            .filter(|r| class_of(r.target) == class)
            .count()
    }

    /// Renders Table III (distribution of crashes over the components).
    pub fn render_table3(&self) -> String {
        let classes = [
            ("TCP", Component::Tcp),
            ("UDP", Component::Udp),
            ("IP", Component::Ip),
            ("PF", Component::PacketFilter),
            ("Driver", Component::Driver(0)),
        ];
        let mut out = String::from("Table III — distribution of injected faults\n");
        out.push_str(&format!("{:<10} {:>6}\n", "component", "count"));
        out.push_str(&format!("{:<10} {:>6}\n", "Total", self.total()));
        for (label, component) in classes {
            out.push_str(&format!(
                "{:<10} {:>6}\n",
                label,
                self.injected_into_class(component)
            ));
        }
        out
    }

    /// Renders Table IV (consequences of the crashes), paper values alongside.
    pub fn render_table4(&self) -> String {
        let total = self.total().max(1) as f64;
        let scale = 100.0 / total;
        let mut out = String::from("Table IV — consequences of crashes (normalised to 100 runs)\n");
        out.push_str(&format!(
            "{:<38} {:>9} {:>9}\n",
            "outcome", "paper", "measured"
        ));
        let rows = [
            (
                "Fully transparent crashes",
                70.0,
                self.fully_transparent() as f64 * scale,
            ),
            (
                "Reachable from outside",
                90.0,
                self.reachable() as f64 * scale,
            ),
            (
                "  (additionally after manual fix)",
                6.0,
                self.manually_fixed() as f64 * scale,
            ),
            (
                "Crash broke TCP connections",
                30.0,
                self.tcp_broken() as f64 * scale,
            ),
            (
                "Transparent to UDP",
                95.0,
                self.udp_transparent() as f64 * scale,
            ),
            ("Reboot necessary", 3.0, self.reboots() as f64 * scale),
        ];
        for (label, paper, measured) in rows {
            out.push_str(&format!("{:<38} {:>9.0} {:>9.0}\n", label, paper, measured));
        }
        out
    }
}

/// Runs a full campaign.
///
/// # Examples
///
/// A one-run smoke campaign (the real Table III/IV experiment uses
/// [`CampaignConfig::default`]'s 100 runs):
///
/// ```
/// use newt_faults::{run_campaign, CampaignConfig};
///
/// let config = CampaignConfig {
///     clock_speedup: 50.0,
///     ..CampaignConfig::quick(1)
/// };
/// let report = run_campaign(&config);
/// assert_eq!(report.total(), 1);
/// assert!(report.fully_transparent() <= report.total());
/// ```
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let mut report = CampaignReport::default();
    for (target, kind) in config.schedule() {
        let outcome = run_one(config, target, kind);
        report.runs.push(outcome);
    }
    report
}

pub(crate) fn pick_target(weights: &[(Component, u32)], rng: &mut StdRng) -> Component {
    let total: u32 = weights.iter().map(|(_, w)| *w).sum();
    let mut pick = rng.gen_range(0..total.max(1));
    for (component, weight) in weights {
        if pick < *weight {
            return *component;
        }
        pick -= weight;
    }
    weights.last().map(|(c, _)| *c).unwrap_or(Component::Ip)
}

/// Runs a single fault-injection experiment against a freshly booted stack.
pub fn run_one(config: &CampaignConfig, target: Component, kind: FaultKind) -> RunOutcome {
    let stack_config = StackConfig::newtos()
        .shards(config.shards)
        .link(LinkConfig::unshaped())
        .clock_speedup(config.clock_speedup);
    // Hang detection relies on the heartbeat watchdog; use a timeout short
    // enough (in virtual time) that reaping happens promptly at this
    // speed-up without risking spurious reaps of healthy services.
    let stack_config = StackConfig {
        heartbeat_timeout: Duration::from_secs(20),
        ..stack_config
    };
    let stack = NewtStack::start(stack_config);
    let peer_addr = StackConfig::peer_addr(0);
    let client = stack.client().with_timeout(Duration::from_secs(8));

    // Workload: an interactive SSH-like session plus a DNS resolver socket.
    let ssh = client.tcp_socket().ok();
    let mut tcp_ok_before = false;
    if let Some(ssh) = &ssh {
        if ssh.connect(peer_addr, SSH_PORT).is_ok() {
            tcp_ok_before = ssh_exchange(ssh, b"uname -a\n");
        }
    }
    let dns = client.udp_socket().ok();
    let mut udp_ok_before = false;
    if let Some(dns) = &dns {
        let _ = dns.bind(0);
        udp_ok_before = dns_query(dns, peer_addr, b"newtos.example");
    }

    // Inject the fault.
    let restarts_before = stack.restart_count(target);
    stack.inject_fault(target, kind.action());

    // Wait for the fault to take effect (the component crashes on its next
    // fault check) and for the reincarnation server to restart it.
    let crash_deadline = std::time::Instant::now() + config.recovery_timeout;
    while stack.restart_count(target) == restarts_before
        && std::time::Instant::now() < crash_deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    let recovered_automatically = stack.restart_count(target) > restarts_before
        && stack.wait_component_running(target, config.recovery_timeout);
    // Let recovery propagate (re-attachments, ARP, connection resync).
    std::thread::sleep(Duration::from_millis(150));

    // Did the existing TCP session survive?
    let tcp_session_survived = tcp_ok_before
        && ssh
            .as_ref()
            .map(|s| ssh_exchange(s, b"echo still-alive\n"))
            .unwrap_or(false);

    // Is the machine reachable from outside (new connection)?
    let mut manually_fixed = false;
    let mut reachable = can_connect(&client, peer_addr);
    if !reachable {
        // Manual intervention: restart the faulty component explicitly, as
        // the paper's authors did for a handful of runs.
        stack.live_update(target);
        stack.wait_component_running(target, config.recovery_timeout);
        std::thread::sleep(Duration::from_millis(150));
        reachable = can_connect(&client, peer_addr);
        manually_fixed = reachable;
    }
    let reboot_needed = !reachable;

    // Is UDP still transparent on the *existing* socket?
    let udp_transparent = udp_ok_before
        && dns
            .as_ref()
            .map(|s| dns_query(s, peer_addr, b"after-fault"))
            .unwrap_or(false);

    stack.shutdown();
    RunOutcome {
        target,
        kind,
        recovered_automatically,
        tcp_session_survived,
        reachable,
        manually_fixed,
        udp_transparent,
        reboot_needed,
    }
}

fn ssh_exchange(socket: &newt_stack::posix::TcpSocket, line: &[u8]) -> bool {
    if socket.send_all(line).is_err() {
        return false;
    }
    let mut buf = vec![0u8; line.len()];
    socket.recv_exact(&mut buf).is_ok() && buf == line
}

fn dns_query(socket: &newt_stack::posix::UdpSocket, peer: std::net::Ipv4Addr, name: &[u8]) -> bool {
    if socket.send_to(name, peer, DNS_PORT).is_err() {
        return false;
    }
    match socket.recv_from() {
        Ok((payload, _, _)) => payload.starts_with(b"answer:"),
        Err(_) => false,
    }
}

fn can_connect(client: &newt_stack::posix::NetClient, peer: std::net::Ipv4Addr) -> bool {
    match client.tcp_socket() {
        Ok(socket) => {
            let ok = socket.connect(peer, SSH_PORT).is_ok() && ssh_exchange(&socket, b"probe\n");
            let _ = socket.close();
            ok
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_target_distribution_covers_all_components() {
        let config = CampaignConfig::default();
        let weights = config.effective_weights();
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..2000 {
            *counts
                .entry(pick_target(&weights, &mut rng))
                .or_insert(0usize) += 1;
        }
        // Every component is picked, roughly according to its weight.
        assert!(counts[&Component::Tcp] > counts[&Component::Udp]);
        assert!(counts[&Component::PacketFilter] > counts[&Component::Driver(0)]);
        assert_eq!(counts.len(), 5);
    }

    #[test]
    fn derived_weights_reach_every_shard_replica() {
        // The pre-fix table hardcoded the singleton spellings, leaving
        // replicas 1..n unreachable by injection on a sharded stack; the
        // derived table must cover all of them.
        let config = CampaignConfig {
            shards: 4,
            ..CampaignConfig::default()
        };
        let weights = config.effective_weights();
        for s in 0..4 {
            for component in [
                Component::TcpShard(s),
                Component::UdpShard(s),
                Component::IpShard(s),
            ] {
                let weight = weights
                    .iter()
                    .find(|(c, _)| *c == component)
                    .map(|(_, w)| *w);
                assert!(
                    weight.unwrap_or(0) > 0,
                    "{component} must be selectable, weights: {weights:?}"
                );
            }
        }
        assert!(weights.iter().any(|(c, _)| *c == Component::PacketFilter));
        assert!(weights.iter().any(|(c, _)| *c == Component::Driver(0)));
        // The class shares survive the split: all TCP replicas together
        // still outweigh all UDP replicas together.
        let class_total = |probe: Component| -> u32 {
            weights
                .iter()
                .filter(|(c, _)| class_of(*c) == class_of(probe))
                .map(|(_, w)| *w)
                .sum()
        };
        assert!(class_total(Component::Tcp) > class_total(Component::Udp));
    }

    #[test]
    fn explicit_weights_override_the_derived_table() {
        let config = CampaignConfig {
            shards: 4,
            weights: vec![(Component::PacketFilter, 1)],
            ..CampaignConfig::default()
        };
        assert_eq!(
            config.effective_weights(),
            vec![(Component::PacketFilter, 1)]
        );
    }

    #[test]
    fn schedule_is_deterministic_for_a_seed() {
        let config = CampaignConfig::quick(20);
        assert_eq!(config.schedule(), config.schedule());
        let other_seed = CampaignConfig {
            seed: 1,
            ..CampaignConfig::quick(20)
        };
        assert_ne!(config.schedule(), other_seed.schedule());
    }

    #[test]
    fn report_classification_logic() {
        let mut report = CampaignReport::default();
        report.runs.push(RunOutcome {
            target: Component::PacketFilter,
            kind: FaultKind::Crash,
            recovered_automatically: true,
            tcp_session_survived: true,
            reachable: true,
            manually_fixed: false,
            udp_transparent: true,
            reboot_needed: false,
        });
        report.runs.push(RunOutcome {
            target: Component::Tcp,
            kind: FaultKind::Crash,
            recovered_automatically: true,
            tcp_session_survived: false,
            reachable: true,
            manually_fixed: false,
            udp_transparent: true,
            reboot_needed: false,
        });
        report.runs.push(RunOutcome {
            target: Component::Ip,
            kind: FaultKind::Hang,
            recovered_automatically: false,
            tcp_session_survived: false,
            reachable: false,
            manually_fixed: false,
            udp_transparent: false,
            reboot_needed: true,
        });
        assert_eq!(report.total(), 3);
        assert_eq!(report.fully_transparent(), 1);
        assert_eq!(report.reachable(), 2);
        assert_eq!(report.tcp_broken(), 2);
        assert_eq!(report.udp_transparent(), 2);
        assert_eq!(report.reboots(), 1);
        assert_eq!(report.injected_into(Component::Tcp), 1);
        let t3 = report.render_table3();
        assert!(t3.contains("Total"));
        let t4 = report.render_table4();
        assert!(t4.contains("Reboot necessary"));
    }

    #[test]
    fn pf_crash_run_is_fully_transparent() {
        let config = CampaignConfig {
            clock_speedup: 50.0,
            ..CampaignConfig::quick(1)
        };
        let outcome = run_one(&config, Component::PacketFilter, FaultKind::Crash);
        assert!(
            outcome.recovered_automatically,
            "pf was not restarted: {outcome:?}"
        );
        assert!(
            outcome.tcp_session_survived,
            "ssh session should survive a pf crash: {outcome:?}"
        );
        assert!(
            outcome.udp_transparent,
            "udp should survive a pf crash: {outcome:?}"
        );
        assert!(outcome.reachable);
        assert!(!outcome.reboot_needed);
    }

    #[test]
    fn tcp_crash_breaks_connections_but_machine_stays_reachable() {
        let config = CampaignConfig {
            clock_speedup: 50.0,
            ..CampaignConfig::quick(1)
        };
        let outcome = run_one(&config, Component::Tcp, FaultKind::Crash);
        assert!(
            outcome.recovered_automatically,
            "tcp was not restarted: {outcome:?}"
        );
        assert!(
            !outcome.tcp_session_survived,
            "established connections are lost on a tcp crash"
        );
        assert!(
            outcome.reachable,
            "new connections must be possible after the restart: {outcome:?}"
        );
        assert!(outcome.udp_transparent, "udp is unaffected by a tcp crash");
        assert!(!outcome.reboot_needed);
    }

    #[test]
    fn small_campaign_produces_consistent_report() {
        let config = CampaignConfig {
            clock_speedup: 60.0,
            ..CampaignConfig::quick(3)
        };
        let report = run_campaign(&config);
        assert_eq!(report.total(), 3);
        // Internal consistency: counters never exceed the number of runs.
        assert!(report.fully_transparent() <= report.total());
        assert!(report.udp_transparent() <= report.total());
        assert!(report.reachable() + report.manually_fixed() <= report.total());
    }
}
