//! The SWIFI-style fault-injection campaign (paper §VI-B, Tables III & IV).
//!
//! Each run boots a full split stack, starts the workload the paper used —
//! an interactive TCP session (the SSH stand-in) and periodic DNS queries
//! over UDP — injects one fault into a randomly selected component, waits for
//! the reincarnation server to recover it, and then classifies the outcome:
//!
//! * was the crash fully transparent (the existing TCP session and the UDP
//!   socket kept working without any manual action)?
//! * is the machine still reachable from outside (a new TCP connection can
//!   be opened), possibly after a manual component restart?
//! * did the crash break established TCP connections?
//! * was UDP unaffected?
//! * was a full reboot of the stack necessary?

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use newt_kernel::rs::FaultAction;
use newt_net::link::LinkConfig;
use newt_net::peer::{DNS_PORT, SSH_PORT};
use newt_stack::builder::{NewtStack, StackConfig};
use newt_stack::endpoints::Component;

/// Which fault is injected (the paper's tool injects code mutations; the
/// observable effects are crashes and hangs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The component panics.
    Crash,
    /// The component stops making progress until the watchdog reaps it.
    Hang,
}

/// Configuration of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of fault-injection runs.
    pub runs: usize,
    /// RNG seed (runs are reproducible for a given seed).
    pub seed: u64,
    /// Virtual-clock speed-up used for each run.
    pub clock_speedup: f64,
    /// Fraction of faults that manifest as hangs rather than crashes.
    pub hang_fraction: f64,
    /// Per-component selection weights `(component, weight)`; defaults to
    /// the distribution of Table III.
    pub weights: Vec<(Component, u32)>,
    /// Real-time budget for each recovery wait.
    pub recovery_timeout: Duration,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            runs: 100,
            seed: 0x2012_d5ef,
            clock_speedup: 60.0,
            hang_fraction: 0.12,
            weights: vec![
                (Component::Tcp, 25),
                (Component::Udp, 10),
                (Component::Ip, 24),
                (Component::PacketFilter, 25),
                (Component::Driver(0), 16),
            ],
            recovery_timeout: Duration::from_secs(20),
        }
    }
}

impl CampaignConfig {
    /// A small campaign suitable for unit tests and quick smoke runs.
    pub fn quick(runs: usize) -> Self {
        CampaignConfig {
            runs,
            ..Self::default()
        }
    }
}

/// Outcome of a single fault-injection run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunOutcome {
    /// The component the fault was injected into.
    pub target: Component,
    /// The kind of fault injected.
    pub kind: FaultKind,
    /// The crash was detected and the component restarted automatically.
    pub recovered_automatically: bool,
    /// The interactive TCP session survived the fault.
    pub tcp_session_survived: bool,
    /// A new TCP connection could be established afterwards.
    pub reachable: bool,
    /// The reachability required a manual component restart first.
    pub manually_fixed: bool,
    /// The UDP socket kept working across the fault.
    pub udp_transparent: bool,
    /// Only a full stack reboot would have restored service.
    pub reboot_needed: bool,
}

/// Aggregate results of a campaign: Table III (fault distribution) and
/// Table IV (consequences).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Individual run outcomes.
    pub runs: Vec<RunOutcome>,
}

impl CampaignReport {
    /// Total number of runs.
    pub fn total(&self) -> usize {
        self.runs.len()
    }

    /// Number of faults injected into `component` (a Table III cell).
    pub fn injected_into(&self, component: Component) -> usize {
        self.runs.iter().filter(|r| r.target == component).count()
    }

    /// Runs where recovery was fully transparent (Table IV row 1).
    pub fn fully_transparent(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| {
                r.recovered_automatically
                    && r.tcp_session_survived
                    && r.udp_transparent
                    && !r.manually_fixed
                    && !r.reboot_needed
            })
            .count()
    }

    /// Runs after which the host was reachable from outside (Table IV row 2),
    /// excluding those that needed a manual fix.
    pub fn reachable(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.reachable && !r.manually_fixed)
            .count()
    }

    /// Runs that were only reachable after a manual component restart.
    pub fn manually_fixed(&self) -> usize {
        self.runs
            .iter()
            .filter(|r| r.reachable && r.manually_fixed)
            .count()
    }

    /// Runs in which established TCP connections broke (Table IV row 3).
    pub fn tcp_broken(&self) -> usize {
        self.runs.iter().filter(|r| !r.tcp_session_survived).count()
    }

    /// Runs transparent to UDP (Table IV row 4).
    pub fn udp_transparent(&self) -> usize {
        self.runs.iter().filter(|r| r.udp_transparent).count()
    }

    /// Runs that required a reboot (Table IV row 5).
    pub fn reboots(&self) -> usize {
        self.runs.iter().filter(|r| r.reboot_needed).count()
    }

    /// Renders Table III (distribution of crashes over the components).
    pub fn render_table3(&self) -> String {
        let components = [
            ("TCP", Component::Tcp),
            ("UDP", Component::Udp),
            ("IP", Component::Ip),
            ("PF", Component::PacketFilter),
            ("Driver", Component::Driver(0)),
        ];
        let mut out = String::from("Table III — distribution of injected faults\n");
        out.push_str(&format!("{:<10} {:>6}\n", "component", "count"));
        out.push_str(&format!("{:<10} {:>6}\n", "Total", self.total()));
        for (label, component) in components {
            out.push_str(&format!(
                "{:<10} {:>6}\n",
                label,
                self.injected_into(component)
            ));
        }
        out
    }

    /// Renders Table IV (consequences of the crashes), paper values alongside.
    pub fn render_table4(&self) -> String {
        let total = self.total().max(1) as f64;
        let scale = 100.0 / total;
        let mut out = String::from("Table IV — consequences of crashes (normalised to 100 runs)\n");
        out.push_str(&format!(
            "{:<38} {:>9} {:>9}\n",
            "outcome", "paper", "measured"
        ));
        let rows = [
            (
                "Fully transparent crashes",
                70.0,
                self.fully_transparent() as f64 * scale,
            ),
            (
                "Reachable from outside",
                90.0,
                self.reachable() as f64 * scale,
            ),
            (
                "  (additionally after manual fix)",
                6.0,
                self.manually_fixed() as f64 * scale,
            ),
            (
                "Crash broke TCP connections",
                30.0,
                self.tcp_broken() as f64 * scale,
            ),
            (
                "Transparent to UDP",
                95.0,
                self.udp_transparent() as f64 * scale,
            ),
            ("Reboot necessary", 3.0, self.reboots() as f64 * scale),
        ];
        for (label, paper, measured) in rows {
            out.push_str(&format!("{:<38} {:>9.0} {:>9.0}\n", label, paper, measured));
        }
        out
    }
}

/// Runs a full campaign.
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut report = CampaignReport::default();
    for _ in 0..config.runs {
        let target = pick_target(&config.weights, &mut rng);
        let kind = if rng.gen::<f64>() < config.hang_fraction {
            FaultKind::Hang
        } else {
            FaultKind::Crash
        };
        let outcome = run_one(config, target, kind);
        report.runs.push(outcome);
    }
    report
}

fn pick_target(weights: &[(Component, u32)], rng: &mut StdRng) -> Component {
    let total: u32 = weights.iter().map(|(_, w)| *w).sum();
    let mut pick = rng.gen_range(0..total.max(1));
    for (component, weight) in weights {
        if pick < *weight {
            return *component;
        }
        pick -= weight;
    }
    weights.last().map(|(c, _)| *c).unwrap_or(Component::Ip)
}

/// Runs a single fault-injection experiment against a freshly booted stack.
pub fn run_one(config: &CampaignConfig, target: Component, kind: FaultKind) -> RunOutcome {
    let stack_config = StackConfig::newtos()
        .link(LinkConfig::unshaped())
        .clock_speedup(config.clock_speedup);
    // Hang detection relies on the heartbeat watchdog; use a timeout short
    // enough (in virtual time) that reaping happens promptly at this
    // speed-up without risking spurious reaps of healthy services.
    let stack_config = StackConfig {
        heartbeat_timeout: Duration::from_secs(20),
        ..stack_config
    };
    let stack = NewtStack::start(stack_config);
    let peer_addr = StackConfig::peer_addr(0);
    let client = stack.client().with_timeout(Duration::from_secs(8));

    // Workload: an interactive SSH-like session plus a DNS resolver socket.
    let ssh = client.tcp_socket().ok();
    let mut tcp_ok_before = false;
    if let Some(ssh) = &ssh {
        if ssh.connect(peer_addr, SSH_PORT).is_ok() {
            tcp_ok_before = ssh_exchange(ssh, b"uname -a\n");
        }
    }
    let dns = client.udp_socket().ok();
    let mut udp_ok_before = false;
    if let Some(dns) = &dns {
        let _ = dns.bind(0);
        udp_ok_before = dns_query(dns, peer_addr, b"newtos.example");
    }

    // Inject the fault.
    let action = match kind {
        FaultKind::Crash => FaultAction::Crash,
        FaultKind::Hang => FaultAction::Hang,
    };
    let restarts_before = stack.restart_count(target);
    stack.inject_fault(target, action);

    // Wait for the fault to take effect (the component crashes on its next
    // fault check) and for the reincarnation server to restart it.
    let crash_deadline = std::time::Instant::now() + config.recovery_timeout;
    while stack.restart_count(target) == restarts_before
        && std::time::Instant::now() < crash_deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    let recovered_automatically = stack.restart_count(target) > restarts_before
        && stack.wait_component_running(target, config.recovery_timeout);
    // Let recovery propagate (re-attachments, ARP, connection resync).
    std::thread::sleep(Duration::from_millis(150));

    // Did the existing TCP session survive?
    let tcp_session_survived = tcp_ok_before
        && ssh
            .as_ref()
            .map(|s| ssh_exchange(s, b"echo still-alive\n"))
            .unwrap_or(false);

    // Is the machine reachable from outside (new connection)?
    let mut manually_fixed = false;
    let mut reachable = can_connect(&client, peer_addr);
    if !reachable {
        // Manual intervention: restart the faulty component explicitly, as
        // the paper's authors did for a handful of runs.
        stack.live_update(target);
        stack.wait_component_running(target, config.recovery_timeout);
        std::thread::sleep(Duration::from_millis(150));
        reachable = can_connect(&client, peer_addr);
        manually_fixed = reachable;
    }
    let reboot_needed = !reachable;

    // Is UDP still transparent on the *existing* socket?
    let udp_transparent = udp_ok_before
        && dns
            .as_ref()
            .map(|s| dns_query(s, peer_addr, b"after-fault"))
            .unwrap_or(false);

    stack.shutdown();
    RunOutcome {
        target,
        kind,
        recovered_automatically,
        tcp_session_survived,
        reachable,
        manually_fixed,
        udp_transparent,
        reboot_needed,
    }
}

fn ssh_exchange(socket: &newt_stack::posix::TcpSocket, line: &[u8]) -> bool {
    if socket.send_all(line).is_err() {
        return false;
    }
    let mut buf = vec![0u8; line.len()];
    socket.recv_exact(&mut buf).is_ok() && buf == line
}

fn dns_query(socket: &newt_stack::posix::UdpSocket, peer: std::net::Ipv4Addr, name: &[u8]) -> bool {
    if socket.send_to(name, peer, DNS_PORT).is_err() {
        return false;
    }
    match socket.recv_from() {
        Ok((payload, _, _)) => payload.starts_with(b"answer:"),
        Err(_) => false,
    }
}

fn can_connect(client: &newt_stack::posix::NetClient, peer: std::net::Ipv4Addr) -> bool {
    match client.tcp_socket() {
        Ok(socket) => {
            let ok = socket.connect(peer, SSH_PORT).is_ok() && ssh_exchange(&socket, b"probe\n");
            let _ = socket.close();
            ok
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_target_distribution_covers_all_components() {
        let config = CampaignConfig::default();
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..2000 {
            *counts
                .entry(pick_target(&config.weights, &mut rng))
                .or_insert(0usize) += 1;
        }
        // Every component is picked, roughly according to its weight.
        assert!(counts[&Component::Tcp] > counts[&Component::Udp]);
        assert!(counts[&Component::PacketFilter] > counts[&Component::Driver(0)]);
        assert_eq!(counts.len(), 5);
    }

    #[test]
    fn report_classification_logic() {
        let mut report = CampaignReport::default();
        report.runs.push(RunOutcome {
            target: Component::PacketFilter,
            kind: FaultKind::Crash,
            recovered_automatically: true,
            tcp_session_survived: true,
            reachable: true,
            manually_fixed: false,
            udp_transparent: true,
            reboot_needed: false,
        });
        report.runs.push(RunOutcome {
            target: Component::Tcp,
            kind: FaultKind::Crash,
            recovered_automatically: true,
            tcp_session_survived: false,
            reachable: true,
            manually_fixed: false,
            udp_transparent: true,
            reboot_needed: false,
        });
        report.runs.push(RunOutcome {
            target: Component::Ip,
            kind: FaultKind::Hang,
            recovered_automatically: false,
            tcp_session_survived: false,
            reachable: false,
            manually_fixed: false,
            udp_transparent: false,
            reboot_needed: true,
        });
        assert_eq!(report.total(), 3);
        assert_eq!(report.fully_transparent(), 1);
        assert_eq!(report.reachable(), 2);
        assert_eq!(report.tcp_broken(), 2);
        assert_eq!(report.udp_transparent(), 2);
        assert_eq!(report.reboots(), 1);
        assert_eq!(report.injected_into(Component::Tcp), 1);
        let t3 = report.render_table3();
        assert!(t3.contains("Total"));
        let t4 = report.render_table4();
        assert!(t4.contains("Reboot necessary"));
    }

    #[test]
    fn pf_crash_run_is_fully_transparent() {
        let config = CampaignConfig {
            clock_speedup: 50.0,
            ..CampaignConfig::quick(1)
        };
        let outcome = run_one(&config, Component::PacketFilter, FaultKind::Crash);
        assert!(
            outcome.recovered_automatically,
            "pf was not restarted: {outcome:?}"
        );
        assert!(
            outcome.tcp_session_survived,
            "ssh session should survive a pf crash: {outcome:?}"
        );
        assert!(
            outcome.udp_transparent,
            "udp should survive a pf crash: {outcome:?}"
        );
        assert!(outcome.reachable);
        assert!(!outcome.reboot_needed);
    }

    #[test]
    fn tcp_crash_breaks_connections_but_machine_stays_reachable() {
        let config = CampaignConfig {
            clock_speedup: 50.0,
            ..CampaignConfig::quick(1)
        };
        let outcome = run_one(&config, Component::Tcp, FaultKind::Crash);
        assert!(
            outcome.recovered_automatically,
            "tcp was not restarted: {outcome:?}"
        );
        assert!(
            !outcome.tcp_session_survived,
            "established connections are lost on a tcp crash"
        );
        assert!(
            outcome.reachable,
            "new connections must be possible after the restart: {outcome:?}"
        );
        assert!(outcome.udp_transparent, "udp is unaffected by a tcp crash");
        assert!(!outcome.reboot_needed);
    }

    #[test]
    fn small_campaign_produces_consistent_report() {
        let config = CampaignConfig {
            clock_speedup: 60.0,
            ..CampaignConfig::quick(3)
        };
        let report = run_campaign(&config);
        assert_eq!(report.total(), 3);
        // Internal consistency: counters never exceed the number of runs.
        assert!(report.fully_transparent() <= report.total());
        assert!(report.udp_transparent() <= report.total());
        assert!(report.reachable() + report.manually_fixed() <= report.total());
    }
}
