//! The dependability-under-load campaign: crash-transparency of the
//! *modern* stack — sharded pipelines, GRO, delayed ACKs — while it serves
//! real HTTP traffic.
//!
//! The paper's headline claim (§VI) is that component crashes are
//! transparent to live traffic.  The classic campaign ([`crate::campaign`])
//! reproduces the original experiment: a singleton stack, an SSH stand-in
//! and DNS queries.  This module points the same methodology at the system
//! the later PRs built:
//!
//! * each run boots [`StackConfig::shards`]`(n)` with the receive fast path
//!   on, spawns the `newt-apps` HTTP server (one listener per shard) and
//!   drives it with the in-process load generator — keep-alive connections
//!   entering through the NIC, spread over every shard by RSS, optionally
//!   over a netem-impaired link;
//! * once the load reaches steady state, a fault is injected into a
//!   per-shard component replica, a driver, the packet filter or the
//!   SYSCALL server — or a *correlated* pattern fires: a same-shard
//!   TCP+IP double crash, or a driver-then-IP cascade;
//! * the run then measures what the paper plots: per-run **availability**
//!   (requests completed during the recovery window versus the steady-state
//!   rate), **recovery time** in virtual milliseconds (injection →
//!   replacement incarnation, via [`NewtStack::component_recovery`]),
//!   forced **reconnects**, and byte-exact verification of every response
//!   body;
//! * the outcome is classified with the paper's taxonomy: *transparent* /
//!   *broken TCP* / *manual restart* (a state-preserving harness
//!   intervention nobody noticed) / *reachable after a manual restart* /
//!   *reboot needed*.
//!
//! The module also carries the campaign's mirror image, the
//! **rolling-upgrade** mode ([`run_rolling_upgrade`]): instead of faults,
//! every component of the stack is live-updated one at a time — quiesce,
//! state transfer, resume — under the same HTTP load, and the bar is
//! absolute: zero failed requests, zero forced reconnects, byte-exact
//! bodies, a bounded per-component service gap.
//!
//! `cargo run --release -p newt-bench --bin dependability` sweeps
//! shard counts × link conditions for both modes and writes
//! `BENCH_dependability.json`, the CI-gated record.  See
//! `docs/DEPENDABILITY.md` for how to read it.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use newt_apps::httpd::{Httpd, HttpdConfig};
use newt_apps::loadgen::{run_http_load_with_hook, LoadConfig};
use newt_kernel::rs::ServiceStatus;
use newt_net::link::LinkConfig;
use newt_stack::builder::{NewtStack, StackConfig};
use newt_stack::endpoints::Component;

use crate::campaign::{derive_weights, roll_single_fault, FaultKind};

/// The injection pattern of one run: a single weighted-random fault, or
/// one of the correlated multi-fault modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultMode {
    /// One fault into one component.
    Single(Component, FaultKind),
    /// The TCP and IP servers of one shard crash back to back — the
    /// worst case for that shard's connections (both its transport state
    /// and its packet path go down together).
    SameShardDouble(usize),
    /// A driver crash immediately followed — as soon as the driver's
    /// replacement is spawned — by a crash of one shard's IP server: the
    /// cascade a bad DMA or reset path would trigger.
    DriverIpCascade {
        /// The NIC whose driver crashes first.
        driver: usize,
        /// The shard whose IP server crashes second.
        shard: usize,
    },
}

impl FaultMode {
    /// The `(component, fault kind)` pairs this mode injects, in order.
    /// Correlated modes list more than one pair; [`FaultMode::staged`]
    /// says whether the later pairs wait for the earlier ones to recover.
    pub fn injections(&self) -> Vec<(Component, FaultKind)> {
        match self {
            FaultMode::Single(component, kind) => vec![(*component, *kind)],
            FaultMode::SameShardDouble(shard) => vec![
                (Component::TcpShard(*shard), FaultKind::Crash),
                (Component::IpShard(*shard), FaultKind::Crash),
            ],
            FaultMode::DriverIpCascade { driver, shard } => vec![
                (Component::Driver(*driver), FaultKind::Crash),
                (Component::IpShard(*shard), FaultKind::Crash),
            ],
        }
    }

    /// Whether later injections wait for the previous target's restart
    /// (the cascade) instead of firing all at once (the double fault).
    pub fn staged(&self) -> bool {
        matches!(self, FaultMode::DriverIpCascade { .. })
    }

    /// Whether this is one of the correlated multi-fault modes.
    pub fn is_correlated(&self) -> bool {
        !matches!(self, FaultMode::Single(..))
    }

    /// A compact human/JSON label, e.g. `"tcp.1 crash"`,
    /// `"tcp.2+ip.2 double"`, `"e1000.0->ip.1 cascade"`.
    pub fn label(&self) -> String {
        match self {
            FaultMode::Single(component, FaultKind::Crash) => format!("{component} crash"),
            FaultMode::Single(component, FaultKind::Hang) => format!("{component} hang"),
            FaultMode::SameShardDouble(shard) => format!("tcp.{shard}+ip.{shard} double"),
            FaultMode::DriverIpCascade { driver, shard } => {
                format!("e1000.{driver}->ip.{shard} cascade")
            }
        }
    }
}

/// Configuration of a dependability campaign (one *cell* of the
/// `BENCH_dependability.json` record: one shard count on one link).
#[derive(Debug, Clone)]
pub struct DependabilityConfig {
    /// Replicated stack pipelines each run boots.
    pub shards: usize,
    /// Whether the load crosses a netem-impaired link
    /// ([`LinkConfig::impaired`]) instead of the clean delay link.
    pub impaired: bool,
    /// Number of fault-injection runs.
    pub runs: usize,
    /// How many of the first runs use correlated modes (alternating
    /// same-shard double and driver→IP cascade); the rest are weighted
    /// single faults.
    pub correlated_runs: usize,
    /// RNG seed; the whole injection schedule is a pure function of it.
    pub seed: u64,
    /// Virtual-clock speed-up of each run.
    pub clock_speedup: f64,
    /// Concurrent keep-alive connections (spread over all shards by RSS).
    pub connections: usize,
    /// Requests each connection issues.
    pub requests_per_connection: usize,
    /// Fraction of single faults that hang instead of crashing.
    pub hang_fraction: f64,
    /// Real-time budget for post-run recovery waits.
    pub recovery_timeout: Duration,
    /// Real-time bound on each load run.
    pub run_deadline: Duration,
    /// Real time without a single completed request (after every fault is
    /// injected) before the run concludes automatic recovery failed and
    /// restarts the targets manually.
    pub stall_timeout: Duration,
    /// The reincarnation server's hang-detection heartbeat window
    /// (virtual).  This latency dominates `recovery_ms` for hang faults —
    /// a crash is detected the instant the thread dies, but a hang is
    /// only caught when the heartbeat goes quiet for this long.
    pub heartbeat_timeout: Duration,
}

impl DependabilityConfig {
    /// The standard cell configuration for a shard count and link
    /// condition, as used by the `dependability` bench binary.
    pub fn cell(shards: usize, impaired: bool) -> Self {
        DependabilityConfig {
            shards,
            impaired,
            runs: 8,
            correlated_runs: 2,
            // Distinct schedules per cell, deterministic per cell.
            seed: 0x2012_d5ef ^ ((shards as u64) << 8) ^ (impaired as u64),
            clock_speedup: 3.0,
            connections: (4 * shards).max(6),
            requests_per_connection: 6,
            hang_fraction: 0.25,
            recovery_timeout: Duration::from_secs(20),
            run_deadline: Duration::from_secs(if impaired { 120 } else { 60 }),
            stall_timeout: Duration::from_secs(if impaired { 16 } else { 6 }),
            // Short enough (virtual) that hangs are reaped promptly at
            // this speed-up, long enough that host scheduling noise never
            // reaps a healthy server.  Hang-fault recovery_ms tracks this
            // value almost exactly, so tightening it is the single
            // biggest lever on worst-case recovery latency.
            heartbeat_timeout: Duration::from_secs(3),
        }
    }

    /// A reduced cell for tests: fewer runs, fewer requests.
    pub fn quick(shards: usize, runs: usize) -> Self {
        DependabilityConfig {
            runs,
            correlated_runs: runs.min(1),
            connections: (2 * shards).max(4),
            requests_per_connection: 4,
            ..Self::cell(shards, false)
        }
    }

    /// Every component a run of this campaign can inject into — the
    /// per-shard replicas plus the singletons *including* SYSCALL,
    /// mirroring what [`NewtStack::fault_targets`] reports for the booted
    /// stack.
    pub fn fault_targets(&self) -> Vec<Component> {
        crate::campaign::topology_fault_targets(self.shards, true)
    }

    /// The deterministic injection schedule: the same seed yields the same
    /// mode sequence, whatever host runs it.
    pub fn schedule(&self) -> Vec<FaultMode> {
        let weights = derive_weights(&self.fault_targets());
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.runs)
            .map(|i| {
                if i < self.correlated_runs {
                    let shard = rng.gen_range(0..self.shards.max(1));
                    if i % 2 == 0 {
                        FaultMode::SameShardDouble(shard)
                    } else {
                        FaultMode::DriverIpCascade { driver: 0, shard }
                    }
                } else {
                    let (target, kind) = roll_single_fault(&weights, self.hang_fraction, &mut rng);
                    FaultMode::Single(target, kind)
                }
            })
            .collect()
    }

    fn stack_config(&self) -> StackConfig {
        let link = if self.impaired {
            LinkConfig::impaired()
        } else {
            // The workload bench's methodology: a gigabit metro link whose
            // RTT, not the host's core count, dominates request latency.
            LinkConfig::gigabit().propagation(Duration::from_millis(2))
        };
        let config = StackConfig::newtos()
            .shards(self.shards)
            .link(link)
            .clock_speedup(self.clock_speedup);
        StackConfig {
            heartbeat_timeout: self.heartbeat_timeout,
            ..config
        }
    }

    fn load_config(&self) -> LoadConfig {
        LoadConfig {
            connections: self.connections,
            requests_per_connection: self.requests_per_connection,
            response_timeout: Duration::from_secs(if self.impaired { 30 } else { 6 }),
            run_deadline: self.run_deadline,
            ..LoadConfig::default()
        }
    }
}

/// The paper's outcome taxonomy, applied to a loaded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every request completed, nothing reconnected, every target was
    /// restarted automatically: the crash was invisible to the traffic.
    Transparent,
    /// Every request completed, but only because clients reconnected —
    /// established TCP connections died with the fault.
    BrokenTcp,
    /// Every request completed and no connection was lost, but the harness
    /// had to issue a requested restart ([`NewtStack::live_update`]) to get
    /// there — the watchdog alone did not restore service, yet because the
    /// restart carried hot state over, clients never noticed.  Kept apart
    /// from [`Outcome::ReachableAfterRestart`] so a state-preserving
    /// harness intervention is not conflated with a genuine
    /// connections-lost recovery failure.
    ManualRestart,
    /// Service only came back after a manual component restart *and*
    /// established connections died along the way — the paper's
    /// "reachable after a manual fix" row.
    ReachableAfterRestart,
    /// The load did not complete (or bodies failed verification) even
    /// after a manual restart; only a stack reboot would restore service.
    Reboot,
}

impl Outcome {
    /// The label used in reports and the JSON record.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Transparent => "transparent",
            Outcome::BrokenTcp => "broken-tcp",
            Outcome::ManualRestart => "manual-restart",
            Outcome::ReachableAfterRestart => "reachable-after-restart",
            Outcome::Reboot => "reboot",
        }
    }
}

/// Classifies one loaded run.  `lost_requests` is true when the load did
/// not complete or a body failed verification (or no fault was ever
/// injected — the run never reached steady state); `manual` when the
/// harness issued a requested restart; `reconnects` counts connections
/// forced to reopen after the injection.
pub(crate) fn classify(lost_requests: bool, manual: bool, reconnects: u64) -> Outcome {
    match (lost_requests, manual, reconnects) {
        (true, _, _) => Outcome::Reboot,
        (false, true, 0) => Outcome::ManualRestart,
        (false, true, _) => Outcome::ReachableAfterRestart,
        (false, false, 0) => Outcome::Transparent,
        (false, false, _) => Outcome::BrokenTcp,
    }
}

/// Everything measured about one fault-injection run under load.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The injected mode's label ([`FaultMode::label`]).
    pub mode: String,
    /// Whether the mode was one of the correlated patterns.
    pub correlated: bool,
    /// The classified outcome.
    pub outcome: Outcome,
    /// Requests completed over the whole run.
    pub completed: u64,
    /// Requests the run was supposed to complete.
    pub expected_requests: u64,
    /// Connections forced to reconnect after the injection.
    pub reconnects: u64,
    /// Response bodies that failed byte verification (gated to zero).
    pub verify_failures: u64,
    /// Requests completed during the recovery window relative to the
    /// steady-state rate, capped at 1.0.
    pub availability: f64,
    /// Virtual ms from injection to the crash being detected (for hangs
    /// this contains the heartbeat-timeout detection latency).
    pub detect_ms: f64,
    /// Virtual ms from injection to the last target's replacement
    /// incarnation being spawned.
    pub recovery_ms: f64,
    /// Virtual ms between the last completion before the fault and the
    /// first completion after it — the service gap the fault tore into
    /// the request timeline.
    pub service_gap_ms: f64,
    /// Whether a manual restart was needed.
    pub manually_fixed: bool,
    /// Whether every target was restarted by the reincarnation server
    /// without manual help.
    pub recovered_automatically: bool,
}

/// Aggregate results of one campaign cell.
#[derive(Debug, Clone)]
pub struct DependabilityReport {
    /// Shard count of every run.
    pub shards: usize,
    /// Whether the link was impaired.
    pub impaired: bool,
    /// Individual run records, in schedule order.
    pub runs: Vec<RunRecord>,
}

impl DependabilityReport {
    /// Number of runs with the given outcome.
    pub fn count(&self, outcome: Outcome) -> usize {
        self.runs.iter().filter(|r| r.outcome == outcome).count()
    }

    /// Fraction of runs that were fully transparent, in [0, 1].
    pub fn transparent_fraction(&self) -> f64 {
        self.count(Outcome::Transparent) as f64 / self.runs.len().max(1) as f64
    }

    /// Mean availability during the recovery windows.
    pub fn availability_mean(&self) -> f64 {
        let total: f64 = self.runs.iter().map(|r| r.availability).sum();
        total / self.runs.len().max(1) as f64
    }

    /// Total reconnects forced across all runs.
    pub fn reconnects_total(&self) -> u64 {
        self.runs.iter().map(|r| r.reconnects).sum()
    }

    /// Total body-verification failures across all runs (gated to zero).
    pub fn verify_failures_total(&self) -> u64 {
        self.runs.iter().map(|r| r.verify_failures).sum()
    }

    /// Worst-case detection latency (virtual ms) over the runs whose mode
    /// label contains `class` — e.g. `"hang"` isolates the runs whose
    /// detection latency is the heartbeat window, `"crash"` the ones the
    /// reincarnation server catches the instant the thread dies.  Returns
    /// 0.0 when no run matches.
    pub fn detect_ms_max_for(&self, class: &str) -> f64 {
        self.runs
            .iter()
            .filter(|r| r.mode.contains(class))
            .map(|r| r.detect_ms)
            .fold(0.0, f64::max)
    }

    /// Renders the cell as a small text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "dependability — {} shard(s), {} link, {} runs\n",
            self.shards,
            if self.impaired { "impaired" } else { "clean" },
            self.runs.len()
        );
        out.push_str(&format!(
            "{:<32} {:>24} {:>6} {:>9} {:>9} {:>9} {:>6}\n",
            "mode", "outcome", "avail", "detect", "recover", "gap", "reconn"
        ));
        for run in &self.runs {
            out.push_str(&format!(
                "{:<32} {:>24} {:>6.2} {:>7.1}ms {:>7.1}ms {:>7.1}ms {:>6}\n",
                run.mode,
                run.outcome.label(),
                run.availability,
                run.detect_ms,
                run.recovery_ms,
                run.service_gap_ms,
                run.reconnects,
            ));
        }
        out.push_str(&format!(
            "transparent {}/{} ({:.0}%), broken-tcp {}, manual-restart {}, reachable-after-restart {}, reboot {}; mean availability {:.2}\n",
            self.count(Outcome::Transparent),
            self.runs.len(),
            100.0 * self.transparent_fraction(),
            self.count(Outcome::BrokenTcp),
            self.count(Outcome::ManualRestart),
            self.count(Outcome::ReachableAfterRestart),
            self.count(Outcome::Reboot),
            self.availability_mean(),
        ));
        out.push_str(&format!(
            "detect max: crash {:.1}ms, hang {:.1}ms\n",
            self.detect_ms_max_for("crash"),
            self.detect_ms_max_for("hang"),
        ));
        out
    }
}

/// Requests completed during the recovery window relative to the
/// steady-state completion rate, capped at 1.0.  `completions_us` is the
/// load generator's completion timeline (run-relative virtual µs),
/// `inject_us`/`recover_us` bound the window and `total_requests` is the
/// run's closed-loop quota.  The steady-rate expectation is capped at the
/// requests still outstanding at injection: a long recovery window (a
/// hang's heartbeat-detection latency, say) on a run whose workload
/// simply drained must not read as unavailability.
pub(crate) fn availability_from(
    completions_us: &[f64],
    inject_us: f64,
    recover_us: f64,
    total_requests: u64,
) -> f64 {
    if inject_us <= 0.0 {
        return 1.0;
    }
    let before = completions_us.iter().filter(|t| **t <= inject_us).count() as f64;
    let steady_rate = before / inject_us;
    let window = (recover_us - inject_us).max(1.0);
    let outstanding = (total_requests as f64 - before).max(0.0);
    let expected = (steady_rate * window).min(outstanding);
    if expected < 1.0 {
        // Either the window is shorter than one steady-state inter-arrival
        // gap or nothing was left to serve: nothing was due, nothing can
        // have been missed.
        return 1.0;
    }
    let during = completions_us
        .iter()
        .filter(|t| **t > inject_us && **t <= recover_us)
        .count() as f64;
    (during / expected).min(1.0)
}

/// The virtual-ms gap between the last completion at or before
/// `inject_us` and the first one after it (0 when no completion follows).
pub(crate) fn service_gap_ms(completions_us: &[f64], inject_us: f64) -> f64 {
    let last_before = completions_us
        .iter()
        .filter(|t| **t <= inject_us)
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let first_after = completions_us
        .iter()
        .filter(|t| **t > inject_us)
        .cloned()
        .fold(f64::INFINITY, f64::min);
    if !first_after.is_finite() {
        return 0.0;
    }
    let start = if last_before.is_finite() {
        last_before
    } else {
        inject_us
    };
    (first_after - start) / 1e3
}

/// Runs one fault-injection experiment under HTTP load against a freshly
/// booted sharded stack and classifies the outcome.
///
/// # Panics
///
/// Panics if the HTTP server cannot be spawned on the fresh stack.
pub fn run_one(config: &DependabilityConfig, mode: &FaultMode) -> RunRecord {
    let stack = NewtStack::start(config.stack_config());
    let httpd = Httpd::spawn(stack.client(), stack.shards(), HttpdConfig::default())
        .expect("spawning the http server");
    let injections = mode.injections();
    let expected_requests = (config.connections * config.requests_per_connection) as u64;
    // Steady state: on average one completed request per connection.
    let warmup = config.connections as u64;

    // Hook state: the injection happens from inside the load generator's
    // loop, so it is precisely placed in the request timeline.
    let mut inject_at: Option<Duration> = None;
    let mut inject_rel: Option<Duration> = None;
    let mut retries_at_inject = 0u64;
    let mut restarts_before: Vec<u32> = Vec::new();
    let mut next_stage = 0usize;
    let mut manual = false;
    let mut last_completed = 0u64;
    let mut last_progress = Instant::now();

    let report = run_http_load_with_hook(&stack, &config.load_config(), |snapshot| {
        if snapshot.completed > last_completed {
            last_completed = snapshot.completed;
            last_progress = Instant::now();
        }
        if inject_at.is_none() {
            if snapshot.completed < warmup {
                return;
            }
            restarts_before = injections
                .iter()
                .map(|(component, _)| stack.restart_count(*component))
                .collect();
            inject_at = Some(snapshot.now);
            inject_rel = Some(snapshot.since_start);
            retries_at_inject = snapshot.retries;
            // A staged mode (the cascade) injects only its first fault
            // now; everything else fires all its faults back to back.
            let upfront = if mode.staged() { 1 } else { injections.len() };
            for (component, kind) in &injections[..upfront] {
                stack.inject_fault(*component, kind.action());
            }
            next_stage = upfront;
            return;
        }
        // Cascade: fire the next fault as soon as the previous target's
        // replacement incarnation appears.
        if next_stage < injections.len() {
            let (previous, _) = injections[next_stage - 1];
            if stack.restart_count(previous) > restarts_before[next_stage - 1] {
                let (component, kind) = injections[next_stage];
                stack.inject_fault(component, kind.action());
                next_stage += 1;
            }
        }
        // If the run stops completing requests for too long, automatic
        // recovery failed — restart the *injected* targets manually, once
        // (the paper's "reachable after a manual fix" row).  This also
        // rescues a cascade whose first victim never came back: the
        // manual restart bumps its restart count, which un-gates the
        // next stage above.
        if !manual && last_progress.elapsed() > config.stall_timeout {
            for (index, (component, _)) in injections.iter().enumerate().take(next_stage) {
                let restarted = stack.restart_count(*component) > restarts_before[index];
                let running = stack.component_status(*component) == Some(ServiceStatus::Running);
                if !restarted || !running {
                    stack.live_update(*component);
                    // Only an actually issued restart makes the run
                    // "manually fixed"; a stall with every target already
                    // recovered (clients still timing out on an impaired
                    // link, say) is not a manual intervention.
                    manual = true;
                }
            }
            last_progress = Instant::now();
        }
    });

    // Hangs injected late in the run may still be waiting for the
    // heartbeat watchdog when the load finishes; give every target its
    // recovery budget before concluding.
    let deadline = Instant::now() + config.recovery_timeout;
    let all_recovered = |stack: &NewtStack| {
        inject_at.is_some()
            && injections
                .iter()
                .enumerate()
                .all(|(index, (component, _))| {
                    stack.restart_count(*component) > restarts_before[index]
                        && stack.component_status(*component) == Some(ServiceStatus::Running)
                })
    };
    while !all_recovered(&stack) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut recovered_automatically = !manual && all_recovered(&stack);
    if inject_at.is_some() && !all_recovered(&stack) {
        // Automatic recovery never happened: fix it by hand so the stamps
        // below exist, and classify accordingly.
        for (component, _) in &injections {
            stack.live_update(*component);
        }
        manual = true;
        recovered_automatically = false;
    }

    // Recovery latency from the reincarnation server's own stamps.
    let mut detect_ms = 0.0f64;
    let mut recovery_ms = 0.0f64;
    if let Some(injected) = inject_at {
        for (component, _) in &injections {
            if let Some(stamp) = stack.component_recovery(*component) {
                if stamp.respawned_at >= injected {
                    detect_ms = detect_ms
                        .max(stamp.detected_at.saturating_sub(injected).as_secs_f64() * 1e3);
                    recovery_ms =
                        recovery_ms.max((stamp.respawned_at - injected).as_secs_f64() * 1e3);
                }
            }
        }
    }

    let inject_us = inject_rel.map(|t| t.as_secs_f64() * 1e6).unwrap_or(0.0);
    let recover_us = inject_us + recovery_ms * 1e3;
    let availability = availability_from(
        &report.completions_us,
        inject_us,
        recover_us,
        expected_requests,
    );
    let gap_ms = service_gap_ms(&report.completions_us, inject_us);
    let reconnects = report.retries.saturating_sub(retries_at_inject);

    let lost = !report.completed_all || report.verify_failures > 0 || inject_at.is_none();
    let outcome = classify(lost, manual, reconnects);

    let _ = httpd.stop();
    stack.shutdown();
    RunRecord {
        mode: mode.label(),
        correlated: mode.is_correlated(),
        outcome,
        completed: report.completed,
        expected_requests,
        reconnects,
        verify_failures: report.verify_failures,
        availability,
        detect_ms,
        recovery_ms,
        service_gap_ms: gap_ms,
        manually_fixed: manual,
        recovered_automatically,
    }
}

/// Runs a full campaign cell: every mode of the deterministic schedule,
/// one freshly booted stack per run.
pub fn run_dependability_campaign(config: &DependabilityConfig) -> DependabilityReport {
    let mut report = DependabilityReport {
        shards: config.shards,
        impaired: config.impaired,
        runs: Vec::new(),
    };
    for mode in config.schedule() {
        report.runs.push(run_one(config, &mode));
    }
    report
}

/// Configuration of a rolling-upgrade campaign: every component of a
/// sharded stack — each shard's TCP, UDP and IP replica, the drivers, the
/// packet filter and the SYSCALL server — is live-updated one at a time
/// (quiesce → state transfer → resume) while keep-alive HTTP load runs.
/// Unlike the fault campaign, *nothing* here is allowed to be visible:
/// zero failed requests, zero forced reconnects, byte-exact bodies and a
/// bounded per-component service gap.
#[derive(Debug, Clone)]
pub struct RollingUpgradeConfig {
    /// Replicated stack pipelines the run boots.
    pub shards: usize,
    /// Whether the load crosses a netem-impaired link instead of the
    /// clean delay link.
    pub impaired: bool,
    /// Virtual-clock speed-up of the run.
    pub clock_speedup: f64,
    /// Concurrent keep-alive connections (spread over all shards by RSS).
    pub connections: usize,
    /// Requests each connection issues.
    pub requests_per_connection: usize,
    /// Real-time budget for each component's replacement incarnation to
    /// come up before the campaign gives up on it.
    pub upgrade_timeout: Duration,
    /// Real-time bound on the load run.
    pub run_deadline: Duration,
    /// Gate on the per-component service gap, in virtual ms.
    pub gap_bound_ms: f64,
    /// The reincarnation server's hang-detection heartbeat window
    /// (virtual).  Requested restarts are detected instantly, so this
    /// only matters if an upgrade wedges a component mid-handover.
    pub heartbeat_timeout: Duration,
}

impl RollingUpgradeConfig {
    /// The standard rolling-upgrade cell for a shard count and link
    /// condition, as used by the `dependability` bench binary.
    pub fn cell(shards: usize, impaired: bool) -> Self {
        RollingUpgradeConfig {
            shards,
            impaired,
            clock_speedup: 3.0,
            connections: (4 * shards).max(8),
            requests_per_connection: 12,
            upgrade_timeout: Duration::from_secs(20),
            run_deadline: Duration::from_secs(if impaired { 240 } else { 120 }),
            // Generous in virtual terms (host-scheduling noise is
            // amplified by the speed-up) but still a bound: an update
            // that tears a multi-second hole into the request timeline
            // fails the campaign.
            gap_bound_ms: if impaired { 5_000.0 } else { 2_000.0 },
            heartbeat_timeout: Duration::from_secs(3),
        }
    }

    /// A reduced cell for tests: fewer connections and requests.
    pub fn quick(shards: usize) -> Self {
        RollingUpgradeConfig {
            connections: (2 * shards).max(4),
            requests_per_connection: 8,
            ..Self::cell(shards, false)
        }
    }

    /// The components the campaign rolls, in upgrade order — every
    /// per-shard replica plus the singletons including SYSCALL, exactly
    /// the set the fault campaign injects into.
    pub fn upgrade_targets(&self) -> Vec<Component> {
        crate::campaign::topology_fault_targets(self.shards, true)
    }

    fn stack_config(&self) -> StackConfig {
        let link = if self.impaired {
            LinkConfig::impaired()
        } else {
            LinkConfig::gigabit().propagation(Duration::from_millis(2))
        };
        let config = StackConfig::newtos()
            .shards(self.shards)
            .link(link)
            .clock_speedup(self.clock_speedup);
        StackConfig {
            heartbeat_timeout: self.heartbeat_timeout,
            ..config
        }
    }

    fn load_config(&self) -> LoadConfig {
        LoadConfig {
            connections: self.connections,
            requests_per_connection: self.requests_per_connection,
            response_timeout: Duration::from_secs(if self.impaired { 30 } else { 6 }),
            run_deadline: self.run_deadline,
            ..LoadConfig::default()
        }
    }
}

/// What one component's live update measured.
#[derive(Debug, Clone)]
pub struct UpgradeRecord {
    /// The upgraded component's label (e.g. `"tcp.2"`).
    pub component: String,
    /// Whether the replacement incarnation was spawned at all within the
    /// upgrade budget.
    pub upgraded: bool,
    /// Whether the recovery stamp marks the restart as *requested* (a
    /// live update) rather than watchdog-detected — requested restarts
    /// have ~0 detection latency by definition and never reach the crash
    /// log.
    pub requested: bool,
    /// Virtual ms from issuing the update to the stamp's detection time
    /// (~0 for a requested restart: the request *is* the detection).
    pub detect_ms: f64,
    /// Virtual ms from the request being detected to the replacement
    /// incarnation's thread being spawned.
    pub respawn_ms: f64,
    /// Virtual ms between the last request completion before the update
    /// and the first one after it — the hole the upgrade tore into the
    /// request timeline (0 when the update was applied unloaded).
    pub service_gap_ms: f64,
    /// Whether the update was issued while the load was still running.
    /// Upgrades of a run whose workload drained early are still applied,
    /// just without traffic in flight.
    pub under_load: bool,
}

/// Aggregate results of one rolling-upgrade campaign cell.
#[derive(Debug, Clone)]
pub struct RollingUpgradeReport {
    /// Shard count of the run.
    pub shards: usize,
    /// Whether the link was impaired.
    pub impaired: bool,
    /// Per-component records, in upgrade order.
    pub records: Vec<UpgradeRecord>,
    /// Requests completed over the whole run.
    pub completed: u64,
    /// Requests the run was supposed to complete.
    pub expected_requests: u64,
    /// Connections forced to reconnect (gated to zero).
    pub reconnects: u64,
    /// Response bodies that failed byte verification (gated to zero).
    pub verify_failures: u64,
    /// Whether every connection finished its quota before the deadline.
    pub completed_all: bool,
}

impl RollingUpgradeReport {
    /// Requests that never completed — gated to zero.
    pub fn failed_requests(&self) -> u64 {
        self.expected_requests.saturating_sub(self.completed)
    }

    /// Largest per-component service gap, in virtual ms.
    pub fn max_gap_ms(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.service_gap_ms)
            .fold(0.0, f64::max)
    }

    /// Whether every component was upgraded and every stamp says
    /// *requested* (no upgrade fell back to watchdog-detected recovery).
    pub fn all_requested(&self) -> bool {
        !self.records.is_empty() && self.records.iter().all(|r| r.upgraded && r.requested)
    }

    /// Components whose update was issued while load was in flight.
    pub fn upgrades_under_load(&self) -> usize {
        self.records.iter().filter(|r| r.under_load).count()
    }

    /// Renders the cell as a small text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "rolling upgrade — {} shard(s), {} link, {} components\n",
            self.shards,
            if self.impaired { "impaired" } else { "clean" },
            self.records.len()
        );
        out.push_str(&format!(
            "{:<12} {:>9} {:>9} {:>9} {:>9} {:>6}\n",
            "component", "requested", "detect", "respawn", "gap", "load"
        ));
        for record in &self.records {
            out.push_str(&format!(
                "{:<12} {:>9} {:>7.1}ms {:>7.1}ms {:>7.1}ms {:>6}\n",
                record.component,
                if record.requested { "yes" } else { "NO" },
                record.detect_ms,
                record.respawn_ms,
                record.service_gap_ms,
                if record.under_load { "live" } else { "idle" },
            ));
        }
        out.push_str(&format!(
            "completed {}/{}, reconnects {}, verify failures {}, max gap {:.1}ms\n",
            self.completed,
            self.expected_requests,
            self.reconnects,
            self.verify_failures,
            self.max_gap_ms(),
        ));
        out
    }
}

/// Rolls every component of a freshly booted sharded stack through a live
/// update, one at a time, under keep-alive HTTP load, and measures what
/// the traffic saw.
///
/// # Panics
///
/// Panics if the HTTP server cannot be spawned on the fresh stack.
pub fn run_rolling_upgrade(config: &RollingUpgradeConfig) -> RollingUpgradeReport {
    let stack = NewtStack::start(config.stack_config());
    let httpd = Httpd::spawn(stack.client(), stack.shards(), HttpdConfig::default())
        .expect("spawning the http server");
    let targets = config.upgrade_targets();
    let expected_requests = (config.connections * config.requests_per_connection) as u64;
    // Steady state: on average one completed request per connection.
    let warmup = config.connections as u64;

    // One entry per issued upgrade: (component, absolute virtual issue
    // time, run-relative issue time in µs, restart count before, whether
    // load was still in flight).
    let mut issued: Vec<(Component, Duration, f64, u32, bool)> = Vec::new();
    let mut next = 0usize;
    let mut awaiting: Option<usize> = None;
    let mut completed_at_issue = 0u64;

    let report = run_http_load_with_hook(&stack, &config.load_config(), |snapshot| {
        if snapshot.completed < warmup {
            return;
        }
        // One component at a time: the next update is issued only once
        // the previous replacement runs *and* at least one request has
        // completed since — every upgrade window has a completion on
        // both sides, so the per-component service gap is measurable.
        if let Some(index) = awaiting {
            let (component, _, _, before, _) = issued[index];
            if stack.restart_count(component) > before
                && stack.component_status(component) == Some(ServiceStatus::Running)
                && snapshot.completed > completed_at_issue
            {
                awaiting = None;
            }
            return;
        }
        if next < targets.len() {
            let component = targets[next];
            let before = stack.restart_count(component);
            stack.live_update(component);
            issued.push((
                component,
                snapshot.now,
                snapshot.since_start.as_secs_f64() * 1e6,
                before,
                true,
            ));
            completed_at_issue = snapshot.completed;
            awaiting = Some(next);
            next += 1;
        }
    });

    let wait_upgraded = |component: Component, before: u32| {
        let deadline = Instant::now() + config.upgrade_timeout;
        loop {
            if stack.restart_count(component) > before
                && stack.component_status(component) == Some(ServiceStatus::Running)
            {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    };

    // A fast workload can drain before the roll finishes; the remaining
    // components are still upgraded, just without traffic in flight, so
    // every cell covers the full component set.
    for &component in &targets[next..] {
        let before = stack.restart_count(component);
        let now = stack.clock().now();
        stack.live_update(component);
        issued.push((component, now, f64::INFINITY, before, false));
    }

    let records: Vec<UpgradeRecord> = issued
        .iter()
        .map(
            |&(component, issued_abs, issued_rel_us, before, under_load)| {
                let upgraded = wait_upgraded(component, before);
                let stamp = stack.component_recovery(component);
                let (requested, detect_ms, respawn_ms) = match stamp {
                    Some(stamp) => (
                        stamp.requested,
                        stamp.detected_at.saturating_sub(issued_abs).as_secs_f64() * 1e3,
                        (stamp.respawned_at.saturating_sub(stamp.detected_at)).as_secs_f64() * 1e3,
                    ),
                    None => (false, 0.0, 0.0),
                };
                let gap = if under_load {
                    service_gap_ms(&report.completions_us, issued_rel_us)
                } else {
                    0.0
                };
                UpgradeRecord {
                    component: component.to_string(),
                    upgraded,
                    requested,
                    detect_ms,
                    respawn_ms,
                    service_gap_ms: gap,
                    under_load,
                }
            },
        )
        .collect();

    let _ = httpd.stop();
    stack.shutdown();
    RollingUpgradeReport {
        shards: config.shards,
        impaired: config.impaired,
        records,
        completed: report.completed,
        expected_requests,
        reconnects: report.retries,
        verify_failures: report.verify_failures,
        completed_all: report.completed_all,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_fronts_correlated_modes() {
        let config = DependabilityConfig::cell(4, false);
        let schedule = config.schedule();
        assert_eq!(schedule, config.schedule());
        assert_eq!(schedule.len(), config.runs);
        assert!(schedule[..config.correlated_runs]
            .iter()
            .all(FaultMode::is_correlated));
        assert!(schedule[config.correlated_runs..]
            .iter()
            .all(|m| !m.is_correlated()));
        // A different link condition reseeds the cell.
        assert_ne!(schedule, DependabilityConfig::cell(4, true).schedule());
    }

    #[test]
    fn fault_targets_cover_every_replica_and_singleton() {
        let config = DependabilityConfig::cell(4, false);
        let targets = config.fault_targets();
        for s in 0..4 {
            assert!(targets.contains(&Component::TcpShard(s)));
            assert!(targets.contains(&Component::UdpShard(s)));
            assert!(targets.contains(&Component::IpShard(s)));
        }
        assert!(targets.contains(&Component::PacketFilter));
        assert!(targets.contains(&Component::Driver(0)));
        assert!(targets.contains(&Component::Syscall));
        // Singleton stacks keep the legacy spellings.
        let singleton = DependabilityConfig::cell(1, false).fault_targets();
        assert!(singleton.contains(&Component::Tcp));
        assert!(!singleton
            .iter()
            .any(|c| matches!(c, Component::TcpShard(_))));
    }

    #[test]
    fn mode_injections_and_labels() {
        let double = FaultMode::SameShardDouble(2);
        assert_eq!(double.injections().len(), 2);
        assert!(!double.staged());
        assert_eq!(double.label(), "tcp.2+ip.2 double");
        let cascade = FaultMode::DriverIpCascade {
            driver: 0,
            shard: 1,
        };
        assert!(cascade.staged());
        assert!(cascade.is_correlated());
        assert_eq!(cascade.label(), "e1000.0->ip.1 cascade");
        let single = FaultMode::Single(Component::PacketFilter, FaultKind::Hang);
        assert_eq!(single.label(), "pf hang");
        assert!(!single.is_correlated());
    }

    #[test]
    fn availability_math() {
        // Steady state: one completion every 10 µs for 100 µs.
        let completions: Vec<f64> = (1..=10).map(|i| i as f64 * 10.0).collect();
        // A window with no completions scores 0.
        assert_eq!(availability_from(&completions, 100.0, 200.0, 100), 0.0);
        // A window keeping the steady rate scores 1.
        let mut with_recovery = completions.clone();
        with_recovery.extend((11..=20).map(|i| i as f64 * 10.0));
        assert_eq!(availability_from(&with_recovery, 100.0, 200.0, 100), 1.0);
        // Half the expected completions score 0.5.
        let mut half = completions.clone();
        half.extend([110.0, 130.0, 150.0, 170.0, 190.0]);
        assert!((availability_from(&half, 100.0, 200.0, 100) - 0.5).abs() < 1e-9);
        // A window shorter than one inter-arrival gap cannot be missed.
        assert_eq!(availability_from(&completions, 100.0, 101.0, 100), 1.0);
        // The expectation is capped at the requests still outstanding: a
        // long recovery window on a drained workload is not unavailability
        // (a hang's heartbeat-detection latency must not read as downtime
        // when the remaining requests all completed).
        let mut drained = completions.clone();
        drained.extend([105.0, 110.0]);
        assert_eq!(availability_from(&drained, 100.0, 10_000.0, 12), 1.0);
        // ... but losing half the outstanding requests still reads as 0.5.
        assert!((availability_from(&drained, 100.0, 10_000.0, 14) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn service_gap_math() {
        let completions = [10.0, 20.0, 30.0, 5030.0, 5040.0];
        // Fault at t=35 µs: the gap spans 30 → 5030 µs = 5 ms.
        assert!((service_gap_ms(&completions, 35.0) - 5.0).abs() < 1e-9);
        // No completion after the fault: no measurable gap.
        assert_eq!(service_gap_ms(&completions, 6000.0), 0.0);
    }

    #[test]
    fn outcome_classification_keeps_manual_restart_distinct() {
        // Lost requests dominate everything.
        assert_eq!(classify(true, true, 0), Outcome::Reboot);
        assert_eq!(classify(true, false, 3), Outcome::Reboot);
        // A harness-issued live update that nothing noticed is its own
        // class, not the paper's reachable-after-restart failure row...
        assert_eq!(classify(false, true, 0), Outcome::ManualRestart);
        // ...which is reserved for manual fixes that cost connections.
        assert_eq!(classify(false, true, 2), Outcome::ReachableAfterRestart);
        assert_eq!(classify(false, false, 0), Outcome::Transparent);
        assert_eq!(classify(false, false, 1), Outcome::BrokenTcp);
        assert_eq!(Outcome::ManualRestart.label(), "manual-restart");
    }

    #[test]
    fn rolling_upgrade_covers_every_component_and_drops_nothing() {
        let config = RollingUpgradeConfig::quick(1);
        let report = run_rolling_upgrade(&config);
        assert_eq!(
            report.records.len(),
            config.upgrade_targets().len(),
            "every component must be rolled: {report:?}"
        );
        assert_eq!(
            report.failed_requests(),
            0,
            "a rolling upgrade must not drop a single request: {report:?}"
        );
        assert_eq!(
            report.reconnects, 0,
            "surviving connections must never be forced to reconnect: {report:?}"
        );
        assert_eq!(report.verify_failures, 0);
        assert!(
            report.all_requested(),
            "every stamp must be a requested restart: {report:?}"
        );
        assert!(
            report.upgrades_under_load() >= 1,
            "at least one upgrade must have happened mid-load: {report:?}"
        );
        assert!(report.max_gap_ms() <= config.gap_bound_ms);
    }

    #[test]
    fn pf_crash_under_load_is_transparent() {
        let config = DependabilityConfig::quick(1, 1);
        let record = run_one(
            &config,
            &FaultMode::Single(Component::PacketFilter, FaultKind::Crash),
        );
        assert_eq!(
            record.outcome,
            Outcome::Transparent,
            "a pf crash must be invisible to live HTTP traffic: {record:?}"
        );
        assert_eq!(record.completed, record.expected_requests);
        assert_eq!(record.verify_failures, 0);
        assert!(record.recovered_automatically);
        assert!(record.recovery_ms > 0.0, "recovery stamps must be exposed");
    }
}
