//! Hostile-traffic overload campaigns — the `BENCH_overload.json` record.
//!
//! Where [`dependability`](crate::dependability) injects faults into the
//! stack's *components*, this module attacks it from the *wire*: while
//! well-behaved keep-alive HTTP clients run the usual verified load, the
//! peer host turns hostile mid-run and launches one of four attacks —
//! a spoofed-source SYN flood, a slow-loris header drip, a
//! connection-churn storm or a malformed-frame fuzz — against the
//! serving stack.  The campaign measures what the defenses are for:
//!
//! * **goodput retained** — requests completed by the legitimate clients
//!   during the attack window relative to their steady-state rate (the
//!   same [`availability`](crate::dependability) arithmetic the fault
//!   campaign uses for recovery windows);
//! * **occupancy bounds** — the half-open gauge must stay under the
//!   listener cap throughout the flood and drain back to zero once the
//!   SYN-RECEIVED reaper has had its window;
//! * **defense engagement** — SYN cookies sent and validated, slow-loris
//!   kills, 503 sheds, accept-drain pauses, RSTs and malformed-frame
//!   drops, each attributable to exactly one attack;
//! * **byte-exact bodies** — every legitimate response still verifies,
//!   attack or no attack.
//!
//! Everything runs through the public [`NewtStack`] API plus the peer's
//! attack generators ([`RemotePeer::syn_flood`] and friends), exactly as
//! an external adversary-in-the-lab harness would.
//!
//! [`RemotePeer::syn_flood`]: newt_net::peer::RemotePeer::syn_flood

use std::time::Duration;

use newt_apps::httpd::{Httpd, HttpdConfig};
use newt_apps::loadgen::{run_http_load_with_hook, LoadConfig};
use newt_net::link::LinkConfig;
use newt_net::peer::ClientStatus;
use newt_stack::builder::{NewtStack, StackConfig};
use newt_stack::tcp::TcpConfig;

use crate::dependability::availability_from;

/// First source port of the churn storm's waves (outside the load
/// generator's 21 000+ range and its retry growth).
const CHURN_PORT_BASE: u16 = 45_000;
/// First source port of the slow-loris flows.
const LORIS_PORT_BASE: u16 = 52_000;

/// The attack a cell launches against the serving stack mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Spoofed-source SYN flood: SYNs from unresolvable RFC 2544
    /// addresses that never complete the handshake.  Exercises the
    /// half-open cap, the SYN-cookie fallback and the SYN-RECEIVED
    /// reaper.
    SynFlood,
    /// Slow loris: real connections that drip one header byte at a time
    /// and never finish a request.  Exercises the header-read deadline.
    SlowLoris,
    /// Connection churn: waves of full handshakes slammed shut again
    /// with RSTs.  Exercises the admission watermark (503 shedding and
    /// accept-drain pausing).
    ConnectionChurn,
    /// Malformed-frame fuzz: truncated, bit-flipped and lying frames.
    /// Exercises the demux hardening (count, drop, never panic).
    MalformedFuzz,
}

impl AttackKind {
    /// Every attack, in the order the bench runs them.
    pub const ALL: [AttackKind; 4] = [
        AttackKind::SynFlood,
        AttackKind::SlowLoris,
        AttackKind::ConnectionChurn,
        AttackKind::MalformedFuzz,
    ];

    /// Stable label used in reports and `BENCH_overload.json`.
    pub fn label(self) -> &'static str {
        match self {
            AttackKind::SynFlood => "syn-flood",
            AttackKind::SlowLoris => "slow-loris",
            AttackKind::ConnectionChurn => "churn",
            AttackKind::MalformedFuzz => "malformed-fuzz",
        }
    }
}

/// Configuration of one overload cell: one attack against one stack shape
/// under one legitimate load.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Replicated stack pipelines the cell boots.
    pub shards: usize,
    /// The attack launched once the load reaches steady state.
    pub attack: AttackKind,
    /// Virtual-clock speed-up of the run.
    pub clock_speedup: f64,
    /// Concurrent well-behaved keep-alive connections.
    pub connections: usize,
    /// Requests each legitimate connection issues.
    pub requests_per_connection: usize,
    /// Attack size: total SYNs or fuzz frames, flows per churn wave, or
    /// concurrent loris drippers, depending on [`OverloadConfig::attack`].
    pub attack_volume: usize,
    /// Virtual length of the attack window.
    pub attack_window: Duration,
    /// Virtual gap between attack bursts inside the window.
    pub burst_gap: Duration,
    /// Virtual settle time after the load drains, long enough for the
    /// SYN-RECEIVED reaper and the loris sweep to run before counters
    /// are sampled.
    pub drain: Duration,
    /// The server's header-read deadline (virtual; the loris defense).
    pub header_deadline: Duration,
    /// The TCP server's SYN-RECEIVED timeout (virtual) — tightened from
    /// the default so half-opens provably drain within the cell.
    pub syn_received_timeout: Duration,
    /// Per-listener half-open cap (the default is [`TcpConfig`]'s).
    pub max_half_open: usize,
    /// Seed for the attack generators' deterministic randomness.
    pub seed: u64,
    /// Real-time bound on the load run.
    pub run_deadline: Duration,
}

impl OverloadConfig {
    /// The standard cell for a shard count and attack, as used by the
    /// `overload` bench binary.
    pub fn cell(shards: usize, attack: AttackKind) -> Self {
        // Pacing is per attack: the flood wants many small bursts so
        // legitimate traffic can interleave (one huge burst measures the
        // host, not the defense); the churn toggle must outlast a
        // handshake round-trip or the waves die before the server ever
        // accepts them.
        let (window, gap) = match attack {
            AttackKind::SynFlood => (Duration::from_millis(80), Duration::from_millis(2)),
            AttackKind::ConnectionChurn => (Duration::from_millis(120), Duration::from_millis(12)),
            _ => (Duration::from_millis(40), Duration::from_millis(4)),
        };
        OverloadConfig {
            shards,
            attack,
            clock_speedup: 2.0,
            connections: (4 * shards).max(8),
            requests_per_connection: 12,
            attack_volume: match attack {
                AttackKind::SynFlood => 2_400,
                AttackKind::MalformedFuzz => 1_200,
                AttackKind::ConnectionChurn => 48,
                AttackKind::SlowLoris => 24,
            },
            attack_window: window,
            burst_gap: gap,
            drain: Duration::from_millis(800),
            header_deadline: Duration::from_millis(120),
            syn_received_timeout: Duration::from_millis(500),
            max_half_open: TcpConfig::default().max_half_open,
            seed: 0x0badc0de ^ ((shards as u64) << 32) ^ attack as u64,
            run_deadline: Duration::from_secs(60),
        }
    }

    /// A reduced cell for tests: fewer clients, smaller attack.
    pub fn quick(shards: usize, attack: AttackKind) -> Self {
        OverloadConfig {
            connections: 6,
            requests_per_connection: 8,
            attack_volume: match attack {
                AttackKind::SynFlood => 1_200,
                AttackKind::MalformedFuzz => 600,
                AttackKind::ConnectionChurn => 32,
                AttackKind::SlowLoris => 12,
            },
            ..Self::cell(shards, attack)
        }
    }

    fn stack_config(&self) -> StackConfig {
        let config = StackConfig::newtos()
            .shards(self.shards)
            .link(LinkConfig::gigabit().propagation(Duration::from_millis(2)))
            .clock_speedup(self.clock_speedup);
        StackConfig {
            tcp: TcpConfig {
                syn_received_timeout: self.syn_received_timeout,
                max_half_open: self.max_half_open,
                ..TcpConfig::default()
            },
            ..config
        }
    }

    fn httpd_config(&self, stack: &NewtStack) -> HttpdConfig {
        // The admission watermark sits above the legitimate population —
        // and, for the loris cell, above the drippers too, so that the
        // header deadline (not admission) is the defense under test.
        let soft_cap = match self.attack {
            AttackKind::SlowLoris => self.connections + self.attack_volume + 8,
            _ => self.connections + 12,
        };
        HttpdConfig {
            header_deadline: self.header_deadline,
            max_connections: soft_cap,
            clock: Some(stack.clock()),
            ..HttpdConfig::default()
        }
    }

    fn load_config(&self) -> LoadConfig {
        LoadConfig {
            connections: self.connections,
            requests_per_connection: self.requests_per_connection,
            response_timeout: Duration::from_secs(6),
            run_deadline: self.run_deadline,
            ..LoadConfig::default()
        }
    }
}

/// Everything one overload cell measured.
#[derive(Debug, Clone)]
pub struct OverloadRecord {
    /// The attack's label ([`AttackKind::label`]).
    pub attack: String,
    /// Shard count of the run.
    pub shards: usize,
    /// Legitimate requests completed with a verified 200 response.
    pub completed: u64,
    /// The legitimate clients' closed-loop quota.
    pub expected_requests: u64,
    /// Responses whose status or body did not match (gated to zero).
    pub verify_failures: u64,
    /// Legitimate connections abandoned and reopened.
    pub retries: u64,
    /// Whether every legitimate client finished its quota in time.
    pub completed_all: bool,
    /// Requests completed during the attack window relative to the
    /// steady-state rate, capped at 1.0 — the "goodput retained" gate.
    pub goodput_retained: f64,
    /// Attack events emitted (SYNs, fuzz frames, churned flows or loris
    /// drips).
    pub attack_events: u64,
    /// Median legitimate request latency, virtual µs.
    pub p50_us: f64,
    /// 99th-percentile legitimate request latency, virtual µs.
    pub p99_us: f64,
    /// Per-listener half-open cap the stack ran with.
    pub half_open_cap: u64,
    /// High-water mark of the half-open gauge (worst shard).
    pub half_open_peak: u64,
    /// Half-open gauge after the drain window (summed; must be 0).
    pub half_open_after: u64,
    /// SYNs dropped at the cap plus cookie completions refused by a full
    /// backlog.
    pub half_open_drops: u64,
    /// Half-open children reaped by the SYN-RECEIVED timeout.
    pub half_open_reaped: u64,
    /// Stateless SYN-ACKs sent once the cap was hit.
    pub syn_cookies_sent: u64,
    /// Connections reconstructed from a valid cookie ACK.
    pub syn_cookies_validated: u64,
    /// Cookie ACKs that failed validation.
    pub syn_cookies_rejected: u64,
    /// RSTs emitted (closed ports, unknown flows, force-reaps).
    pub rsts_out: u64,
    /// Frames that claimed to be TCP/IPv4 but failed to parse at the TCP
    /// demux — counted and dropped.
    pub rx_malformed: u64,
    /// Frames the IP server refused before TCP ever saw them (bad
    /// checksum, lying lengths, truncation).
    pub ip_parse_errors: u64,
    /// Packets refused because the ARP pending queue was at its bound.
    pub arp_overflow: u64,
    /// Connections shed with `503` at the admission watermark.
    pub shed_503: u64,
    /// Connections killed by the header-read deadline.
    pub loris_kills: u64,
    /// Loop passes with the accept drain paused past the hard cap.
    pub accept_paused: u64,
}

impl OverloadRecord {
    /// The cell's gate violations, empty when the cell passes.  Shared
    /// between the bench binary and the module tests so the two can
    /// never disagree about what "surviving" means.
    pub fn gate_failures(&self) -> Vec<String> {
        let cell = format!("{} {}-shard", self.attack, self.shards);
        let mut fails = Vec::new();
        if self.verify_failures > 0 {
            fails.push(format!(
                "{cell}: {} legitimate responses failed byte verification",
                self.verify_failures
            ));
        }
        if !self.completed_all || self.completed < self.expected_requests {
            fails.push(format!(
                "{cell}: legitimate clients completed {}/{} requests",
                self.completed, self.expected_requests
            ));
        }
        if self.half_open_peak > self.half_open_cap {
            fails.push(format!(
                "{cell}: half-open occupancy peaked at {} above the {} cap",
                self.half_open_peak, self.half_open_cap
            ));
        }
        if self.half_open_after > 0 {
            fails.push(format!(
                "{cell}: {} half-open connections survived the drain window",
                self.half_open_after
            ));
        }
        match self.attack.as_str() {
            "syn-flood" => {
                if self.goodput_retained < 0.70 {
                    fails.push(format!(
                        "{cell}: goodput retained {:.2} under the flood, bound 0.70",
                        self.goodput_retained
                    ));
                }
                if self.syn_cookies_sent == 0 {
                    fails.push(format!(
                        "{cell}: the flood never pushed the listener to SYN cookies"
                    ));
                }
            }
            "slow-loris" if self.loris_kills == 0 => {
                fails.push(format!(
                    "{cell}: no dripper was killed by the header deadline"
                ));
            }
            "churn" if self.shed_503 == 0 && self.accept_paused == 0 => {
                fails.push(format!(
                    "{cell}: the churn storm was neither shed nor paused"
                ));
            }
            "malformed-fuzz" if self.rx_malformed == 0 => {
                fails.push(format!("{cell}: no malformed frame was counted"));
            }
            _ => {}
        }
        fails
    }

    /// Renders the record as one human-readable line.
    pub fn render(&self) -> String {
        format!(
            "{:<14} {}sh goodput {:.2} {:>4}/{:<4} ok (retries {}, verify {}) half-open peak {}/{} after {} | cookies {}/{}/{} drops {} reaped {} rst {} malformed {} arp-ovf {} | shed {} loris {} paused {}",
            self.attack,
            self.shards,
            self.goodput_retained,
            self.completed,
            self.expected_requests,
            self.retries,
            self.verify_failures,
            self.half_open_peak,
            self.half_open_cap,
            self.half_open_after,
            self.syn_cookies_sent,
            self.syn_cookies_validated,
            self.syn_cookies_rejected,
            self.half_open_drops,
            self.half_open_reaped,
            self.rsts_out,
            self.rx_malformed + self.ip_parse_errors,
            self.arp_overflow,
            self.shed_503,
            self.loris_kills,
            self.accept_paused,
        )
    }
}

/// Runs one overload cell: boots the stack, spawns the HTTP server with
/// its admission knobs, drives the legitimate load, launches the attack
/// at steady state from inside the load loop, lets the reapers drain,
/// and samples every defense counter.
///
/// # Panics
///
/// Panics if the HTTP server cannot be spawned on the fresh stack.
pub fn run_overload(config: &OverloadConfig) -> OverloadRecord {
    let stack = NewtStack::start(config.stack_config());
    let httpd = Httpd::spawn(stack.client(), stack.shards(), config.httpd_config(&stack))
        .expect("spawning the http server");
    let load = config.load_config();
    let expected_requests = (config.connections * config.requests_per_connection) as u64;
    let warmup = config.connections as u64;
    let peer = stack.peer(0);
    let server = StackConfig::local_addr(0);

    // Attack state lives in the hook: the load loop is the scheduler, so
    // bursts land at precise spots in the request timeline.
    let mut attack_start: Option<Duration> = None;
    let mut next_burst = Duration::ZERO;
    let mut next_drip = Duration::ZERO;
    let mut bursts = 0u64;
    let mut last_burst_at = Duration::ZERO;
    let mut attack_events = 0u64;
    let mut churn_cycle = 0u16;
    let mut churn_open: Option<(u16, usize)> = None;
    let mut loris_ports: Vec<u16> = Vec::new();
    let mut drip_cursor = 0usize;
    let total_bursts =
        (config.attack_window.as_micros() / config.burst_gap.as_micros().max(1)).max(1) as usize;
    let per_burst = (config.attack_volume / total_bursts).max(1);

    let report = run_http_load_with_hook(&stack, &load, |snapshot| {
        if attack_start.is_none() {
            if snapshot.completed < warmup {
                return; // not at steady state yet
            }
            attack_start = Some(snapshot.since_start);
            next_burst = snapshot.since_start;
            next_drip = snapshot.since_start;
            if config.attack == AttackKind::SlowLoris {
                for i in 0..config.attack_volume {
                    let port = LORIS_PORT_BASE + i as u16;
                    peer.client_connect(port, server, load.port);
                    loris_ports.push(port);
                }
            }
        }
        let started = attack_start.expect("attack start set above");
        let until = started + config.attack_window;

        // The loris drips outlive the burst window: one byte per flow
        // every few virtual ms until the deadline has had time to kill
        // them.
        if config.attack == AttackKind::SlowLoris
            && snapshot.since_start < until + config.header_deadline * 2
            && snapshot.since_start >= next_drip
        {
            next_drip = snapshot.since_start + Duration::from_millis(2);
            for &port in &loris_ports {
                if peer.client_status(port) == Some(ClientStatus::Established)
                    && peer.loris_drip(port, drip_cursor)
                {
                    attack_events += 1;
                }
            }
            drip_cursor += 1;
        }

        // Deliver the whole attack volume, paced by the burst gap — the
        // window sizes the volume, but a stack slowed *by the attack*
        // must not thereby shrink the attack.
        if snapshot.since_start >= next_burst && bursts < total_bursts as u64 {
            next_burst = snapshot.since_start + config.burst_gap;
            last_burst_at = snapshot.since_start;
            match config.attack {
                AttackKind::SynFlood => {
                    attack_events +=
                        peer.syn_flood(server, load.port, per_burst, config.seed ^ bursts) as u64;
                }
                AttackKind::MalformedFuzz => {
                    attack_events +=
                        peer.malformed_flood(server, per_burst, config.seed ^ bursts) as u64;
                }
                AttackKind::ConnectionChurn => {
                    // Alternate bursts: slam a wave open, slam it shut.
                    if let Some((base, flows)) = churn_open.take() {
                        peer.abort_wave(base, flows);
                    } else {
                        let base = CHURN_PORT_BASE + churn_cycle * config.attack_volume as u16;
                        peer.churn_wave(base, config.attack_volume, server, load.port);
                        attack_events += config.attack_volume as u64;
                        churn_open = Some((base, config.attack_volume));
                        churn_cycle += 1;
                    }
                }
                AttackKind::SlowLoris => {} // drips above are the events
            }
            bursts += 1;
        }
    });

    // Abort any wave the window left open, then give the SYN-RECEIVED
    // reaper and the loris sweep their windows before sampling.
    if let Some((base, flows)) = churn_open {
        peer.abort_wave(base, flows);
    }
    stack.clock().sleep(config.drain);
    let httpd_stats = httpd.stats();
    let telemetry = stack.telemetry();
    let shards = stack.shards();
    let tcp = &telemetry.tcp_shards[..shards];
    let goodput_retained = match attack_start {
        Some(started) => {
            // The attack span is the *actual* burst timeline — a stack
            // slowed by the flood stretches the span, and the goodput
            // bar has to hold over all of it.
            let span_end = (last_burst_at + config.burst_gap).max(started + config.attack_window);
            let start_us = started.as_secs_f64() * 1e6;
            let end_us = span_end.as_secs_f64() * 1e6;
            availability_from(&report.completions_us, start_us, end_us, expected_requests)
        }
        None => 1.0,
    };
    for &port in &loris_ports {
        peer.client_close(port);
    }
    let record = OverloadRecord {
        attack: config.attack.label().to_string(),
        shards: config.shards,
        completed: report.completed,
        expected_requests,
        verify_failures: report.verify_failures,
        retries: report.retries,
        completed_all: report.completed_all,
        goodput_retained,
        attack_events,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        half_open_cap: config.stack_config().tcp.max_half_open as u64,
        half_open_peak: tcp.iter().map(|t| t.half_open_peak).max().unwrap_or(0),
        half_open_after: tcp.iter().map(|t| t.half_open).sum(),
        half_open_drops: tcp.iter().map(|t| t.half_open_drops).sum(),
        half_open_reaped: tcp.iter().map(|t| t.half_open_reaped).sum(),
        syn_cookies_sent: tcp.iter().map(|t| t.syn_cookies_sent).sum(),
        syn_cookies_validated: tcp.iter().map(|t| t.syn_cookies_validated).sum(),
        syn_cookies_rejected: tcp.iter().map(|t| t.syn_cookies_rejected).sum(),
        rsts_out: tcp.iter().map(|t| t.rsts_out).sum(),
        rx_malformed: tcp.iter().map(|t| t.rx_malformed).sum(),
        ip_parse_errors: telemetry.ip_shards[..shards]
            .iter()
            .map(|i| i.parse_errors)
            .sum(),
        arp_overflow: telemetry.ip_shards[..shards]
            .iter()
            .map(|i| i.arp_overflow)
            .sum(),
        shed_503: httpd_stats.shed_503,
        loris_kills: httpd_stats.loris_kills,
        accept_paused: httpd_stats.accept_paused,
    };
    let _ = httpd.stop();
    stack.shutdown();
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syn_flood_cell_keeps_goodput_and_drains() {
        let record = run_overload(&OverloadConfig::quick(1, AttackKind::SynFlood));
        assert!(record.attack_events > 0, "flood never launched");
        assert!(
            record.syn_cookies_sent > 0,
            "flood never hit the cap: {record:?}"
        );
        assert_eq!(record.gate_failures(), Vec::<String>::new());
    }

    #[test]
    fn slow_loris_cell_is_killed_by_the_deadline() {
        let record = run_overload(&OverloadConfig::quick(1, AttackKind::SlowLoris));
        assert!(record.attack_events > 0, "no bytes were ever dripped");
        assert_eq!(record.gate_failures(), Vec::<String>::new());
    }

    #[test]
    fn churn_storm_is_shed_at_the_watermark() {
        let record = run_overload(&OverloadConfig::quick(1, AttackKind::ConnectionChurn));
        assert!(record.attack_events > 0, "no wave was ever churned");
        assert_eq!(record.gate_failures(), Vec::<String>::new());
    }

    #[test]
    fn malformed_fuzz_is_counted_and_survived() {
        let record = run_overload(&OverloadConfig::quick(1, AttackKind::MalformedFuzz));
        assert!(record.attack_events > 0, "no frame was ever sent");
        assert_eq!(record.gate_failures(), Vec::<String>::new());
    }
}
