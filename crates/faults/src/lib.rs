//! SWIFI-style fault injection against the NewtOS networking stack.
//!
//! The paper evaluates dependability by injecting 100 random faults into the
//! running stack while a TCP session and periodic DNS queries exercise it
//! (§VI-B), and by tracing the bitrate of a bulk transfer across crashes of
//! the IP server and the packet filter (§VI-C).  This crate reproduces both:
//!
//! * [`campaign`] — the Table III / Table IV experiment: weighted random
//!   target selection, crash and hang faults, automatic recovery,
//!   reachability and transparency classification;
//! * [`figures`] — the Figure 4 / Figure 5 experiments: bitrate-versus-time
//!   traces of a transfer across IP and packet-filter crashes.
//!
//! Both are driven through the public [`NewtStack`](newt_stack::builder::NewtStack)
//! API, exactly as an external test harness would drive the real system.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod figures;

pub use campaign::{run_campaign, run_one, CampaignConfig, CampaignReport, FaultKind, RunOutcome};
pub use figures::{run_trace_experiment, TraceExperimentConfig, TraceExperimentResult};
