//! SWIFI-style fault injection against the NewtOS networking stack.
//!
//! The paper evaluates dependability by injecting 100 random faults into the
//! running stack while a TCP session and periodic DNS queries exercise it
//! (§VI-B), and by tracing the bitrate of a bulk transfer across crashes of
//! the IP server and the packet filter (§VI-C).  This crate reproduces both:
//!
//! * [`campaign`] — the Table III / Table IV experiment: weighted random
//!   target selection, crash and hang faults, automatic recovery,
//!   reachability and transparency classification;
//! * [`figures`] — the Figure 4 / Figure 5 experiments: bitrate-versus-time
//!   traces of a transfer across IP and packet-filter crashes;
//! * [`dependability`] — the same methodology pointed at the modern stack:
//!   faults (including correlated same-shard double faults and driver→IP
//!   cascades) injected into the *sharded*, GRO-enabled pipelines while
//!   the `newt-apps` HTTP server carries live load, measuring per-run
//!   availability, recovery time in virtual ms, forced reconnects and
//!   byte-exact bodies — plus the rolling-upgrade mode, which live-updates
//!   every component one at a time under the same load and requires that
//!   *nothing* is dropped — the `BENCH_dependability.json` record;
//! * [`overload`] — the hostile-traffic campaigns: SYN floods, slow
//!   loris, connection churn and malformed-frame fuzz launched from the
//!   peer against the serving stack while verified keep-alive load runs,
//!   measuring goodput retained and every defense counter — the
//!   `BENCH_overload.json` record.
//!
//! All of them are driven through the public
//! [`NewtStack`](newt_stack::builder::NewtStack) API, exactly as an
//! external test harness would drive the real system.
//!
//! See `docs/DEPENDABILITY.md` for the fault model, the campaign knobs and
//! how the outcome taxonomy maps onto the paper's §VI.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod dependability;
pub mod figures;
pub mod overload;

pub use campaign::{
    derive_weights, run_campaign, run_one, topology_fault_targets, CampaignConfig, CampaignReport,
    FaultKind, RunOutcome,
};
pub use dependability::{
    run_dependability_campaign, run_rolling_upgrade, DependabilityConfig, DependabilityReport,
    FaultMode, Outcome, RollingUpgradeConfig, RollingUpgradeReport, RunRecord, UpgradeRecord,
};
pub use figures::{run_trace_experiment, TraceExperimentConfig, TraceExperimentResult};
pub use overload::{run_overload, AttackKind, OverloadConfig, OverloadRecord};
