//! In-process HTTP load generator.
//!
//! Drives hundreds of concurrent keep-alive HTTP connections *from the
//! remote peer host through the NIC into the stack* — the direction real
//! traffic arrives from — using the peer's client flows
//! ([`RemotePeer::client_connect`](newt_net::peer::RemotePeer::client_connect)).
//! Each connection issues GET requests back to back, verifies every
//! response body byte for byte, and measures per-request latency in
//! **virtual time**, so the resulting requests/sec and p50/p99 numbers are
//! a property of the stack, not of the host CPU the bench happens to run
//! on.
//!
//! Failures are handled the way the paper's workloads handle them (§VI-B's
//! SSH client): a connection that dies — reset by a reincarnated TCP
//! server, or starved past its response timeout on a badly impaired link —
//! is abandoned, a fresh connection is opened on a new source port, and
//! the in-flight request is retried.  A transfer therefore *survives* a
//! mid-flight TCP-server crash, at the cost of a latency spike.

use std::time::Duration;

use newt_net::peer::ClientStatus;
use newt_stack::builder::{NewtStack, StackConfig};

use crate::http::{body_for_path, request_bytes, ResponseReader};

/// Configuration of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent keep-alive connections.
    pub connections: usize,
    /// Requests issued per connection.
    pub requests_per_connection: usize,
    /// Request target; must be servable ([`body_for_path`]).
    pub path: String,
    /// Server port.
    pub port: u16,
    /// Which NIC/peer the load enters through.
    pub nic: usize,
    /// First client source port (grows upwards, also for retries).
    pub src_port_base: u16,
    /// Virtual-time budget per request (connect or response) before the
    /// connection is abandoned and the request retried on a fresh one.
    pub response_timeout: Duration,
    /// Real-time bound on the whole run.
    pub run_deadline: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 8,
            requests_per_connection: 4,
            path: "/bytes/2048".to_string(),
            port: 80,
            nic: 0,
            src_port_base: 21_000,
            response_timeout: Duration::from_secs(5),
            run_deadline: Duration::from_secs(120),
        }
    }
}

/// Outcome of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests completed with a verified 200 response.
    pub completed: u64,
    /// Connections abandoned and reopened (crash recovery, timeouts).
    pub retries: u64,
    /// Responses whose status or body did not match the expectation.
    pub verify_failures: u64,
    /// Whether every connection finished its request quota before the
    /// real-time deadline.
    pub completed_all: bool,
    /// Virtual time the run took.
    pub virtual_secs: f64,
    /// Requests per virtual second.
    pub rps: f64,
    /// Median request latency (virtual microseconds).
    pub p50_us: f64,
    /// 99th-percentile request latency (virtual microseconds).
    pub p99_us: f64,
    /// All request latencies, sorted, in virtual microseconds.
    pub latencies_us: Vec<f64>,
    /// Virtual time of every completion, in microseconds since the run
    /// started, in completion order (unlike `latencies_us`, which is
    /// sorted by magnitude).  The dependability campaign turns this
    /// timeline into per-fault-window availability: requests completed
    /// while a component was down versus the steady-state rate.
    pub completions_us: Vec<f64>,
    /// Verified response-body bytes received.
    pub bytes_received: u64,
}

/// Live view of a load run, handed to the mid-run hook once per generator
/// loop pass.  The fault campaign uses it to wait for steady state, pick
/// the injection moment, and watch the run drain afterwards — all in the
/// generator's own thread, so injections are precisely placed in the
/// request timeline.
#[derive(Debug, Clone, Copy)]
pub struct LoadSnapshot {
    /// Current virtual time (the stack clock's absolute `now`).
    pub now: Duration,
    /// Virtual time elapsed since the run started.
    pub since_start: Duration,
    /// Requests completed so far (verified or not).
    pub completed: u64,
    /// Connections abandoned and reopened so far.
    pub retries: u64,
    /// Responses that failed status/body verification so far.
    pub verify_failures: u64,
}

/// Returns the `p`-quantile (0..=1) of an already sorted latency slice.
pub fn percentile_us(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[derive(Debug)]
struct GenConn {
    src_port: u16,
    remaining: usize,
    reader: ResponseReader,
    /// Virtual time the current *attempt* (request send or connect)
    /// started — drives the response/connect timeout.
    started: Duration,
    /// Virtual time the current logical request was *first* issued.  Kept
    /// across reconnect retries so recorded latencies include the whole
    /// failure-detection and reconnect cost (the "latency spike" a crash
    /// is supposed to show up as).
    issued_at: Option<Duration>,
    request_outstanding: bool,
}

/// Runs the configured HTTP load against `stack` (whose HTTP server must
/// already listen on `config.port`) and returns the measured report.
///
/// # Panics
///
/// Panics if `config.path` is not servable by the HTTP routing table —
/// the generator needs the expected body for verification.
pub fn run_http_load(stack: &NewtStack, config: &LoadConfig) -> LoadReport {
    run_http_load_with_hook(stack, config, |_snapshot| {})
}

/// Like [`run_http_load`], but invokes `hook` with a [`LoadSnapshot`] once
/// per generator loop pass.  This is the fault campaign's entry point: the
/// hook watches the completion count to detect steady state, injects
/// faults mid-run, and triggers manual recovery when the run stalls.
///
/// # Panics
///
/// Panics if `config.path` is not servable by the HTTP routing table.
pub fn run_http_load_with_hook<F: FnMut(&LoadSnapshot)>(
    stack: &NewtStack,
    config: &LoadConfig,
    mut hook: F,
) -> LoadReport {
    let expected = body_for_path(&config.path).expect("load path must be servable");
    let request = request_bytes(&config.path);
    let peer = stack.peer(config.nic);
    let clock = stack.clock();
    let server_addr = StackConfig::local_addr(config.nic);

    let mut next_port = config.src_port_base;
    let mut alloc_port = || {
        let p = next_port;
        next_port += 1;
        assert!(next_port < 40_000, "source ports exhausted");
        p
    };

    let mut conns: Vec<GenConn> = (0..config.connections)
        .map(|_| {
            let src_port = alloc_port();
            peer.client_connect(src_port, server_addr, config.port);
            GenConn {
                src_port,
                remaining: config.requests_per_connection,
                reader: ResponseReader::new(),
                started: clock.now(),
                issued_at: None,
                request_outstanding: false,
            }
        })
        .collect();

    let t0 = clock.now();
    let hard_deadline = std::time::Instant::now() + config.run_deadline;
    let mut latencies_us: Vec<f64> = Vec::new();
    let mut completions_us: Vec<f64> = Vec::new();
    let mut retries = 0u64;
    let mut verify_failures = 0u64;
    let mut bytes_received = 0u64;
    let mut completed_all = true;

    'run: loop {
        let mut all_done = true;
        let mut progress = false;
        for conn in conns.iter_mut() {
            if conn.remaining == 0 {
                continue;
            }
            all_done = false;
            let now = clock.now();
            let reconnect = match peer.client_status(conn.src_port) {
                Some(ClientStatus::Established) => {
                    if !conn.request_outstanding {
                        peer.client_send(conn.src_port, &request);
                        conn.started = now;
                        // A retried request keeps its original issue time.
                        conn.issued_at.get_or_insert(now);
                        conn.request_outstanding = true;
                        progress = true;
                        false
                    } else {
                        let data = peer.client_take(conn.src_port);
                        if !data.is_empty() {
                            conn.reader.push(&data);
                            progress = true;
                        }
                        while let Some((status, body)) = conn.reader.pop_response() {
                            if status != 200 || body != expected {
                                verify_failures += 1;
                            } else {
                                bytes_received += body.len() as u64;
                            }
                            let issued = conn.issued_at.take().unwrap_or(conn.started);
                            latencies_us.push((clock.now() - issued).as_secs_f64() * 1e6);
                            completions_us.push((clock.now() - t0).as_secs_f64() * 1e6);
                            conn.remaining -= 1;
                            conn.request_outstanding = false;
                            progress = true;
                            if conn.remaining > 0 {
                                peer.client_send(conn.src_port, &request);
                                conn.started = clock.now();
                                conn.issued_at = Some(conn.started);
                                conn.request_outstanding = true;
                            } else {
                                break;
                            }
                        }
                        // Overdue: the server-side connection is probably
                        // gone (e.g. TCP server reincarnated).
                        conn.request_outstanding
                            && clock.now() - conn.started > config.response_timeout
                    }
                }
                Some(ClientStatus::Resolving) | Some(ClientStatus::Connecting) => {
                    now - conn.started > config.response_timeout
                }
                Some(ClientStatus::Closed) | Some(ClientStatus::Failed) | None => true,
            };
            if reconnect {
                peer.client_close(conn.src_port);
                conn.src_port = alloc_port();
                conn.reader = ResponseReader::new();
                conn.request_outstanding = false;
                conn.started = clock.now();
                retries += 1;
                progress = true;
                peer.client_connect(conn.src_port, server_addr, config.port);
            }
        }
        let now = clock.now();
        hook(&LoadSnapshot {
            now,
            since_start: now - t0,
            completed: latencies_us.len() as u64,
            retries,
            verify_failures,
        });
        if all_done {
            break 'run;
        }
        if std::time::Instant::now() >= hard_deadline {
            completed_all = false;
            break 'run;
        }
        if !progress {
            std::thread::sleep(Duration::from_micros(300));
        }
    }
    let virtual_secs = (clock.now() - t0).as_secs_f64().max(1e-9);
    for conn in &conns {
        peer.client_close(conn.src_port);
    }

    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let completed = latencies_us.len() as u64 - verify_failures.min(latencies_us.len() as u64);
    LoadReport {
        completed,
        retries,
        verify_failures,
        completed_all,
        virtual_secs,
        rps: latencies_us.len() as f64 / virtual_secs,
        p50_us: percentile_us(&latencies_us, 0.50),
        p99_us: percentile_us(&latencies_us, 0.99),
        latencies_us,
        completions_us,
        bytes_received,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_a_sorted_slice() {
        let lat: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile_us(&lat, 0.0), 1.0);
        assert_eq!(percentile_us(&lat, 1.0), 100.0);
        assert_eq!(percentile_us(&lat, 0.5), 51.0);
        assert!((percentile_us(&lat, 0.99) - 99.0).abs() <= 1.0);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
    }

    #[test]
    fn default_config_is_servable() {
        assert!(body_for_path(&LoadConfig::default().path).is_some());
    }
}
