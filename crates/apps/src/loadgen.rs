//! In-process HTTP load generator.
//!
//! Drives hundreds of concurrent keep-alive HTTP connections *from the
//! remote peer host through the NIC into the stack* — the direction real
//! traffic arrives from — using the peer's client flows
//! ([`RemotePeer::client_connect`](newt_net::peer::RemotePeer::client_connect)).
//! Each connection issues GET requests back to back, verifies every
//! response body byte for byte, and measures per-request latency in
//! **virtual time**, so the resulting requests/sec and p50/p99 numbers are
//! a property of the stack, not of the host CPU the bench happens to run
//! on.
//!
//! Failures are handled the way the paper's workloads handle them (§VI-B's
//! SSH client): a connection that dies — reset by a reincarnated TCP
//! server, or starved past its response timeout on a badly impaired link —
//! is abandoned, a fresh connection is opened on a new source port, and
//! the in-flight request is retried.  A transfer therefore *survives* a
//! mid-flight TCP-server crash, at the cost of a latency spike.

use std::time::Duration;

use newt_net::peer::ClientStatus;
use newt_stack::builder::{NewtStack, StackConfig};

use crate::http::{body_for_path, request_bytes, ResponseReader};

/// Configuration of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent keep-alive connections.
    pub connections: usize,
    /// Requests issued per connection.
    pub requests_per_connection: usize,
    /// Request target; must be servable ([`body_for_path`]).
    pub path: String,
    /// Server port.
    pub port: u16,
    /// Which NIC/peer the load enters through.
    pub nic: usize,
    /// First client source port (grows upwards, also for retries).
    pub src_port_base: u16,
    /// Virtual-time budget per request (connect or response) before the
    /// connection is abandoned and the request retried on a fresh one.
    pub response_timeout: Duration,
    /// Real-time bound on the whole run.
    pub run_deadline: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 8,
            requests_per_connection: 4,
            path: "/bytes/2048".to_string(),
            port: 80,
            nic: 0,
            src_port_base: 21_000,
            response_timeout: Duration::from_secs(5),
            run_deadline: Duration::from_secs(120),
        }
    }
}

/// Outcome of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests completed with a verified 200 response.
    pub completed: u64,
    /// Connections abandoned and reopened (crash recovery, timeouts).
    pub retries: u64,
    /// Responses whose status or body did not match the expectation.
    pub verify_failures: u64,
    /// Whether every connection finished its request quota before the
    /// real-time deadline.
    pub completed_all: bool,
    /// Virtual time the run took.
    pub virtual_secs: f64,
    /// Requests per virtual second.
    pub rps: f64,
    /// Median request latency (virtual microseconds).
    pub p50_us: f64,
    /// 99th-percentile request latency (virtual microseconds).
    pub p99_us: f64,
    /// All request latencies, sorted, in virtual microseconds.
    pub latencies_us: Vec<f64>,
    /// Virtual time of every completion, in microseconds since the run
    /// started, in completion order (unlike `latencies_us`, which is
    /// sorted by magnitude).  The dependability campaign turns this
    /// timeline into per-fault-window availability: requests completed
    /// while a component was down versus the steady-state rate.
    pub completions_us: Vec<f64>,
    /// Verified response-body bytes received.
    pub bytes_received: u64,
}

/// Live view of a load run, handed to the mid-run hook once per generator
/// loop pass.  The fault campaign uses it to wait for steady state, pick
/// the injection moment, and watch the run drain afterwards — all in the
/// generator's own thread, so injections are precisely placed in the
/// request timeline.
#[derive(Debug, Clone, Copy)]
pub struct LoadSnapshot {
    /// Current virtual time (the stack clock's absolute `now`).
    pub now: Duration,
    /// Virtual time elapsed since the run started.
    pub since_start: Duration,
    /// Requests completed so far (verified or not).
    pub completed: u64,
    /// Connections abandoned and reopened so far.
    pub retries: u64,
    /// Responses that failed status/body verification so far.
    pub verify_failures: u64,
}

/// Returns the `p`-quantile (0..=1) of an already sorted latency slice.
pub fn percentile_us(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[derive(Debug)]
struct GenConn {
    src_port: u16,
    remaining: usize,
    reader: ResponseReader,
    /// Virtual time the current *attempt* (request send or connect)
    /// started — drives the response/connect timeout.
    started: Duration,
    /// Virtual time the current logical request was *first* issued.  Kept
    /// across reconnect retries so recorded latencies include the whole
    /// failure-detection and reconnect cost (the "latency spike" a crash
    /// is supposed to show up as).
    issued_at: Option<Duration>,
    request_outstanding: bool,
}

/// Runs the configured HTTP load against `stack` (whose HTTP server must
/// already listen on `config.port`) and returns the measured report.
///
/// # Panics
///
/// Panics if `config.path` is not servable by the HTTP routing table —
/// the generator needs the expected body for verification.
pub fn run_http_load(stack: &NewtStack, config: &LoadConfig) -> LoadReport {
    run_http_load_with_hook(stack, config, |_snapshot| {})
}

/// Like [`run_http_load`], but invokes `hook` with a [`LoadSnapshot`] once
/// per generator loop pass.  This is the fault campaign's entry point: the
/// hook watches the completion count to detect steady state, injects
/// faults mid-run, and triggers manual recovery when the run stalls.
///
/// # Panics
///
/// Panics if `config.path` is not servable by the HTTP routing table.
pub fn run_http_load_with_hook<F: FnMut(&LoadSnapshot)>(
    stack: &NewtStack,
    config: &LoadConfig,
    mut hook: F,
) -> LoadReport {
    let expected = body_for_path(&config.path).expect("load path must be servable");
    let request = request_bytes(&config.path);
    let peer = stack.peer(config.nic);
    let clock = stack.clock();
    let server_addr = StackConfig::local_addr(config.nic);

    let mut next_port = config.src_port_base;
    let mut alloc_port = || {
        let p = next_port;
        next_port += 1;
        assert!(next_port < 40_000, "source ports exhausted");
        p
    };

    let mut conns: Vec<GenConn> = (0..config.connections)
        .map(|_| {
            let src_port = alloc_port();
            peer.client_connect(src_port, server_addr, config.port);
            GenConn {
                src_port,
                remaining: config.requests_per_connection,
                reader: ResponseReader::new(),
                started: clock.now(),
                issued_at: None,
                request_outstanding: false,
            }
        })
        .collect();

    let t0 = clock.now();
    let hard_deadline = std::time::Instant::now() + config.run_deadline;
    let mut latencies_us: Vec<f64> = Vec::new();
    let mut completions_us: Vec<f64> = Vec::new();
    let mut retries = 0u64;
    let mut verify_failures = 0u64;
    let mut bytes_received = 0u64;
    let mut completed_all = true;

    'run: loop {
        let mut all_done = true;
        let mut progress = false;
        for conn in conns.iter_mut() {
            if conn.remaining == 0 {
                continue;
            }
            all_done = false;
            let now = clock.now();
            let reconnect = match peer.client_status(conn.src_port) {
                Some(ClientStatus::Established) => {
                    if !conn.request_outstanding {
                        peer.client_send(conn.src_port, &request);
                        conn.started = now;
                        // A retried request keeps its original issue time.
                        conn.issued_at.get_or_insert(now);
                        conn.request_outstanding = true;
                        progress = true;
                        false
                    } else {
                        let data = peer.client_take(conn.src_port);
                        if !data.is_empty() {
                            conn.reader.push(&data);
                            progress = true;
                        }
                        while let Some((status, body)) = conn.reader.pop_response() {
                            if status != 200 || body != expected {
                                verify_failures += 1;
                            } else {
                                bytes_received += body.len() as u64;
                            }
                            let issued = conn.issued_at.take().unwrap_or(conn.started);
                            latencies_us.push((clock.now() - issued).as_secs_f64() * 1e6);
                            completions_us.push((clock.now() - t0).as_secs_f64() * 1e6);
                            conn.remaining -= 1;
                            conn.request_outstanding = false;
                            progress = true;
                            if conn.remaining > 0 {
                                peer.client_send(conn.src_port, &request);
                                conn.started = clock.now();
                                conn.issued_at = Some(conn.started);
                                conn.request_outstanding = true;
                            } else {
                                break;
                            }
                        }
                        // Overdue: the server-side connection is probably
                        // gone (e.g. TCP server reincarnated).
                        conn.request_outstanding
                            && clock.now() - conn.started > config.response_timeout
                    }
                }
                Some(ClientStatus::Resolving) | Some(ClientStatus::Connecting) => {
                    now - conn.started > config.response_timeout
                }
                Some(ClientStatus::Closed) | Some(ClientStatus::Failed) | None => true,
            };
            if reconnect {
                peer.client_close(conn.src_port);
                conn.src_port = alloc_port();
                conn.reader = ResponseReader::new();
                conn.request_outstanding = false;
                conn.started = clock.now();
                retries += 1;
                progress = true;
                peer.client_connect(conn.src_port, server_addr, config.port);
            }
        }
        let now = clock.now();
        hook(&LoadSnapshot {
            now,
            since_start: now - t0,
            completed: latencies_us.len() as u64,
            retries,
            verify_failures,
        });
        if all_done {
            break 'run;
        }
        if std::time::Instant::now() >= hard_deadline {
            completed_all = false;
            break 'run;
        }
        if !progress {
            std::thread::sleep(Duration::from_micros(300));
        }
    }
    let virtual_secs = (clock.now() - t0).as_secs_f64().max(1e-9);
    for conn in &conns {
        peer.client_close(conn.src_port);
    }

    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let completed = latencies_us.len() as u64 - verify_failures.min(latencies_us.len() as u64);
    LoadReport {
        completed,
        retries,
        verify_failures,
        completed_all,
        virtual_secs,
        rps: latencies_us.len() as f64 / virtual_secs,
        p50_us: percentile_us(&latencies_us, 0.50),
        p99_us: percentile_us(&latencies_us, 0.99),
        latencies_us,
        completions_us,
        bytes_received,
    }
}

/// Configuration of a connection-scale run ([`run_connection_scale`]):
/// open a large population of keep-alive connections in waves, issue one
/// verified request per connection, leave them all open, then measure
/// request latency at full occupancy with rotating probe subsets.
#[derive(Debug, Clone)]
pub struct ConnScaleConfig {
    /// Total keep-alive connections to establish and hold.
    pub connections: usize,
    /// NICs/peers the connections are spread over round-robin (each peer
    /// owns its own source-port space, so the population can exceed one
    /// host's ephemeral ports).
    pub nics: usize,
    /// Connections opened per ramp wave.
    pub wave: usize,
    /// Server port.
    pub port: u16,
    /// Request target; must be servable ([`body_for_path`]).
    pub path: String,
    /// Virtual-time budget per connect/request attempt before the
    /// connection is abandoned and retried on a fresh source port.
    pub response_timeout: Duration,
    /// Real-time bound on the whole run.
    pub run_deadline: Duration,
    /// Full-occupancy probe rounds after the ramp.
    pub probe_rounds: usize,
    /// Connections probed per round (spread evenly over the population,
    /// rotating between rounds).
    pub probe_subset: usize,
}

impl Default for ConnScaleConfig {
    fn default() -> Self {
        ConnScaleConfig {
            connections: 100_000,
            nics: 4,
            wave: 2_000,
            port: 80,
            path: "/bytes/512".to_string(),
            // Virtual time: at a 20x clock speedup this is a few real
            // seconds.  A connect wave shares the stack with thousands of
            // in-flight handshakes, so a tight bound here turns ordinary
            // queueing into a reconnect storm that exhausts retry ports.
            response_timeout: Duration::from_secs(120),
            run_deadline: Duration::from_secs(900),
            probe_rounds: 8,
            probe_subset: 64,
        }
    }
}

/// Outcome of a connection-scale run.
#[derive(Debug, Clone)]
pub struct ConnScaleReport {
    /// Connections the run was asked to hold.
    pub target: usize,
    /// Connections still established when the run ended.
    pub established: usize,
    /// Requests completed with a verified 200 response (ramp + probes).
    pub completed: u64,
    /// Responses whose status or body did not match.
    pub verify_failures: u64,
    /// Connections abandoned and reopened.
    pub retries: u64,
    /// Virtual time the ramp (connect + first request per connection)
    /// took.
    pub ramp_virtual_secs: f64,
    /// Connections established per virtual second during the ramp.
    pub connects_per_sec: f64,
    /// Median ramp request latency (virtual microseconds).
    pub p50_us: f64,
    /// 99th-percentile ramp request latency (virtual microseconds).
    pub p99_us: f64,
    /// 99th-percentile probe latency at full occupancy (virtual
    /// microseconds) — the "p99 intact under 100k connections" figure.
    pub probe_p99_us: f64,
    /// Whether the ramp and every probe finished before the real-time
    /// deadline.
    pub completed_all: bool,
}

/// One in-flight request attempt of the connection-scale run.
struct ScaleFlight {
    /// Index into the connection table.
    index: usize,
    reader: ResponseReader,
    /// Virtual time the current attempt started.
    started: Duration,
    /// Virtual time the logical request was first issued (kept across
    /// retries).
    issued_at: Option<Duration>,
    outstanding: bool,
    done: bool,
}

impl ScaleFlight {
    fn new(index: usize, now: Duration) -> Self {
        ScaleFlight {
            index,
            reader: ResponseReader::new(),
            started: now,
            issued_at: None,
            outstanding: false,
            done: false,
        }
    }
}

/// A held connection: which NIC's peer owns it and on which source port.
struct ScaleConn {
    nic: usize,
    src_port: u16,
}

/// Opens `config.connections` keep-alive connections against `stack`
/// (whose HTTP server must already listen on `config.port`) in waves,
/// completes one verified request on each, holds them all open, then
/// probes request latency at full occupancy.
///
/// # Panics
///
/// Panics if `config.path` is not servable, or if the retry source-port
/// space of a peer is exhausted.
pub fn run_connection_scale(stack: &NewtStack, config: &ConnScaleConfig) -> ConnScaleReport {
    /// First source port of the primary per-peer range.
    const PORT_BASE: u16 = 10_000;
    /// First source port of the per-peer retry range.
    const RETRY_BASE: u16 = 58_000;

    let expected = body_for_path(&config.path).expect("scale path must be servable");
    let request = request_bytes(&config.path);
    let clock = stack.clock();
    let nics = config.nics.max(1);
    let hard_deadline = std::time::Instant::now() + config.run_deadline;

    let mut conns: Vec<ScaleConn> = Vec::with_capacity(config.connections);
    let mut retry_cursor: Vec<u16> = vec![RETRY_BASE; nics];
    let mut ramp_latencies: Vec<f64> = Vec::new();
    let mut probe_latencies: Vec<f64> = Vec::new();
    let mut retries = 0u64;
    let mut verify_failures = 0u64;
    let mut completed_all = true;

    // Drives one flight one step; returns whether it made progress.
    let drive = |flight: &mut ScaleFlight,
                 conns: &mut Vec<ScaleConn>,
                 retry_cursor: &mut Vec<u16>,
                 retries: &mut u64,
                 verify_failures: &mut u64,
                 latencies: &mut Vec<f64>| {
        let conn = &mut conns[flight.index];
        let peer = stack.peer(conn.nic);
        let now = clock.now();
        let mut progress = false;
        let reconnect = match peer.client_status(conn.src_port) {
            Some(ClientStatus::Established) => {
                if !flight.outstanding {
                    peer.client_send(conn.src_port, &request);
                    flight.started = now;
                    flight.issued_at.get_or_insert(now);
                    flight.outstanding = true;
                    progress = true;
                    false
                } else {
                    let data = peer.client_take(conn.src_port);
                    if !data.is_empty() {
                        flight.reader.push(&data);
                        progress = true;
                    }
                    if let Some((status, body)) = flight.reader.pop_response() {
                        if status != 200 || body != expected {
                            *verify_failures += 1;
                        }
                        let issued = flight.issued_at.take().unwrap_or(flight.started);
                        latencies.push((clock.now() - issued).as_secs_f64() * 1e6);
                        flight.outstanding = false;
                        flight.done = true;
                        progress = true;
                        false
                    } else {
                        now - flight.started > config.response_timeout
                    }
                }
            }
            Some(ClientStatus::Resolving) | Some(ClientStatus::Connecting) => {
                now - flight.started > config.response_timeout
            }
            Some(ClientStatus::Closed) | Some(ClientStatus::Failed) | None => true,
        };
        if reconnect {
            peer.client_close(conn.src_port);
            conn.src_port = retry_cursor[conn.nic];
            retry_cursor[conn.nic] = retry_cursor[conn.nic]
                .checked_add(1)
                .expect("retry source ports exhausted");
            *retries += 1;
            flight.reader = ResponseReader::new();
            flight.outstanding = false;
            flight.started = clock.now();
            progress = true;
            peer.client_connect(
                conn.src_port,
                StackConfig::local_addr(conn.nic),
                config.port,
            );
        }
        progress
    };

    // ---- ramp: open the population in waves, one request each ----------
    let t0 = clock.now();
    'ramp: for wave_start in (0..config.connections).step_by(config.wave.max(1)) {
        let wave_end = (wave_start + config.wave.max(1)).min(config.connections);
        let mut flights: Vec<ScaleFlight> = (wave_start..wave_end)
            .map(|i| {
                let nic = i % nics;
                let offset = i / nics;
                assert!(
                    (PORT_BASE as usize) + offset < RETRY_BASE as usize,
                    "primary source ports exhausted — spread over more NICs"
                );
                let src_port = PORT_BASE + offset as u16;
                stack
                    .peer(nic)
                    .client_connect(src_port, StackConfig::local_addr(nic), config.port);
                conns.push(ScaleConn { nic, src_port });
                ScaleFlight::new(i, clock.now())
            })
            .collect();
        loop {
            let mut all_done = true;
            let mut progress = false;
            for flight in flights.iter_mut() {
                if flight.done {
                    continue;
                }
                all_done = false;
                progress |= drive(
                    flight,
                    &mut conns,
                    &mut retry_cursor,
                    &mut retries,
                    &mut verify_failures,
                    &mut ramp_latencies,
                );
            }
            if all_done {
                break;
            }
            if std::time::Instant::now() >= hard_deadline {
                completed_all = false;
                break 'ramp;
            }
            if !progress {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    }
    let ramp_virtual_secs = (clock.now() - t0).as_secs_f64().max(1e-9);

    // ---- probes: request latency at full occupancy ---------------------
    if completed_all && !conns.is_empty() {
        let stride = (conns.len() / config.probe_subset.max(1)).max(1);
        'probe: for round in 0..config.probe_rounds {
            let mut flights: Vec<ScaleFlight> = (0..config.probe_subset.max(1))
                .map(|j| ScaleFlight::new((j * stride + round) % conns.len(), clock.now()))
                .collect();
            loop {
                let mut all_done = true;
                let mut progress = false;
                for flight in flights.iter_mut() {
                    if flight.done {
                        continue;
                    }
                    all_done = false;
                    progress |= drive(
                        flight,
                        &mut conns,
                        &mut retry_cursor,
                        &mut retries,
                        &mut verify_failures,
                        &mut probe_latencies,
                    );
                }
                if all_done {
                    break;
                }
                if std::time::Instant::now() >= hard_deadline {
                    completed_all = false;
                    break 'probe;
                }
                if !progress {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
    }

    // The population must still be open: count live connections.
    let established = conns
        .iter()
        .filter(|c| {
            matches!(
                stack.peer(c.nic).client_status(c.src_port),
                Some(ClientStatus::Established)
            )
        })
        .count();

    ramp_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    probe_latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let total = (ramp_latencies.len() + probe_latencies.len()) as u64;
    let completed = total - verify_failures.min(total);
    ConnScaleReport {
        target: config.connections,
        established,
        completed,
        verify_failures,
        retries,
        ramp_virtual_secs,
        connects_per_sec: conns.len() as f64 / ramp_virtual_secs,
        p50_us: percentile_us(&ramp_latencies, 0.50),
        p99_us: percentile_us(&ramp_latencies, 0.99),
        probe_p99_us: percentile_us(&probe_latencies, 0.99),
        completed_all,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_a_sorted_slice() {
        let lat: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile_us(&lat, 0.0), 1.0);
        assert_eq!(percentile_us(&lat, 1.0), 100.0);
        assert_eq!(percentile_us(&lat, 0.5), 51.0);
        assert!((percentile_us(&lat, 0.99) - 99.0).abs() <= 1.0);
        assert_eq!(percentile_us(&[], 0.5), 0.0);
    }

    #[test]
    fn default_config_is_servable() {
        assert!(body_for_path(&LoadConfig::default().path).is_some());
    }
}
