//! A minimal HTTP/1.1 codec: enough protocol for keep-alive GET traffic
//! with `Content-Length` framing, plus deterministic bodies so every
//! transfer can be integrity-checked end to end.

/// A parsed HTTP request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, ...).
    pub method: String,
    /// Request target (`/`, `/bytes/4096`, ...).
    pub path: String,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 defaults to keep-alive unless `Connection: close`).
    pub keep_alive: bool,
}

/// Result of feeding bytes to [`parse_request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// The head is not complete yet; feed more bytes.
    Incomplete,
    /// The bytes do not form a parsable HTTP request head.
    Bad,
    /// A complete request head consuming the first `usize` bytes of the
    /// input.
    Request(HttpRequest, usize),
}

/// Incrementally parses one request head from the start of `buf`.
///
/// Request bodies are not supported (the workload is GET-only); a request
/// carrying `Content-Length` is rejected as [`ParseOutcome::Bad`].
pub fn parse_request(buf: &[u8]) -> ParseOutcome {
    let Some(head_len) = find_head_end(buf) else {
        // An unbounded head is an attack, not a slow client.
        if buf.len() > 8192 {
            return ParseOutcome::Bad;
        }
        return ParseOutcome::Incomplete;
    };
    let Ok(head) = std::str::from_utf8(&buf[..head_len]) else {
        return ParseOutcome::Bad;
    };
    let mut lines = head.split("\r\n");
    let Some(request_line) = lines.next() else {
        return ParseOutcome::Bad;
    };
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ParseOutcome::Bad;
    };
    if !version.starts_with("HTTP/1.") {
        return ParseOutcome::Bad;
    }
    let mut keep_alive = true;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "connection" => keep_alive = !value.eq_ignore_ascii_case("close"),
            "content-length" if value != "0" => return ParseOutcome::Bad,
            _ => {}
        }
    }
    ParseOutcome::Request(
        HttpRequest {
            method: method.to_string(),
            path: path.to_string(),
            keep_alive,
        },
        head_len,
    )
}

/// Returns the length of the head including the `\r\n\r\n` terminator, if
/// complete.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Formats one HTTP/1.1 response with `Content-Length` framing.
pub fn response_bytes(status: u16, reason: &str, body: &[u8], keep_alive: bool) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// Formats one keep-alive GET request for `path`.
pub fn request_bytes(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: newtos\r\nConnection: keep-alive\r\n\r\n").into_bytes()
}

/// Deterministic payload of `len` bytes (the same generator on both ends
/// lets transfers be verified byte for byte).
pub fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 31 + i / 251) as u8).collect()
}

/// The server's routing table: `/` serves a small index page,
/// `/bytes/<n>` serves `n` deterministic bytes (capped at 4 MiB), anything
/// else is `None` (404).
pub fn body_for_path(path: &str) -> Option<Vec<u8>> {
    if path == "/" {
        return Some(b"<html>newtos: keep net working</html>".to_vec());
    }
    let n: usize = path.strip_prefix("/bytes/")?.parse().ok()?;
    if n > 4 * 1024 * 1024 {
        return None;
    }
    Some(pattern(n))
}

/// Incremental HTTP/1.1 response reader for the client side: feed raw
/// stream bytes in, take complete `(status, body)` pairs out.
#[derive(Debug, Default)]
pub struct ResponseReader {
    buf: Vec<u8>,
}

impl ResponseReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet forming a complete response.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete response, if one is buffered.  Returns
    /// `None` while incomplete; a malformed head yields status 0 with the
    /// raw bytes as body (so harnesses can fail loudly).
    pub fn pop_response(&mut self) -> Option<(u16, Vec<u8>)> {
        let head_len = find_head_end(&self.buf)?;
        let (status, content_length) = {
            let Ok(head) = std::str::from_utf8(&self.buf[..head_len]) else {
                let raw = std::mem::take(&mut self.buf);
                return Some((0, raw));
            };
            let mut lines = head.split("\r\n");
            let status = lines
                .next()
                .and_then(|l| l.split(' ').nth(1))
                .and_then(|s| s.parse::<u16>().ok())
                .unwrap_or(0);
            let content_length = lines
                .filter_map(|l| l.split_once(':'))
                .find(|(name, _)| name.trim().eq_ignore_ascii_case("content-length"))
                .and_then(|(_, v)| v.trim().parse::<usize>().ok())
                .unwrap_or(0);
            (status, content_length)
        };
        if self.buf.len() < head_len + content_length {
            return None;
        }
        let body = self.buf[head_len..head_len + content_length].to_vec();
        self.buf.drain(..head_len + content_length);
        Some((status, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_keep_alive_get() {
        let raw = b"GET /bytes/512 HTTP/1.1\r\nHost: x\r\n\r\ntrailing";
        match parse_request(raw) {
            ParseOutcome::Request(req, consumed) => {
                assert_eq!(req.method, "GET");
                assert_eq!(req.path, "/bytes/512");
                assert!(req.keep_alive);
                assert_eq!(&raw[consumed..], b"trailing");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn connection_close_is_honoured() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        match parse_request(raw) {
            ParseOutcome::Request(req, _) => assert!(!req.keep_alive),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn incomplete_and_bad_heads_are_classified() {
        assert_eq!(parse_request(b"GET / HTT"), ParseOutcome::Incomplete);
        assert_eq!(parse_request(b"FOO\r\n\r\n"), ParseOutcome::Bad);
        assert_eq!(parse_request(b"GET / SPDY/3\r\n\r\n"), ParseOutcome::Bad);
        let huge = vec![b'a'; 10_000];
        assert_eq!(parse_request(&huge), ParseOutcome::Bad);
    }

    #[test]
    fn response_round_trips_through_the_reader() {
        let body = pattern(1000);
        let wire = response_bytes(200, "OK", &body, true);
        let mut reader = ResponseReader::new();
        // Feed in awkward chunk sizes.
        for chunk in wire.chunks(7) {
            reader.push(chunk);
        }
        let (status, got) = reader.pop_response().expect("complete");
        assert_eq!(status, 200);
        assert_eq!(got, body);
        assert_eq!(reader.buffered(), 0);
        assert!(reader.pop_response().is_none());
    }

    #[test]
    fn pipelined_responses_pop_in_order() {
        let mut reader = ResponseReader::new();
        reader.push(&response_bytes(200, "OK", b"first", true));
        reader.push(&response_bytes(404, "Not Found", b"second!", true));
        assert_eq!(reader.pop_response(), Some((200, b"first".to_vec())));
        assert_eq!(reader.pop_response(), Some((404, b"second!".to_vec())));
    }

    #[test]
    fn routes_serve_deterministic_bodies() {
        assert!(body_for_path("/").is_some());
        assert_eq!(body_for_path("/bytes/64").unwrap(), pattern(64));
        assert_eq!(body_for_path("/bytes/64").unwrap().len(), 64);
        assert!(body_for_path("/missing").is_none());
        assert!(body_for_path("/bytes/999999999999").is_none());
        let req = request_bytes("/bytes/64");
        assert!(req.starts_with(b"GET /bytes/64 "));
    }
}
