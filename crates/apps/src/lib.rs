//! Application workloads running *on top of* the decomposed stack.
//!
//! The paper's claim is that a dependable multiserver stack can carry real
//! application traffic fast; everything below this crate is the stack, and
//! this crate is the traffic:
//!
//! * [`http`] — a minimal HTTP/1.1 codec: request parsing, response
//!   formatting, deterministic body generation (so transfers can be
//!   integrity-checked end to end) and an incremental response reader for
//!   clients;
//! * [`httpd`] — an HTTP server built on the socket library of §V-B, one
//!   thread multiplexing hundreds of keep-alive connections through the
//!   non-blocking/poll API ([`newt_stack::posix`]), listening
//!   `SO_REUSEPORT`-style on every stack shard;
//! * [`loadgen`] — an in-process load generator driving concurrent
//!   keep-alive HTTP connections from the remote peer host through the
//!   NIC, with virtual-time latency measurement (p50/p99), end-to-end body
//!   verification and application-level retry — the workload behind
//!   `BENCH_workload.json` and the crash-during-transfer tests.
//!
//! The server survives protocol-server crashes the way §V-D prescribes:
//! listening sockets are recovered by the restarted TCP server, established
//! connections are reset and the load generator reconnects and retries,
//! exactly like the paper's SSH client that logs back in after every
//! injected fault.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(missing_debug_implementations)]

pub mod http;
pub mod httpd;
pub mod loadgen;

pub use http::{body_for_path, parse_request, response_bytes, HttpRequest, ResponseReader};
pub use httpd::{Httpd, HttpdConfig, HttpdStats};
pub use loadgen::{
    percentile_us, run_http_load, run_http_load_with_hook, LoadConfig, LoadReport, LoadSnapshot,
};
