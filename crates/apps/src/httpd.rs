//! An HTTP/1.1 server on top of the stack's POSIX socket library.
//!
//! One thread multiplexes every connection through the non-blocking
//! socket API: accept readiness comes from the TCP server's `POLL`
//! syscall, data readiness from the shared socket buffers, and the thread
//! parks in [`NetClient::poll`] when nothing is ready — the §V-B "C
//! library" grown into something an event loop can use.
//!
//! The server listens `SO_REUSEPORT`-style: one listening socket per
//! stack shard ([`NetClient::listen_sharded`]), so the NIC's RSS hash
//! decides which replicated pipeline serves each inbound connection and
//! the workload scales with the shard count.
//!
//! Crash behaviour follows §V-D: when a TCP shard is reincarnated its
//! listening sockets are recovered and the server keeps accepting;
//! established connections surface errors and are dropped, and clients
//! reconnect (see `newt_apps::loadgen`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use newt_stack::posix::{Interest, NetClient, PollFd, TcpSocket};
use newt_stack::sockbuf::SockError;

use crate::http::{body_for_path, parse_request, response_bytes, HttpRequest, ParseOutcome};

/// Configuration of an [`Httpd`].
#[derive(Debug, Clone)]
pub struct HttpdConfig {
    /// TCP port to listen on.
    pub port: u16,
    /// Accept backlog per shard listener.
    pub backlog: usize,
}

impl Default for HttpdConfig {
    fn default() -> Self {
        HttpdConfig {
            port: 80,
            backlog: 64,
        }
    }
}

/// Counters published by the server thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HttpdStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered (any status).
    pub requests: u64,
    /// Requests answered with 404/405/400.
    pub error_responses: u64,
    /// Connections dropped because of a socket error (reset, server
    /// crash, ...).
    pub connection_errors: u64,
    /// Response bytes queued for transmission.
    pub bytes_out: u64,
}

#[derive(Debug, Default)]
struct SharedStats {
    connections: AtomicU64,
    requests: AtomicU64,
    error_responses: AtomicU64,
    connection_errors: AtomicU64,
    bytes_out: AtomicU64,
}

impl SharedStats {
    fn snapshot(&self) -> HttpdStats {
        HttpdStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            error_responses: self.error_responses.load(Ordering::Relaxed),
            connection_errors: self.connection_errors.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
        }
    }
}

/// One in-flight connection of the event loop.
#[derive(Debug)]
struct Conn {
    sock: TcpSocket,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// Cursor into `outbuf` (bytes already handed to the socket).
    sent: usize,
    close_after_flush: bool,
}

enum ConnVerdict {
    Alive(usize),
    Dead(usize, bool),
}

impl Conn {
    fn new(sock: TcpSocket) -> Self {
        Conn {
            sock,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            sent: 0,
            close_after_flush: false,
        }
    }

    /// Flushes output, reads input, answers complete requests.  Returns
    /// the work done and whether the connection survives.
    fn service(&mut self, stats: &SharedStats) -> ConnVerdict {
        let mut work = 0;

        // Flush queued response bytes.
        while self.sent < self.outbuf.len() {
            match self.sock.try_send(&self.outbuf[self.sent..]) {
                Ok(n) => {
                    self.sent += n;
                    work += 1;
                }
                Err(SockError::WouldBlock) => break,
                Err(_) => return ConnVerdict::Dead(work, true),
            }
        }
        if self.sent == self.outbuf.len() && !self.outbuf.is_empty() {
            self.outbuf.clear();
            self.sent = 0;
            if self.close_after_flush {
                return ConnVerdict::Dead(work, false);
            }
        }

        // Pull everything the shared buffer holds.  An orderly remote
        // close (EOF) must not short-circuit here: requests that arrived
        // in the same pass still deserve their responses, so only mark
        // the close and decide after the parse loop.
        loop {
            let mut chunk = [0u8; 4096];
            match self.sock.try_recv(&mut chunk) {
                Ok(0) => {
                    self.close_after_flush = true;
                    break;
                }
                Ok(n) => {
                    self.inbuf.extend_from_slice(&chunk[..n]);
                    work += 1;
                }
                Err(SockError::WouldBlock) => break,
                Err(_) => return ConnVerdict::Dead(work, true),
            }
        }

        // Answer every complete request (keep-alive pipelining works).
        loop {
            match parse_request(&self.inbuf) {
                ParseOutcome::Incomplete => break,
                ParseOutcome::Bad => {
                    self.queue_response(400, "Bad Request", b"bad request", false, stats);
                    stats.error_responses.fetch_add(1, Ordering::Relaxed);
                    self.inbuf.clear();
                    work += 1;
                    break;
                }
                ParseOutcome::Request(request, consumed) => {
                    self.inbuf.drain(..consumed);
                    self.respond(&request, stats);
                    work += 1;
                }
            }
        }

        // The remote closed and every queued response is out: drop the
        // connection (responses queued above flush on the next pass).
        if self.close_after_flush && self.outbuf.is_empty() {
            return ConnVerdict::Dead(work, false);
        }

        ConnVerdict::Alive(work)
    }

    fn respond(&mut self, request: &HttpRequest, stats: &SharedStats) {
        if request.method != "GET" {
            stats.error_responses.fetch_add(1, Ordering::Relaxed);
            self.queue_response(
                405,
                "Method Not Allowed",
                b"GET only",
                request.keep_alive,
                stats,
            );
            return;
        }
        match body_for_path(&request.path) {
            Some(body) => self.queue_response(200, "OK", &body, request.keep_alive, stats),
            None => {
                stats.error_responses.fetch_add(1, Ordering::Relaxed);
                self.queue_response(
                    404,
                    "Not Found",
                    b"no such object",
                    request.keep_alive,
                    stats,
                )
            }
        }
    }

    fn queue_response(
        &mut self,
        status: u16,
        reason: &str,
        body: &[u8],
        keep_alive: bool,
        stats: &SharedStats,
    ) {
        let wire = response_bytes(status, reason, body, keep_alive);
        stats.requests.fetch_add(1, Ordering::Relaxed);
        stats
            .bytes_out
            .fetch_add(wire.len() as u64, Ordering::Relaxed);
        self.outbuf.extend_from_slice(&wire);
        if !keep_alive {
            self.close_after_flush = true;
        }
    }
}

/// A running HTTP server (one event-loop thread).  Dropping the handle
/// stops the thread.
#[derive(Debug)]
pub struct Httpd {
    stop: Arc<AtomicBool>,
    stats: Arc<SharedStats>,
    thread: Option<JoinHandle<()>>,
}

impl Httpd {
    /// Binds one listener per stack shard on `config.port` and spawns the
    /// event loop.  `shards` is the stack's shard count
    /// ([`NewtStack::shards`](newt_stack::builder::NewtStack::shards)).
    ///
    /// # Errors
    ///
    /// Whatever [`NetClient::listen_sharded`] can return (the listeners
    /// are set up synchronously so a returned `Httpd` is already
    /// serving).
    pub fn spawn(client: NetClient, shards: usize, config: HttpdConfig) -> Result<Self, SockError> {
        let client = client.nonblocking();
        let listeners = client.listen_sharded(config.port, config.backlog, shards)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(SharedStats::default());
        let thread = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("newtos-httpd".to_string())
                .spawn(move || run_event_loop(&client, &listeners, &stop, &stats))
                .expect("spawning the httpd thread")
        };
        Ok(Httpd {
            stop,
            stats,
            thread: Some(thread),
        })
    }

    /// Returns the server's counters.
    pub fn stats(&self) -> HttpdStats {
        self.stats.snapshot()
    }

    /// Stops the event loop and waits for the thread to exit.
    pub fn stop(mut self) -> HttpdStats {
        self.halt();
        self.stats.snapshot()
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Httpd {
    fn drop(&mut self) {
        self.halt();
    }
}

fn run_event_loop(
    client: &NetClient,
    listeners: &[TcpSocket],
    stop: &AtomicBool,
    stats: &SharedStats,
) {
    let mut conns: Vec<Conn> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        let mut work = 0;

        // Accept until every backlog is drained.  A restarting TCP shard
        // answers ServerUnavailable; its listener was persisted and comes
        // back with the reincarnation, so treat errors as "nothing yet".
        for listener in listeners {
            while let Ok(Some((sock, _addr, _port))) = listener.accept_nb() {
                stats.connections.fetch_add(1, Ordering::Relaxed);
                conns.push(Conn::new(sock));
                work += 1;
            }
        }

        // Service every connection; collect the dead ones.
        let mut dead: Vec<usize> = Vec::new();
        for (index, conn) in conns.iter_mut().enumerate() {
            match conn.service(stats) {
                ConnVerdict::Alive(w) => work += w,
                ConnVerdict::Dead(w, errored) => {
                    work += w + 1;
                    if errored {
                        stats.connection_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    dead.push(index);
                }
            }
        }
        for index in dead.into_iter().rev() {
            let conn = conns.swap_remove(index);
            let _ = conn.sock.close();
        }

        if work == 0 {
            // Park on readiness instead of spinning: accept backlogs plus
            // every connection (read always; write only with output
            // pending).  The short timeout doubles as the stop-flag poll
            // interval.
            let mut fds: Vec<PollFd<'_>> = listeners
                .iter()
                .map(|l| PollFd::new(l, Interest::Accept))
                .collect();
            for conn in &conns {
                let interest = if conn.sent < conn.outbuf.len() {
                    Interest::ReadWrite
                } else {
                    Interest::Readable
                };
                fds.push(PollFd::new(&conn.sock, interest));
            }
            let _ = client.poll(&mut fds, Duration::from_millis(2));
        }
    }
}
