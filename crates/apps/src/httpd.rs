//! An HTTP/1.1 server driven by the stack's **syscall rings**.
//!
//! One thread multiplexes every connection through the ring API
//! ([`NetClient::ring`]): accepted connections arrive as multishot
//! accept completions, data readiness as one-shot `PollArm` completions,
//! and the thread parks on the completion queue when nothing is ready.
//! Each loop pass touches **only the connections that completed** —
//! O(active), not O(open) — which is what lets a single stack hold
//! 100 000 keep-alive connections (see [`HttpdConfig::connection_scale`]).
//!
//! Send and receive run inline against the shared socket buffers (zero
//! fabric messages); only accept arms and closes cross the fabric, and
//! the SYSCALL servers batch those.
//!
//! The server listens `SO_REUSEPORT`-style: one listening socket per
//! stack shard ([`NetClient::listen_sharded_with_caps`]), so the NIC's
//! RSS hash decides which replicated pipeline serves each inbound
//! connection and the workload scales with the shard count.
//!
//! Crash behaviour follows §V-D: when a TCP shard is reincarnated its
//! listening sockets are recovered and the SYSCALL ring pump re-forwards
//! the accept arms, so the server keeps accepting; established
//! connections surface errors and are dropped, and clients reconnect
//! (see `newt_apps::loadgen`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use newt_stack::posix::{NetClient, RingHandle, TcpSocket};
use newt_stack::rings::{interest_bits, Sqe, SqeOp};
use newt_stack::sockbuf::SockError;
use newt_stack::SimClock;

use crate::http::{body_for_path, parse_request, response_bytes, HttpRequest, ParseOutcome};

/// Configuration of an [`Httpd`].
#[derive(Debug, Clone)]
pub struct HttpdConfig {
    /// TCP port to listen on.
    pub port: u16,
    /// Accept backlog per shard listener.
    pub backlog: usize,
    /// Per-connection send-buffer capacity in bytes (0 = server default).
    pub send_cap: u32,
    /// Per-connection receive-buffer capacity in bytes (0 = server
    /// default).
    pub recv_cap: u32,
    /// How long a connection may sit on a partially received request
    /// before it is killed (virtual time; zero disables the deadline).
    /// This is the slow-loris defense: idle keep-alive connections are
    /// exempt, only connections holding request *fragments* are timed.
    pub header_deadline: Duration,
    /// Admission watermark: beyond this many open connections new
    /// arrivals are shed with `503` + `Connection: close`, and past a
    /// 25 % overshoot the accept loop pauses entirely (0 = unlimited).
    pub max_connections: usize,
    /// Clock for the header deadline (virtual time, so campaigns at a
    /// clock speed-up measure the knobs they configured).  `None`
    /// disables the deadline sweep.
    pub clock: Option<SimClock>,
}

impl Default for HttpdConfig {
    fn default() -> Self {
        HttpdConfig {
            port: 80,
            backlog: 64,
            send_cap: 0,
            recv_cap: 0,
            header_deadline: Duration::ZERO,
            max_connections: 0,
            clock: None,
        }
    }
}

impl HttpdConfig {
    /// The 100 000-connection preset: 4 KiB socket buffers each way
    /// bound the per-connection memory (the buffers allocate lazily, so
    /// an idle keep-alive connection holds far less), and a deep backlog
    /// absorbs connect waves.
    pub fn connection_scale() -> Self {
        HttpdConfig {
            port: 80,
            backlog: 4096,
            send_cap: 4096,
            recv_cap: 4096,
            ..HttpdConfig::default()
        }
    }
}

/// Counters published by the server thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HttpdStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered (any status).
    pub requests: u64,
    /// Requests answered with 404/405/400.
    pub error_responses: u64,
    /// Connections dropped because of a socket error (reset, server
    /// crash, ...).
    pub connection_errors: u64,
    /// Response bytes queued for transmission.
    pub bytes_out: u64,
    /// Ring completion entries consumed by the event loop.
    pub ring_cqes: u64,
    /// Total ring operations completed for this server's ring group
    /// (inline sends/receives plus queued completions) — the denominator
    /// of the fabric-messages-per-socket-op metric.
    pub ring_ops: u64,
    /// Connections shed with `503 Service Unavailable` at the admission
    /// watermark.
    pub shed_503: u64,
    /// Connections killed by the header-read deadline (slow loris).
    pub loris_kills: u64,
    /// Loop passes in which the accept drain was paused because the
    /// connection table sat past the hard admission cap.
    pub accept_paused: u64,
}

#[derive(Debug, Default)]
struct SharedStats {
    connections: AtomicU64,
    requests: AtomicU64,
    error_responses: AtomicU64,
    connection_errors: AtomicU64,
    bytes_out: AtomicU64,
    ring_cqes: AtomicU64,
    shed_503: AtomicU64,
    loris_kills: AtomicU64,
    accept_paused: AtomicU64,
}

impl SharedStats {
    fn snapshot(&self, ring_ops: u64) -> HttpdStats {
        HttpdStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            error_responses: self.error_responses.load(Ordering::Relaxed),
            connection_errors: self.connection_errors.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            ring_cqes: self.ring_cqes.load(Ordering::Relaxed),
            ring_ops,
            shed_503: self.shed_503.load(Ordering::Relaxed),
            loris_kills: self.loris_kills.load(Ordering::Relaxed),
            accept_paused: self.accept_paused.load(Ordering::Relaxed),
        }
    }
}

/// One in-flight connection of the event loop, identified by its socket
/// id (the ring's `user_data` for its readiness watches).
#[derive(Debug)]
struct Conn {
    sock: u64,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// Cursor into `outbuf` (bytes already handed to the socket).
    sent: usize,
    close_after_flush: bool,
    /// Virtual time at which `inbuf` first held a request fragment
    /// without completing it; cleared whenever the buffer drains.  A
    /// slow-loris client dripping one header byte per interval keeps
    /// this set, and the deadline sweep kills it — an idle keep-alive
    /// connection keeps it `None` and lives forever.
    partial_since: Option<Duration>,
}

enum ConnVerdict {
    Alive,
    Dead { errored: bool },
}

impl Conn {
    fn new(sock: u64) -> Self {
        Conn {
            sock,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            sent: 0,
            close_after_flush: false,
            partial_since: None,
        }
    }

    fn has_output(&self) -> bool {
        self.sent < self.outbuf.len()
    }

    /// Flushes output, reads input, answers complete requests — all
    /// inline through the ring.  Returns whether the connection survives.
    /// `now` (when a clock is configured) timestamps partially received
    /// requests for the slow-loris sweep.
    fn service(
        &mut self,
        ring: &RingHandle,
        stats: &SharedStats,
        now: Option<Duration>,
    ) -> ConnVerdict {
        // Flush queued response bytes.
        while self.sent < self.outbuf.len() {
            match ring.send(self.sock, &self.outbuf[self.sent..]) {
                Ok(n) => self.sent += n,
                Err(SockError::WouldBlock) => break,
                Err(_) => return ConnVerdict::Dead { errored: true },
            }
        }
        if self.sent == self.outbuf.len() && !self.outbuf.is_empty() {
            self.outbuf.clear();
            self.sent = 0;
            if self.close_after_flush {
                return ConnVerdict::Dead { errored: false };
            }
        }

        // Pull everything the shared buffer holds.  An orderly remote
        // close (EOF) must not short-circuit here: requests that arrived
        // in the same pass still deserve their responses, so only mark
        // the close and decide after the parse loop.
        loop {
            let mut chunk = [0u8; 4096];
            match ring.recv(self.sock, &mut chunk) {
                Ok(0) => {
                    self.close_after_flush = true;
                    break;
                }
                Ok(n) => self.inbuf.extend_from_slice(&chunk[..n]),
                Err(SockError::WouldBlock) => break,
                Err(_) => return ConnVerdict::Dead { errored: true },
            }
        }

        // Answer every complete request (keep-alive pipelining works).
        loop {
            match parse_request(&self.inbuf) {
                ParseOutcome::Incomplete => break,
                ParseOutcome::Bad => {
                    self.queue_response(400, "Bad Request", b"bad request", false, stats);
                    stats.error_responses.fetch_add(1, Ordering::Relaxed);
                    self.inbuf.clear();
                    break;
                }
                ParseOutcome::Request(request, consumed) => {
                    self.inbuf.drain(..consumed);
                    self.respond(&request, stats);
                }
            }
        }
        // Stamp (or clear) the partial-request timer for the loris sweep.
        if self.inbuf.is_empty() {
            self.partial_since = None;
        } else if self.partial_since.is_none() {
            self.partial_since = now;
        }

        // Push freshly queued responses out in the same pass.
        while self.sent < self.outbuf.len() {
            match ring.send(self.sock, &self.outbuf[self.sent..]) {
                Ok(n) => self.sent += n,
                Err(SockError::WouldBlock) => break,
                Err(_) => return ConnVerdict::Dead { errored: true },
            }
        }
        if self.sent == self.outbuf.len() {
            self.outbuf.clear();
            self.sent = 0;
        }

        // The remote closed and every queued response is out: drop the
        // connection.
        if self.close_after_flush && self.outbuf.is_empty() {
            return ConnVerdict::Dead { errored: false };
        }

        ConnVerdict::Alive
    }

    fn respond(&mut self, request: &HttpRequest, stats: &SharedStats) {
        if request.method != "GET" {
            stats.error_responses.fetch_add(1, Ordering::Relaxed);
            self.queue_response(
                405,
                "Method Not Allowed",
                b"GET only",
                request.keep_alive,
                stats,
            );
            return;
        }
        match body_for_path(&request.path) {
            Some(body) => self.queue_response(200, "OK", &body, request.keep_alive, stats),
            None => {
                stats.error_responses.fetch_add(1, Ordering::Relaxed);
                self.queue_response(
                    404,
                    "Not Found",
                    b"no such object",
                    request.keep_alive,
                    stats,
                )
            }
        }
    }

    fn queue_response(
        &mut self,
        status: u16,
        reason: &str,
        body: &[u8],
        keep_alive: bool,
        stats: &SharedStats,
    ) {
        let wire = response_bytes(status, reason, body, keep_alive);
        stats.requests.fetch_add(1, Ordering::Relaxed);
        stats
            .bytes_out
            .fetch_add(wire.len() as u64, Ordering::Relaxed);
        self.outbuf.extend_from_slice(&wire);
        if !keep_alive {
            self.close_after_flush = true;
        }
    }

    /// Marks the connection shed: a `503` with `Connection: close` is
    /// queued and the connection dies once it flushes.
    fn shed(&mut self, stats: &SharedStats) {
        stats.shed_503.fetch_add(1, Ordering::Relaxed);
        stats.error_responses.fetch_add(1, Ordering::Relaxed);
        self.queue_response(503, "Service Unavailable", b"overloaded", false, stats);
    }
}

/// A running HTTP server (one event-loop thread).  Dropping the handle
/// stops the thread.
#[derive(Debug)]
pub struct Httpd {
    stop: Arc<AtomicBool>,
    stats: Arc<SharedStats>,
    ring: Arc<RingHandle>,
    thread: Option<JoinHandle<()>>,
}

impl Httpd {
    /// Binds one listener per stack shard on `config.port`, sets up the
    /// syscall rings and spawns the event loop.  `shards` is the stack's
    /// shard count
    /// ([`NewtStack::shards`](newt_stack::builder::NewtStack::shards)).
    ///
    /// # Errors
    ///
    /// Whatever [`NetClient::listen_sharded_with_caps`] or
    /// [`NetClient::ring`] can return (the listeners and rings are set up
    /// synchronously, so a returned `Httpd` is already serving).
    pub fn spawn(client: NetClient, shards: usize, config: HttpdConfig) -> Result<Self, SockError> {
        let client = client.nonblocking();
        let listeners = client.listen_sharded_with_caps(
            config.port,
            config.backlog,
            shards,
            config.send_cap,
            config.recv_cap,
        )?;
        let ring = client.ring()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(SharedStats::default());
        let thread = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let ring = Arc::clone(&ring);
            let config = config.clone();
            std::thread::Builder::new()
                .name("newtos-httpd".to_string())
                .spawn(move || run_event_loop(&ring, &listeners, &stop, &stats, &config))
                .expect("spawning the httpd thread")
        };
        Ok(Httpd {
            stop,
            stats,
            ring,
            thread: Some(thread),
        })
    }

    /// Returns the server's counters.
    pub fn stats(&self) -> HttpdStats {
        self.stats.snapshot(self.ring.cq().ops_completed())
    }

    /// The server's ring handle (shared with the event loop), e.g. for
    /// the completion queue's metrics.
    pub fn ring(&self) -> &Arc<RingHandle> {
        &self.ring
    }

    /// Stops the event loop and waits for the thread to exit.
    pub fn stop(mut self) -> HttpdStats {
        self.halt();
        self.stats.snapshot(self.ring.cq().ops_completed())
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Httpd {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Queues a `Close` for `sock`; a full submission queue defers it to
/// `pending_close` for the next loop pass (backpressure, not loss).
fn close_conn(
    ring: &RingHandle,
    sock: u64,
    errored: bool,
    stats: &SharedStats,
    pending_close: &mut Vec<u64>,
) {
    if errored {
        stats.connection_errors.fetch_add(1, Ordering::Relaxed);
    }
    if let Err(SockError::WouldBlock) = ring.submit(Sqe {
        user_data: sock,
        op: SqeOp::Close { sock },
    }) {
        pending_close.push(sock);
    }
}

/// Services `conn` and either re-arms its readiness watch (keeping it in
/// the table) or closes it.
fn settle(
    conns: &mut HashMap<u64, Conn>,
    mut conn: Conn,
    ring: &RingHandle,
    stats: &SharedStats,
    pending_close: &mut Vec<u64>,
    now: Option<Duration>,
) {
    match conn.service(ring, stats, now) {
        ConnVerdict::Alive => {
            let interest = if conn.has_output() {
                interest_bits::READ | interest_bits::WRITE
            } else {
                interest_bits::READ
            };
            match ring.poll_arm(conn.sock, interest, conn.sock) {
                Ok(()) => {
                    conns.insert(conn.sock, conn);
                }
                // The buffer is gone (its TCP shard was lost); the
                // connection is unrecoverable.
                Err(_) => close_conn(ring, conn.sock, true, stats, pending_close),
            }
        }
        ConnVerdict::Dead { errored } => close_conn(ring, conn.sock, errored, stats, pending_close),
    }
}

fn run_event_loop(
    ring: &Arc<RingHandle>,
    listeners: &[TcpSocket],
    stop: &AtomicBool,
    stats: &SharedStats,
    config: &HttpdConfig,
) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut cqes = Vec::new();
    let mut pending_close: Vec<u64> = Vec::new();
    // Admission control: shed with 503 past the watermark, stop draining
    // accepts entirely past a 25 % overshoot (the backlog and the TCP
    // half-open cap absorb the rest).
    let soft_cap = config.max_connections;
    let hard_cap = soft_cap + soft_cap / 4;
    // Slow-loris sweep bookkeeping (virtual time).
    let sweep_every = config.header_deadline / 4;
    let mut next_sweep = config.clock.as_ref().map(SimClock::now).unwrap_or_default();
    let mut victims: Vec<u64> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        let now = config.clock.as_ref().map(SimClock::now);
        // Accept until every arm's deliveries are drained.  The multishot
        // accept arms wake the completion queue, so a parked loop learns
        // about new connections without polling; a restarting TCP shard
        // surfaces transient errors which the shim self-heals from.
        let mut paused = false;
        'accepting: for listener in listeners {
            loop {
                if soft_cap > 0 && conns.len() >= hard_cap {
                    paused = true;
                    break 'accepting;
                }
                let Ok(Some((sock, _addr, _port))) = listener.accept_nb() else {
                    break;
                };
                stats.connections.fetch_add(1, Ordering::Relaxed);
                // The ring handle owns the data path from here on; the
                // accepted TcpSocket wrapper is no longer needed.
                let mut conn = Conn::new(sock.id());
                if soft_cap > 0 && conns.len() >= soft_cap {
                    conn.shed(stats);
                }
                settle(&mut conns, conn, ring, stats, &mut pending_close, now);
            }
        }
        if paused {
            stats.accept_paused.fetch_add(1, Ordering::Relaxed);
        }

        // Kill connections that have been dripping a request for longer
        // than the header deadline.  O(open), so only every deadline/4.
        if let Some(now) = now {
            if !config.header_deadline.is_zero() && now >= next_sweep {
                next_sweep = now + sweep_every;
                victims.clear();
                victims.extend(conns.iter().filter_map(|(&sock, conn)| {
                    let since = conn.partial_since?;
                    (now.saturating_sub(since) >= config.header_deadline).then_some(sock)
                }));
                for sock in victims.drain(..) {
                    conns.remove(&sock);
                    stats.loris_kills.fetch_add(1, Ordering::Relaxed);
                    close_conn(ring, sock, false, stats, &mut pending_close);
                }
            }
        }

        // Park on the completion queue, then touch ONLY the connections
        // that completed — O(active) per pass, however many are open.
        // The short timeout doubles as the stop-flag poll interval.
        cqes.clear();
        if ring.drain(&mut cqes) == 0 && !stop.load(Ordering::Acquire) {
            ring.wait(&mut cqes, Duration::from_millis(2));
        }
        if !cqes.is_empty() {
            stats
                .ring_cqes
                .fetch_add(cqes.len() as u64, Ordering::Relaxed);
        }
        for cqe in cqes.drain(..) {
            // Readiness watches carry the socket id as their tag; a
            // completion for an already-closed socket (e.g. its Close
            // confirmation) finds no entry and is dropped here.
            let Some(conn) = conns.remove(&cqe.user_data) else {
                continue;
            };
            settle(&mut conns, conn, ring, stats, &mut pending_close, now);
        }

        // Retry closes the submission queue rejected earlier.
        pending_close.retain(|&sock| {
            matches!(
                ring.submit(Sqe {
                    user_data: sock,
                    op: SqeOp::Close { sock },
                }),
                Err(SockError::WouldBlock)
            )
        });
    }
}
