//! NewtOS-style dependable and fast networking stack — facade crate.
//!
//! This crate re-exports the public API of the reproduction of *Keep Net
//! Working — On a Dependable and Fast Networking Stack* (Hruby, Vogt, Bos,
//! Tanenbaum; DSN 2012) so that applications, examples and benchmarks can
//! depend on a single crate:
//!
//! * [`channels`] — the fast-path user-space communication substrate
//!   (SPSC queues, shared pools, rich pointers, request database);
//! * [`kernel`] — the microkernel substrate (kernel IPC, cost model,
//!   reincarnation server, storage server, virtual clock);
//! * [`net`] — wire formats, the simulated e1000 NIC, links, the remote
//!   peer host and trace capture;
//! * [`stack`] — the decomposed networking stack itself and the
//!   [`NewtStack`]/[`StackConfig`] entry points;
//! * [`faults`] — the SWIFI fault-injection campaign and the crash-trace
//!   experiments;
//! * [`sim`] — the analytic pipeline model reproducing Table II and the
//!   ablations;
//! * [`apps`] — the application workload layer: an HTTP/1.1 server on the
//!   poll-based socket API and the in-process HTTP load generator.
//!
//! # Quickstart
//!
//! ```no_run
//! use newtos::{NewtStack, StackConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Boot the full split stack: TCP, UDP, IP, packet filter, driver and
//! // SYSCALL servers, each on its own "core", plus a simulated gigabit link
//! // and a remote peer host.
//! let stack = NewtStack::start(StackConfig::newtos());
//!
//! // Use it through the POSIX-like client library.
//! let client = stack.client();
//! let socket = client.tcp_socket()?;
//! socket.connect(StackConfig::peer_addr(0), newtos::net::peer::IPERF_PORT)?;
//! socket.send_all(b"hello, dependable world")?;
//!
//! // Crash the packet filter; the reincarnation server restarts it and the
//! // connection keeps working.
//! stack.inject_fault(newtos::Component::PacketFilter, newtos::FaultAction::Crash);
//! stack.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use newt_apps as apps;
pub use newt_channels as channels;
pub use newt_faults as faults;
pub use newt_kernel as kernel;
pub use newt_net as net;
pub use newt_sim as sim;
pub use newt_stack as stack;

pub use newt_kernel::cost::CostModel;
pub use newt_kernel::rs::FaultAction;
pub use newt_stack::builder::{NewtStack, StackConfig, Telemetry, Topology};
pub use newt_stack::endpoints::Component;
pub use newt_stack::pf::{FilterAction, FilterRule};
pub use newt_stack::posix::{NetClient, TcpSocket, UdpSocket};
pub use newt_stack::sockbuf::SockError;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        // Compile-time checks that the re-exports resolve to the same types.
        fn assert_same<T>(_: T) {}
        assert_same::<fn(crate::StackConfig) -> crate::NewtStack>(crate::NewtStack::start);
        let config = crate::StackConfig::newtos();
        assert!(config.tso);
        let model = crate::CostModel::default();
        assert_eq!(model.channel_enqueue, 30);
    }
}
