//! The reincarnation server.
//!
//! All system servers are children of the reincarnation server, which
//! receives a signal when a server crashes and resets servers that stop
//! responding to periodic heartbeats (paper §V-D, following MINIX 3).  A
//! restarted server is told whether it starts *fresh* or in *restart* mode so
//! that it knows to recover its state from the storage server; its restart
//! *generation* is bumped so that peers can tell stale channel exports and
//! replies apart from current ones.
//!
//! Each managed service runs as a dedicated thread (standing in for a
//! dedicated core).  The service body is a closure invoked anew for every
//! incarnation; it receives a [`ServiceRuntime`] through which it
//! heartbeats, learns its start mode and observes injected faults (the hook
//! used by the `newt-faults` crate to reproduce the paper's SWIFI
//! experiments).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use newt_channels::endpoint::{Endpoint, Generation};

use crate::clock::SimClock;

/// Whether an incarnation is the first one or a restart after a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartMode {
    /// First start: initialise from scratch.
    Fresh,
    /// Restarted after a crash (or a live update whose predecessor handed
    /// over no state): recover what survives from the storage server.
    Restart,
    /// Replacement incarnation of a live update: the predecessor quiesced
    /// and handed over a [`StateSnapshot`]; restore from it instead of the
    /// storage server's lossy summaries.
    LiveUpdate,
}

/// A fault armed against a service, observed at its next fault check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault pending.
    None,
    /// The service panics (a crash the reincarnation server detects through
    /// the exit signal).
    Crash,
    /// The service stops making progress and stops heartbeating (detected by
    /// the heartbeat watchdog).
    Hang,
}

/// Why a service incarnation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashReason {
    /// The service panicked (crash signal).
    Panicked,
    /// The service's body returned even though it was not asked to stop.
    ExitedUnexpectedly,
    /// The service stopped responding to heartbeats and was reaped.
    HeartbeatTimeout,
}

/// Lifecycle state of a managed service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceStatus {
    /// The current incarnation is running.
    Running,
    /// A crash was detected and a new incarnation is being started.
    Restarting,
    /// The service was stopped deliberately.
    Stopped,
    /// The service exceeded its restart budget and was given up on.
    Failed,
}

/// A crash (and possible restart) observed by the reincarnation server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashEvent {
    /// Service name.
    pub name: String,
    /// Service endpoint.
    pub endpoint: Endpoint,
    /// Generation of the incarnation that died.
    pub generation: Generation,
    /// Why the incarnation ended.
    pub reason: CrashReason,
    /// Whether a new incarnation is being started.
    pub restarting: bool,
    /// Virtual time at which the crash was *detected* (exit signal observed
    /// or heartbeat watchdog fired).  For a hang this includes the full
    /// heartbeat-timeout detection latency; the fault-injection campaign
    /// subtracts its injection timestamp from this to report
    /// time-to-detect.
    pub at: Duration,
}

/// Virtual-time stamps of a service's most recent restart, exposed so the
/// dependability campaign can report recovery latency without instrumenting
/// the services themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryStamp {
    /// When the crash (or live-update request) was detected.
    pub detected_at: Duration,
    /// When the replacement incarnation's thread was spawned.  State
    /// recovery from the storage server happens inside the new incarnation
    /// right after this point.
    pub respawned_at: Duration,
    /// `true` when the restart was *requested* ([`ReincarnationServer::live_update`]
    /// / [`ReincarnationServer::force_restart`]) rather than detected: the
    /// `detected_at` stamp is then the request time and detection latency is
    /// by definition ~0.
    pub requested: bool,
}

/// Versioned hot state a quiescing incarnation hands to the reincarnation
/// server during a live update, restored by the replacement incarnation.
///
/// The payload is opaque to the reincarnation server; each component defines
/// its own wire format and bumps its `version` whenever that format changes.
/// A replacement incarnation must validate the tag with
/// [`StateSnapshot::accepts`] before decoding — a component name or version
/// mismatch means the snapshot was produced by an incompatible predecessor
/// and the incarnation falls back to crash-style recovery from the storage
/// server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSnapshot {
    /// Service name of the component that produced the snapshot.
    pub component: String,
    /// Component-defined wire-format version of the payload.
    pub version: u32,
    /// Generation of the incarnation that produced the snapshot.
    pub generation: Generation,
    /// Virtual time at which the state was exported.
    pub taken_at: Duration,
    /// The serialized hot state.
    pub payload: Vec<u8>,
}

impl StateSnapshot {
    /// Returns `true` when the snapshot was produced by `component` in wire
    /// format `version` — the validation every replacement incarnation
    /// performs before restoring.
    pub fn accepts(&self, component: &str, version: u32) -> bool {
        self.component == component && self.version == version
    }
}

/// Static configuration of a managed service.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Human-readable service name.
    pub name: String,
    /// Virtual-time heartbeat timeout after which the service is considered
    /// hung.
    pub heartbeat_timeout: Duration,
    /// Maximum number of automatic restarts before giving up.
    pub max_restarts: u32,
}

impl ServiceConfig {
    /// Creates a configuration with the defaults used throughout the stack:
    /// a 2-second (virtual) heartbeat timeout and a budget of 32 restarts.
    pub fn new(name: &str) -> Self {
        ServiceConfig {
            name: name.to_string(),
            heartbeat_timeout: Duration::from_secs(2),
            max_restarts: 32,
        }
    }

    /// Sets the heartbeat timeout.
    #[must_use]
    pub fn heartbeat_timeout(mut self, timeout: Duration) -> Self {
        self.heartbeat_timeout = timeout;
        self
    }

    /// Sets the restart budget.
    #[must_use]
    pub fn max_restarts(mut self, max: u32) -> Self {
        self.max_restarts = max;
        self
    }
}

#[derive(Debug)]
struct ServiceShared {
    name: String,
    endpoint: Endpoint,
    generation: AtomicU32,
    stop: AtomicBool,
    reap: AtomicBool,
    /// A live update is in progress: quiesce and hand over instead of just
    /// stopping.
    update: AtomicBool,
    /// The hand-over slot: the quiescing incarnation deposits its snapshot
    /// here; the replacement takes it.
    snapshot: Mutex<Option<StateSnapshot>>,
    start_mode: Mutex<StartMode>,
    fault: Mutex<FaultAction>,
    last_heartbeat: Mutex<Duration>,
    clock: SimClock,
}

/// Handle handed to a service body, used to heartbeat and observe control
/// signals from the reincarnation server.
#[derive(Debug, Clone)]
pub struct ServiceRuntime {
    shared: Arc<ServiceShared>,
}

impl ServiceRuntime {
    /// Returns the service name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Returns the service endpoint.
    pub fn endpoint(&self) -> Endpoint {
        self.shared.endpoint
    }

    /// Returns the start mode of this incarnation.
    pub fn start_mode(&self) -> StartMode {
        *self.shared.start_mode.lock()
    }

    /// Returns the generation of this incarnation.
    pub fn generation(&self) -> Generation {
        Generation::from_raw(self.shared.generation.load(Ordering::Acquire))
    }

    /// Returns `true` when the reincarnation server asked the service to
    /// stop (graceful shutdown or live update).
    pub fn should_stop(&self) -> bool {
        self.shared.stop.load(Ordering::Acquire)
    }

    /// Returns `true` when a live update was requested: the service should
    /// quiesce (drain in-flight work to a message boundary), export its hot
    /// state through [`ServiceRuntime::hand_over`] and return.
    ///
    /// `should_stop` is also raised during a live update, so bodies that
    /// predate the hand-over protocol still wind down — they just hand over
    /// nothing and their replacement recovers crash-style.
    pub fn update_requested(&self) -> bool {
        self.shared.update.load(Ordering::Acquire)
    }

    /// Deposits this incarnation's hot state for the replacement incarnation
    /// (the state-transfer phase of a live update).  The reincarnation server
    /// wraps the payload in a [`StateSnapshot`] tagged with the service name,
    /// the caller's `version` and the current generation.
    pub fn hand_over(&self, version: u32, payload: Vec<u8>) {
        let snapshot = StateSnapshot {
            component: self.shared.name.clone(),
            version,
            generation: Generation::from_raw(self.shared.generation.load(Ordering::Acquire)),
            taken_at: self.shared.clock.now(),
            payload,
        };
        *self.shared.snapshot.lock() = Some(snapshot);
    }

    /// Takes the predecessor's snapshot, if one was handed over.  Called by a
    /// replacement incarnation that starts in [`StartMode::LiveUpdate`].
    pub fn take_snapshot(&self) -> Option<StateSnapshot> {
        self.shared.snapshot.lock().take()
    }

    /// Records a heartbeat and honours any fault armed against the service.
    ///
    /// Service bodies call this once per event-loop iteration.  If a
    /// [`FaultAction::Crash`] is armed the call panics (the crash the
    /// reincarnation server then observes); a [`FaultAction::Hang`] makes the
    /// call stop returning — and stop heartbeating — until the watchdog reaps
    /// the service.
    ///
    /// # Panics
    ///
    /// Panics when a crash fault is armed or when the watchdog reaps a hung
    /// service; the panic is the simulated crash and is caught by the
    /// service thread wrapper.
    pub fn heartbeat(&self) {
        *self.shared.last_heartbeat.lock() = self.shared.clock.now();
        self.check_fault();
    }

    /// Honours any fault armed against the service without recording a
    /// heartbeat (see [`ServiceRuntime::heartbeat`]).
    ///
    /// # Panics
    ///
    /// Panics when a crash fault is armed or when the service is reaped.
    pub fn check_fault(&self) {
        if self.shared.reap.load(Ordering::Acquire) {
            panic!(
                "service {} reaped by the reincarnation server",
                self.shared.name
            );
        }
        let action = *self.shared.fault.lock();
        match action {
            FaultAction::None => {}
            FaultAction::Crash => {
                *self.shared.fault.lock() = FaultAction::None;
                panic!("injected crash in {}", self.shared.name);
            }
            FaultAction::Hang => {
                // Stop making progress (and heartbeating) until reaped or
                // explicitly released.
                loop {
                    if self.shared.reap.load(Ordering::Acquire) {
                        panic!("hung service {} reaped", self.shared.name);
                    }
                    if self.shared.stop.load(Ordering::Acquire) {
                        return;
                    }
                    if *self.shared.fault.lock() != FaultAction::Hang {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }
}

type ServiceBody = Arc<dyn Fn(ServiceRuntime) + Send + Sync + 'static>;

/// A registered crash-event listener.
type CrashListener = Box<dyn Fn(&CrashEvent) + Send + Sync>;

struct ManagedService {
    config: ServiceConfig,
    shared: Arc<ServiceShared>,
    body: ServiceBody,
    status: ServiceStatus,
    restarts: u32,
    thread: Option<JoinHandle<()>>,
    exited: Arc<AtomicBool>,
    panicked: Arc<AtomicBool>,
    last_recovery: Option<RecoveryStamp>,
}

impl ManagedService {
    fn spawn_incarnation(&mut self) {
        self.exited = Arc::new(AtomicBool::new(false));
        self.panicked = Arc::new(AtomicBool::new(false));
        self.shared.reap.store(false, Ordering::Release);
        *self.shared.last_heartbeat.lock() = self.shared.clock.now();
        let shared = Arc::clone(&self.shared);
        let body = Arc::clone(&self.body);
        let exited = Arc::clone(&self.exited);
        let panicked = Arc::clone(&self.panicked);
        let name = self.config.name.clone();
        let handle = std::thread::Builder::new()
            .name(format!("newtos-{name}"))
            .spawn(move || {
                let runtime = ServiceRuntime { shared };
                let result = catch_unwind(AssertUnwindSafe(|| body(runtime)));
                if result.is_err() {
                    panicked.store(true, Ordering::Release);
                }
                exited.store(true, Ordering::Release);
            })
            .expect("spawning a service thread");
        self.thread = Some(handle);
        self.status = ServiceStatus::Running;
    }
}

struct RsInner {
    clock: SimClock,
    services: Mutex<HashMap<Endpoint, ManagedService>>,
    listeners: Mutex<Vec<CrashListener>>,
    crash_log: Mutex<Vec<CrashEvent>>,
    shutdown: AtomicBool,
}

/// The reincarnation server: registers services, watches them and restarts
/// crashed or hung incarnations.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::time::Duration;
/// use newt_kernel::clock::SimClock;
/// use newt_kernel::rs::{FaultAction, ReincarnationServer, ServiceConfig};
///
/// let rs = ReincarnationServer::new(SimClock::realtime());
/// let starts = Arc::new(AtomicU32::new(0));
/// let starts_in_body = Arc::clone(&starts);
/// let ep = rs.register(ServiceConfig::new("demo"), move |rt| {
///     starts_in_body.fetch_add(1, Ordering::SeqCst);
///     while !rt.should_stop() {
///         rt.heartbeat();
///         std::thread::sleep(Duration::from_millis(1));
///     }
/// });
/// // Crash it once: the reincarnation server restarts it automatically.
/// rs.inject_fault(ep, FaultAction::Crash);
/// let deadline = std::time::Instant::now() + Duration::from_secs(10);
/// while starts.load(Ordering::SeqCst) < 2 && std::time::Instant::now() < deadline {
///     std::thread::sleep(Duration::from_millis(5));
/// }
/// rs.wait_until_running(ep, Duration::from_secs(5));
/// assert!(starts.load(Ordering::SeqCst) >= 2);
/// rs.shutdown();
/// ```
pub struct ReincarnationServer {
    inner: Arc<RsInner>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for ReincarnationServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReincarnationServer")
            .field("services", &self.inner.services.lock().len())
            .field("crashes", &self.inner.crash_log.lock().len())
            .finish()
    }
}

impl ReincarnationServer {
    /// Creates a reincarnation server and starts its watchdog.
    pub fn new(clock: SimClock) -> Self {
        let inner = Arc::new(RsInner {
            clock,
            services: Mutex::new(HashMap::new()),
            listeners: Mutex::new(Vec::new()),
            crash_log: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
        });
        let watchdog_inner = Arc::clone(&inner);
        let watchdog = std::thread::Builder::new()
            .name("newtos-rs-watchdog".to_string())
            .spawn(move || watchdog_loop(watchdog_inner))
            .expect("spawning the reincarnation watchdog");
        ReincarnationServer {
            inner,
            watchdog: Mutex::new(Some(watchdog)),
        }
    }

    /// Registers and immediately starts a service.  The body closure is
    /// invoked once per incarnation.
    pub fn register<F>(&self, config: ServiceConfig, body: F) -> Endpoint
    where
        F: Fn(ServiceRuntime) + Send + Sync + 'static,
    {
        self.register_with_endpoint(config, Endpoint::from_raw(self.next_endpoint_raw()), body)
    }

    fn next_endpoint_raw(&self) -> u32 {
        // Endpoints chosen by the caller (via `register_with_endpoint`) and
        // auto-assigned ones share the space; auto assignment starts high to
        // avoid collisions with the well-known endpoints of the stack.
        static NEXT: AtomicU32 = AtomicU32::new(0x1000);
        NEXT.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers a service under a caller-chosen endpoint (used by the stack
    /// so that servers keep well-known endpoints across restarts).
    pub fn register_with_endpoint<F>(
        &self,
        config: ServiceConfig,
        endpoint: Endpoint,
        body: F,
    ) -> Endpoint
    where
        F: Fn(ServiceRuntime) + Send + Sync + 'static,
    {
        let shared = Arc::new(ServiceShared {
            name: config.name.clone(),
            endpoint,
            generation: AtomicU32::new(0),
            stop: AtomicBool::new(false),
            reap: AtomicBool::new(false),
            update: AtomicBool::new(false),
            snapshot: Mutex::new(None),
            start_mode: Mutex::new(StartMode::Fresh),
            fault: Mutex::new(FaultAction::None),
            last_heartbeat: Mutex::new(self.inner.clock.now()),
            clock: self.inner.clock.clone(),
        });
        let mut service = ManagedService {
            config,
            shared,
            body: Arc::new(body),
            status: ServiceStatus::Running,
            restarts: 0,
            thread: None,
            exited: Arc::new(AtomicBool::new(false)),
            panicked: Arc::new(AtomicBool::new(false)),
            last_recovery: None,
        };
        service.spawn_incarnation();
        self.inner.services.lock().insert(endpoint, service);
        endpoint
    }

    /// Registers a callback invoked for every crash event (the mechanism the
    /// stack uses to tell neighbours to abort requests and re-attach
    /// channels).
    pub fn on_crash<F>(&self, listener: F)
    where
        F: Fn(&CrashEvent) + Send + Sync + 'static,
    {
        self.inner.listeners.lock().push(Box::new(listener));
    }

    /// Returns the crash events observed so far.
    pub fn crash_log(&self) -> Vec<CrashEvent> {
        self.inner.crash_log.lock().clone()
    }

    /// Returns a service's status.
    pub fn status(&self, endpoint: Endpoint) -> Option<ServiceStatus> {
        self.inner.services.lock().get(&endpoint).map(|s| s.status)
    }

    /// Returns a service's current generation.
    pub fn generation(&self, endpoint: Endpoint) -> Option<Generation> {
        self.inner
            .services
            .lock()
            .get(&endpoint)
            .map(|s| Generation::from_raw(s.shared.generation.load(Ordering::Acquire)))
    }

    /// Returns how many times a service has been restarted.
    pub fn restart_count(&self, endpoint: Endpoint) -> Option<u32> {
        self.inner
            .services
            .lock()
            .get(&endpoint)
            .map(|s| s.restarts)
    }

    /// Returns the virtual-time stamps of a service's most recent restart
    /// (crash detection and incarnation respawn), or `None` if the service
    /// has never been restarted.
    pub fn last_recovery(&self, endpoint: Endpoint) -> Option<RecoveryStamp> {
        self.inner
            .services
            .lock()
            .get(&endpoint)
            .and_then(|s| s.last_recovery)
    }

    /// Arms a fault against a service (the SWIFI hook).
    pub fn inject_fault(&self, endpoint: Endpoint, fault: FaultAction) {
        if let Some(service) = self.inner.services.lock().get(&endpoint) {
            *service.shared.fault.lock() = fault;
        }
    }

    /// Requests a graceful restart without state transfer: the current
    /// incarnation is asked to stop, then a new incarnation starts in
    /// restart mode and recovers crash-style from the storage server.
    ///
    /// Returns `true` if the service exists.
    pub fn force_restart(&self, endpoint: Endpoint) -> bool {
        self.replace_incarnation(endpoint, false)
    }

    /// Performs a live update (paper §V-E, the MS11-083 scenario): the
    /// current incarnation is asked to **quiesce** — finish its poll round,
    /// drain in-flight batches to a message boundary and stop accepting new
    /// work (peers' sends park harmlessly in the SPSC queues) — then to
    /// export its versioned hot state (**state transfer**).  The replacement
    /// incarnation starts in [`StartMode::LiveUpdate`], validates the
    /// snapshot tag, restores and **resumes**.  An incarnation that hands
    /// over nothing gets a plain [`StartMode::Restart`] replacement instead.
    ///
    /// Like [`ReincarnationServer::force_restart`] this is not a crash:
    /// nothing is written to the crash log, no crash event is published, and
    /// the recovery stamp it leaves is marked `requested` with a ~0
    /// detection latency (`detected_at` is the request time).
    ///
    /// Returns `true` if the service exists.
    pub fn live_update(&self, endpoint: Endpoint) -> bool {
        self.replace_incarnation(endpoint, true)
    }

    fn replace_incarnation(&self, endpoint: Endpoint, update: bool) -> bool {
        // The restart was *requested*, not detected: stamp detection now.
        let detected_at = self.inner.clock.now();
        let (thread, shared) = {
            let mut services = self.inner.services.lock();
            let Some(service) = services.get_mut(&endpoint) else {
                return false;
            };
            // Clear any stale hand-over before asking for a new one.
            service.shared.snapshot.lock().take();
            service.shared.update.store(update, Ordering::Release);
            service.shared.stop.store(true, Ordering::Release);
            // Marked `Stopped` (not `Restarting`) so the watchdog does not
            // race with this manual restart while the old incarnation winds
            // down.
            service.status = ServiceStatus::Stopped;
            (service.thread.take(), Arc::clone(&service.shared))
        };
        if let Some(handle) = thread {
            let _ = handle.join();
        }
        let mut services = self.inner.services.lock();
        let Some(service) = services.get_mut(&endpoint) else {
            return false;
        };
        shared.stop.store(false, Ordering::Release);
        shared.update.store(false, Ordering::Release);
        shared.generation.fetch_add(1, Ordering::AcqRel);
        let transferred = shared.snapshot.lock().is_some();
        *shared.start_mode.lock() = if update && transferred {
            StartMode::LiveUpdate
        } else {
            StartMode::Restart
        };
        *shared.fault.lock() = FaultAction::None;
        service.restarts += 1;
        service.spawn_incarnation();
        service.last_recovery = Some(RecoveryStamp {
            detected_at,
            respawned_at: self.inner.clock.now(),
            requested: true,
        });
        true
    }

    /// Stops a service for good.
    pub fn stop(&self, endpoint: Endpoint) {
        let thread = {
            let mut services = self.inner.services.lock();
            let Some(service) = services.get_mut(&endpoint) else {
                return;
            };
            service.shared.stop.store(true, Ordering::Release);
            service.status = ServiceStatus::Stopped;
            service.thread.take()
        };
        if let Some(handle) = thread {
            let _ = handle.join();
        }
    }

    /// Returns `true` once a service's status is [`ServiceStatus::Running`],
    /// polling for at most `timeout` (real time).
    pub fn wait_until_running(&self, endpoint: Endpoint, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.status(endpoint) == Some(ServiceStatus::Running) {
                // Also require the incarnation's thread to be alive.
                let alive = self
                    .inner
                    .services
                    .lock()
                    .get(&endpoint)
                    .map(|s| !s.exited.load(Ordering::Acquire))
                    .unwrap_or(false);
                if alive {
                    return true;
                }
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Lists the registered services as `(endpoint, name, status)` tuples.
    pub fn list(&self) -> Vec<(Endpoint, String, ServiceStatus)> {
        let services = self.inner.services.lock();
        let mut out: Vec<(Endpoint, String, ServiceStatus)> = services
            .iter()
            .map(|(ep, s)| (*ep, s.config.name.clone(), s.status))
            .collect();
        out.sort_by_key(|(ep, _, _)| *ep);
        out
    }

    /// Stops every service and the watchdog.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        let endpoints: Vec<Endpoint> = self.inner.services.lock().keys().copied().collect();
        for ep in endpoints {
            self.stop(ep);
        }
        if let Some(handle) = self.watchdog.lock().take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ReincarnationServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn watchdog_loop(inner: Arc<RsInner>) {
    while !inner.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(5));
        let mut events: Vec<CrashEvent> = Vec::new();
        {
            let mut services = inner.services.lock();
            for service in services.values_mut() {
                match service.status {
                    ServiceStatus::Running => {}
                    ServiceStatus::Restarting => {
                        // Waiting for a reaped incarnation to exit.
                        if service.exited.load(Ordering::Acquire) {
                            if let Some(event) = restart_service(
                                &inner.clock,
                                service,
                                CrashReason::HeartbeatTimeout,
                            ) {
                                events.push(event);
                            }
                        }
                        continue;
                    }
                    _ => continue,
                }
                if service.exited.load(Ordering::Acquire) {
                    if service.shared.stop.load(Ordering::Acquire) {
                        service.status = ServiceStatus::Stopped;
                        continue;
                    }
                    let reason = if service.panicked.load(Ordering::Acquire) {
                        CrashReason::Panicked
                    } else {
                        CrashReason::ExitedUnexpectedly
                    };
                    if let Some(event) = restart_service(&inner.clock, service, reason) {
                        events.push(event);
                    }
                    continue;
                }
                // Heartbeat check (virtual time).
                let last = *service.shared.last_heartbeat.lock();
                let now = inner.clock.now();
                if now.saturating_sub(last) > service.config.heartbeat_timeout {
                    // Reap the hung incarnation; the restart happens once the
                    // thread actually exits.
                    service.shared.reap.store(true, Ordering::Release);
                    service.status = ServiceStatus::Restarting;
                }
            }
        }
        if !events.is_empty() {
            let listeners = inner.listeners.lock();
            for event in &events {
                for listener in listeners.iter() {
                    listener(event);
                }
            }
            inner.crash_log.lock().extend(events);
        }
    }
}

/// Restarts a crashed incarnation (or marks the service failed when the
/// restart budget is exhausted) and returns the crash event to publish.
fn restart_service(
    clock: &SimClock,
    service: &mut ManagedService,
    reason: CrashReason,
) -> Option<CrashEvent> {
    let detected_at = clock.now();
    let old_generation = Generation::from_raw(service.shared.generation.load(Ordering::Acquire));
    // Collect the incarnation's thread so it does not leak.
    if let Some(handle) = service.thread.take() {
        let _ = handle.join();
    }
    let restarting = service.restarts < service.config.max_restarts;
    let event = CrashEvent {
        name: service.config.name.clone(),
        endpoint: service.shared.endpoint,
        generation: old_generation,
        reason,
        restarting,
        at: detected_at,
    };
    if !restarting {
        service.status = ServiceStatus::Failed;
        return Some(event);
    }
    service.restarts += 1;
    service.shared.generation.fetch_add(1, Ordering::AcqRel);
    *service.shared.start_mode.lock() = StartMode::Restart;
    *service.shared.fault.lock() = FaultAction::None;
    service.shared.stop.store(false, Ordering::Release);
    service.shared.update.store(false, Ordering::Release);
    // A crash invalidates any snapshot a previous live update left behind.
    service.shared.snapshot.lock().take();
    service.spawn_incarnation();
    service.last_recovery = Some(RecoveryStamp {
        detected_at,
        respawned_at: clock.now(),
        requested: false,
    });
    Some(event)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn counting_service(counter: Arc<AtomicU32>) -> impl Fn(ServiceRuntime) + Send + Sync {
        move |rt: ServiceRuntime| {
            counter.fetch_add(1, Ordering::SeqCst);
            while !rt.should_stop() {
                rt.heartbeat();
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    #[test]
    fn service_runs_and_stops_gracefully() {
        let rs = ReincarnationServer::new(SimClock::realtime());
        let starts = Arc::new(AtomicU32::new(0));
        let ep = rs.register(
            ServiceConfig::new("svc"),
            counting_service(Arc::clone(&starts)),
        );
        assert!(rs.wait_until_running(ep, Duration::from_secs(2)));
        assert_eq!(rs.status(ep), Some(ServiceStatus::Running));
        rs.stop(ep);
        assert_eq!(rs.status(ep), Some(ServiceStatus::Stopped));
        assert_eq!(starts.load(Ordering::SeqCst), 1);
        assert!(rs.crash_log().is_empty());
        rs.shutdown();
    }

    #[test]
    fn crash_is_detected_and_restarted_with_restart_mode() {
        let rs = ReincarnationServer::new(SimClock::realtime());
        let starts = Arc::new(AtomicU32::new(0));
        let restart_modes = Arc::new(Mutex::new(Vec::new()));
        let starts_c = Arc::clone(&starts);
        let modes_c = Arc::clone(&restart_modes);
        let ep = rs.register(ServiceConfig::new("crashy"), move |rt| {
            starts_c.fetch_add(1, Ordering::SeqCst);
            modes_c.lock().push(rt.start_mode());
            while !rt.should_stop() {
                rt.heartbeat();
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        assert!(rs.wait_until_running(ep, Duration::from_secs(2)));
        rs.inject_fault(ep, FaultAction::Crash);
        // Wait for the restart (and its crash record) to be observed.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while (starts.load(Ordering::SeqCst) < 2 || rs.crash_log().is_empty())
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            starts.load(Ordering::SeqCst) >= 2,
            "service was not restarted"
        );
        assert!(rs.wait_until_running(ep, Duration::from_secs(2)));
        let modes = restart_modes.lock().clone();
        assert_eq!(modes[0], StartMode::Fresh);
        assert_eq!(modes[1], StartMode::Restart);
        assert_eq!(rs.generation(ep), Some(Generation::from_raw(1)));
        assert_eq!(rs.restart_count(ep), Some(1));
        let log = rs.crash_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].reason, CrashReason::Panicked);
        assert!(log[0].restarting);
        rs.shutdown();
    }

    #[test]
    fn hang_is_reaped_by_heartbeat_watchdog() {
        let rs = ReincarnationServer::new(SimClock::with_speedup(50.0));
        let starts = Arc::new(AtomicU32::new(0));
        let starts_c = Arc::clone(&starts);
        let config = ServiceConfig::new("hangy").heartbeat_timeout(Duration::from_millis(500));
        let ep = rs.register(config, move |rt| {
            starts_c.fetch_add(1, Ordering::SeqCst);
            while !rt.should_stop() {
                rt.heartbeat();
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        assert!(rs.wait_until_running(ep, Duration::from_secs(2)));
        rs.inject_fault(ep, FaultAction::Hang);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let reaped = |rs: &ReincarnationServer| {
            rs.crash_log()
                .iter()
                .any(|e| e.reason == CrashReason::HeartbeatTimeout)
        };
        while (starts.load(Ordering::SeqCst) < 2 || !reaped(&rs))
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            starts.load(Ordering::SeqCst) >= 2,
            "hung service was not reaped and restarted"
        );
        assert!(
            reaped(&rs),
            "heartbeat timeout was not recorded in the crash log"
        );
        rs.shutdown();
    }

    #[test]
    fn unexpected_exit_counts_as_crash() {
        let rs = ReincarnationServer::new(SimClock::realtime());
        let starts = Arc::new(AtomicU32::new(0));
        let starts_c = Arc::clone(&starts);
        let ep = rs.register(ServiceConfig::new("quitter").max_restarts(1), move |rt| {
            let n = starts_c.fetch_add(1, Ordering::SeqCst);
            if n == 0 {
                // First incarnation returns immediately without being asked.
                return;
            }
            while !rt.should_stop() {
                rt.heartbeat();
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while (starts.load(Ordering::SeqCst) < 2 || rs.crash_log().is_empty())
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(starts.load(Ordering::SeqCst) >= 2);
        let log = rs.crash_log();
        assert_eq!(log[0].reason, CrashReason::ExitedUnexpectedly);
        assert_eq!(rs.status(ep), Some(ServiceStatus::Running));
        rs.shutdown();
    }

    #[test]
    fn restart_budget_exhaustion_fails_the_service() {
        let rs = ReincarnationServer::new(SimClock::realtime());
        let ep = rs.register(ServiceConfig::new("doomed").max_restarts(0), |_rt| {
            panic!("always dies");
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while rs.status(ep) != Some(ServiceStatus::Failed) && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(rs.status(ep), Some(ServiceStatus::Failed));
        let log = rs.crash_log();
        assert_eq!(log.len(), 1);
        assert!(!log[0].restarting);
        rs.shutdown();
    }

    #[test]
    fn crash_listeners_are_notified() {
        let rs = ReincarnationServer::new(SimClock::realtime());
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen_c = Arc::clone(&seen);
        rs.on_crash(move |event| seen_c.lock().push(event.name.clone()));
        let ep = rs.register(ServiceConfig::new("observed"), |rt| {
            while !rt.should_stop() {
                rt.heartbeat();
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        assert!(rs.wait_until_running(ep, Duration::from_secs(2)));
        rs.inject_fault(ep, FaultAction::Crash);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while seen.lock().is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(seen.lock().first().map(String::as_str), Some("observed"));
        rs.shutdown();
    }

    #[test]
    fn force_restart_is_a_live_update() {
        let rs = ReincarnationServer::new(SimClock::realtime());
        let starts = Arc::new(AtomicU32::new(0));
        let ep = rs.register(
            ServiceConfig::new("updatable"),
            counting_service(Arc::clone(&starts)),
        );
        assert!(rs.wait_until_running(ep, Duration::from_secs(2)));
        assert!(rs.force_restart(ep));
        assert!(rs.wait_until_running(ep, Duration::from_secs(2)));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while starts.load(Ordering::SeqCst) < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(starts.load(Ordering::SeqCst), 2);
        // A live update is not a crash: nothing in the crash log.
        assert!(rs.crash_log().is_empty());
        assert_eq!(rs.generation(ep), Some(Generation::from_raw(1)));
        // The restart was requested, so detection latency is ~0 by
        // definition.
        let stamp = rs.last_recovery(ep).expect("a recovery stamp");
        assert!(stamp.requested);
        assert!(stamp.respawned_at >= stamp.detected_at);
        assert!(!rs.force_restart(Endpoint::from_raw(9999)));
        rs.shutdown();
    }

    #[test]
    fn live_update_transfers_state_to_the_replacement() {
        let rs = ReincarnationServer::new(SimClock::realtime());
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen_c = Arc::clone(&seen);
        let ep = rs.register(ServiceConfig::new("stateful"), move |rt| {
            let restored = match rt.start_mode() {
                StartMode::LiveUpdate => rt.take_snapshot(),
                _ => None,
            };
            seen_c.lock().push((rt.start_mode(), restored));
            loop {
                rt.heartbeat();
                if rt.update_requested() {
                    // Quiesce, then hand over versioned hot state.
                    rt.hand_over(7, vec![1, 2, 3]);
                    return;
                }
                if rt.should_stop() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        assert!(rs.wait_until_running(ep, Duration::from_secs(2)));
        assert!(rs.live_update(ep));
        assert!(rs.wait_until_running(ep, Duration::from_secs(2)));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while seen.lock().len() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let incarnations = seen.lock().clone();
        assert_eq!(incarnations.len(), 2);
        assert_eq!(incarnations[0].0, StartMode::Fresh);
        assert!(incarnations[0].1.is_none());
        // The replacement started in live-update mode with the snapshot.
        assert_eq!(incarnations[1].0, StartMode::LiveUpdate);
        let snapshot = incarnations[1].1.clone().expect("handed-over snapshot");
        assert!(snapshot.accepts("stateful", 7));
        assert!(!snapshot.accepts("stateful", 8));
        assert!(!snapshot.accepts("other", 7));
        assert_eq!(snapshot.generation, Generation::from_raw(0));
        assert_eq!(snapshot.payload, vec![1, 2, 3]);
        // Not a crash; the stamp says "requested".
        assert!(rs.crash_log().is_empty());
        assert!(rs.last_recovery(ep).expect("stamp").requested);
        rs.shutdown();
    }

    #[test]
    fn live_update_without_hand_over_falls_back_to_restart_mode() {
        let rs = ReincarnationServer::new(SimClock::realtime());
        let modes = Arc::new(Mutex::new(Vec::new()));
        let modes_c = Arc::clone(&modes);
        // A body that predates the hand-over protocol: only honours stop.
        let ep = rs.register(ServiceConfig::new("legacy"), move |rt| {
            modes_c.lock().push(rt.start_mode());
            while !rt.should_stop() {
                rt.heartbeat();
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        assert!(rs.wait_until_running(ep, Duration::from_secs(2)));
        assert!(rs.live_update(ep));
        assert!(rs.wait_until_running(ep, Duration::from_secs(2)));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while modes.lock().len() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(
            modes.lock().clone(),
            vec![StartMode::Fresh, StartMode::Restart],
            "no snapshot handed over means crash-style recovery"
        );
        assert!(rs.crash_log().is_empty());
        rs.shutdown();
    }

    #[test]
    fn list_reports_registered_services() {
        let rs = ReincarnationServer::new(SimClock::realtime());
        let a = rs.register(ServiceConfig::new("a"), |rt| {
            while !rt.should_stop() {
                rt.heartbeat();
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let listed = rs.list();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].0, a);
        assert_eq!(listed[0].1, "a");
        rs.shutdown();
    }
}
