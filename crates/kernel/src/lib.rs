//! Simulated microkernel substrate for the NewtOS reproduction.
//!
//! The paper's system runs on a microkernel derived from MINIX 3: servers are
//! unprivileged user processes pinned to dedicated cores, the kernel's only
//! remaining jobs on a system core are channel setup, interrupt forwarding
//! and the synchronous IPC used by POSIX system calls.  This crate provides
//! those pieces as an in-process substrate that the decomposed networking
//! stack (`newt-stack`) runs on:
//!
//! * [`clock`] — a virtual clock with a configurable speed-up so that
//!   multi-second experiments (link resets, retransmission timers, heartbeat
//!   periods) finish quickly;
//! * [`cost`] — the cycle-cost model of the paper's evaluation machine
//!   (≈150-cycle hot traps, ≈3000-cycle cold traps, ≈30-cycle channel
//!   enqueues, IPIs, context switches);
//! * [`ipc`] — synchronous kernel IPC between endpoints with cost accounting
//!   and optional cost *emulation* for end-to-end baselines;
//! * [`proc`] — the process table with per-component core assignment;
//! * [`vmm`] — the trusted third party that sets up shared-memory exports;
//! * [`storage`] — the key/value storage server holding recoverable state;
//! * [`rs`] — the reincarnation server: heartbeats, crash detection,
//!   restarts with generation bumps, fault-injection hooks.
//!
//! # Example: a crash-and-restart life cycle
//!
//! ```
//! use std::time::Duration;
//! use newt_kernel::clock::SimClock;
//! use newt_kernel::rs::{FaultAction, ReincarnationServer, ServiceConfig, StartMode};
//! use newt_kernel::storage::StorageServer;
//! use std::sync::Arc;
//!
//! let storage = Arc::new(StorageServer::new());
//! let rs = ReincarnationServer::new(SimClock::realtime());
//!
//! let storage_for_service = Arc::clone(&storage);
//! let ep = rs.register(ServiceConfig::new("udp"), move |rt| {
//!     // On a fresh start the server initialises its state; on a restart
//!     // (or a live update whose snapshot it chooses not to use) it
//!     // recovers the state it stashed in the storage server.
//!     let mut sockets: Vec<u16> = match rt.start_mode() {
//!         StartMode::Fresh => Vec::new(),
//!         StartMode::Restart | StartMode::LiveUpdate => storage_for_service
//!             .retrieve("udp", "sockets")
//!             .unwrap_or_default(),
//!     };
//!     sockets.push(53);
//!     storage_for_service.store("udp", "sockets", &sockets);
//!     while !rt.should_stop() {
//!         rt.heartbeat();
//!         std::thread::sleep(Duration::from_millis(1));
//!     }
//! });
//!
//! rs.inject_fault(ep, FaultAction::Crash);
//! // Wait until the restarted incarnation has recovered and extended the
//! // stored socket list.
//! let deadline = std::time::Instant::now() + Duration::from_secs(10);
//! loop {
//!     let sockets: Vec<u16> = storage.retrieve("udp", "sockets").unwrap_or_default();
//!     if sockets.len() >= 2 || std::time::Instant::now() >= deadline {
//!         break;
//!     }
//!     std::thread::sleep(Duration::from_millis(5));
//! }
//! rs.shutdown();
//! let sockets: Vec<u16> = storage.retrieve("udp", "sockets").unwrap();
//! assert!(sockets.len() >= 2); // state survived the crash
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clock;
pub mod cost;
pub mod ipc;
pub mod proc;
pub mod rs;
pub mod storage;
pub mod vmm;

pub use clock::SimClock;
pub use cost::{CostModel, CycleAccount};
pub use ipc::{IpcError, KernelIpc, KernelStats, Message};
pub use proc::{CoreAssignment, Privilege, ProcessInfo, ProcessTable};
pub use rs::{
    CrashEvent, CrashReason, FaultAction, RecoveryStamp, ReincarnationServer, ServiceConfig,
    ServiceRuntime, ServiceStatus, StartMode,
};
pub use storage::{StorageError, StorageServer, StorageStats};
pub use vmm::{Grant, Vmm, VmmStats};
