//! The storage server.
//!
//! A transparent restart is not possible unless a component's interesting
//! state survives its crash.  NewtOS therefore runs a storage process
//! dedicated to keeping other components' recoverable state as key/value
//! pairs (paper §V-D): UDP stores its socket 4-tuples there, TCP its
//! listening sockets and connection summaries, IP its interface and routing
//! configuration, the packet filter its rules.  A component started in
//! *restart* mode asks the storage server for its previous state; if the
//! storage server itself crashes, every other server simply stores its state
//! again.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use serde::de::DeserializeOwned;
use serde::Serialize;

/// Errors returned by the storage server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// No value is stored under the requested key.
    Missing {
        /// The component namespace that was queried.
        component: String,
        /// The key that was queried.
        key: String,
    },
    /// The stored bytes could not be decoded into the requested type.
    Corrupt(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Missing { component, key } => {
                write!(f, "no value stored under {component}/{key}")
            }
            StorageError::Corrupt(key) => {
                write!(f, "stored value under {key} could not be decoded")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// Counters describing storage-server traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Successful store operations.
    pub stores: u64,
    /// Successful retrieve operations.
    pub retrievals: u64,
    /// Retrievals that found nothing (e.g. a fresh start, or after the
    /// storage server itself was wiped).
    pub misses: u64,
    /// Number of keys currently stored.
    pub keys: usize,
}

/// The key/value state store used for crash recovery.
///
/// Values are serialised with `serde` so that each server can stash whatever
/// structured state it needs.  Keys are namespaced per component so that a
/// recovering server only sees its own state.
///
/// # Examples
///
/// ```
/// use newt_kernel::storage::StorageServer;
/// use serde::{Deserialize, Serialize};
///
/// #[derive(Serialize, Deserialize, PartialEq, Debug)]
/// struct UdpSocketState { local_port: u16, remote: Option<(u32, u16)> }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let storage = StorageServer::new();
/// storage.store("udp", "socket/5353", &UdpSocketState { local_port: 5353, remote: None });
/// let state: UdpSocketState = storage.retrieve("udp", "socket/5353")?;
/// assert_eq!(state.local_port, 5353);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct StorageServer {
    entries: RwLock<HashMap<(String, String), Vec<u8>>>,
    stores: AtomicU64,
    retrievals: AtomicU64,
    misses: AtomicU64,
}

impl StorageServer {
    /// Creates an empty storage server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `value` under `component`/`key`, overwriting any previous
    /// value.
    ///
    /// # Panics
    ///
    /// Panics if the value cannot be serialised (which only happens for
    /// types whose `Serialize` implementation fails, e.g. maps with
    /// non-string keys in JSON; the binary encoding used here accepts all
    /// `serde` types the stack stores).
    pub fn store<T: Serialize>(&self, component: &str, key: &str, value: &T) {
        let encoded = encode(value);
        self.entries
            .write()
            .insert((component.to_string(), key.to_string()), encoded);
        self.stores.fetch_add(1, Ordering::Relaxed);
    }

    /// Retrieves the value stored under `component`/`key`.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Missing`] when nothing is stored and
    /// [`StorageError::Corrupt`] when the bytes cannot be decoded as `T`.
    pub fn retrieve<T: DeserializeOwned>(
        &self,
        component: &str,
        key: &str,
    ) -> Result<T, StorageError> {
        let entries = self.entries.read();
        match entries.get(&(component.to_string(), key.to_string())) {
            Some(bytes) => {
                self.retrievals.fetch_add(1, Ordering::Relaxed);
                decode(bytes).ok_or_else(|| StorageError::Corrupt(format!("{component}/{key}")))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Err(StorageError::Missing {
                    component: component.to_string(),
                    key: key.to_string(),
                })
            }
        }
    }

    /// Removes the value stored under `component`/`key`; returns whether a
    /// value existed.
    pub fn delete(&self, component: &str, key: &str) -> bool {
        self.entries
            .write()
            .remove(&(component.to_string(), key.to_string()))
            .is_some()
    }

    /// Lists the keys stored for `component`, sorted.
    pub fn keys(&self, component: &str) -> Vec<String> {
        let mut keys: Vec<String> = self
            .entries
            .read()
            .keys()
            .filter(|(c, _)| c == component)
            .map(|(_, k)| k.clone())
            .collect();
        keys.sort();
        keys
    }

    /// Removes every key stored for `component` (used when the component is
    /// deliberately reset).  Returns the number of removed keys.
    pub fn clear_component(&self, component: &str) -> usize {
        let mut entries = self.entries.write();
        let before = entries.len();
        entries.retain(|(c, _), _| c != component);
        before - entries.len()
    }

    /// Wipes the whole store — this is what a crash of the storage server
    /// itself looks like to the rest of the system.
    pub fn wipe(&self) {
        self.entries.write().clear();
    }

    /// Returns the approximate number of bytes of state stored for
    /// `component` (used to reproduce Table I's "size of recoverable state").
    pub fn component_size(&self, component: &str) -> usize {
        self.entries
            .read()
            .iter()
            .filter(|((c, _), _)| c == component)
            .map(|((_, k), v)| k.len() + v.len())
            .sum()
    }

    /// Returns traffic counters.
    pub fn stats(&self) -> StorageStats {
        StorageStats {
            stores: self.stores.load(Ordering::Relaxed),
            retrievals: self.retrievals.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            keys: self.entries.read().len(),
        }
    }
}

/// A minimal self-describing binary encoding for `serde` values.
///
/// The storage server does not interpret stored values; it only needs a
/// stable round trip.  To avoid pulling in a full serialisation format crate
/// we encode through `serde_json`-free means: values are serialised into the
/// debug-stable `postcard`-like format implemented below, which supports the
/// subset of `serde` used by the stack's state types (integers, strings,
/// sequences, maps, options, structs, enums, tuples, booleans).
///
/// Public because live-update state transfer reuses it: components encode
/// their [`StateSnapshot`](crate::rs::StateSnapshot) payloads with the same
/// codec their persisted summaries already round-trip through.
pub mod codec {
    use serde::de::DeserializeOwned;
    use serde::Serialize;

    /// Encodes using the `serde` data model driven into a compact byte
    /// stream.
    pub fn encode<T: Serialize>(value: &T) -> Vec<u8> {
        let mut out = Vec::new();
        value
            .serialize(&mut ser::Encoder { out: &mut out })
            .expect("state types used by the stack are always encodable");
        out
    }

    /// Decodes a value previously produced by [`encode`].
    pub fn decode<T: DeserializeOwned>(bytes: &[u8]) -> Option<T> {
        let mut de = de::Decoder { input: bytes };
        T::deserialize(&mut de).ok()
    }

    mod ser {
        use serde::ser::{self, Serialize};
        use std::fmt;

        #[derive(Debug)]
        pub struct Error(String);

        impl fmt::Display for Error {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
        impl std::error::Error for Error {}
        impl ser::Error for Error {
            fn custom<T: fmt::Display>(msg: T) -> Self {
                Error(msg.to_string())
            }
        }

        #[derive(Debug)]
        pub struct Encoder<'a> {
            pub out: &'a mut Vec<u8>,
        }

        impl Encoder<'_> {
            fn put_u64(&mut self, v: u64) {
                self.out.extend_from_slice(&v.to_le_bytes());
            }
            fn put_bytes(&mut self, v: &[u8]) {
                self.put_u64(v.len() as u64);
                self.out.extend_from_slice(v);
            }
        }

        macro_rules! forward_int {
            ($name:ident, $ty:ty) => {
                fn $name(self, v: $ty) -> Result<(), Error> {
                    self.put_u64(v as u64);
                    Ok(())
                }
            };
        }

        impl<'a, 'b> ser::Serializer for &'a mut Encoder<'b> {
            type Ok = ();
            type Error = Error;
            type SerializeSeq = Self;
            type SerializeTuple = Self;
            type SerializeTupleStruct = Self;
            type SerializeTupleVariant = Self;
            type SerializeMap = Self;
            type SerializeStruct = Self;
            type SerializeStructVariant = Self;

            fn serialize_bool(self, v: bool) -> Result<(), Error> {
                self.out.push(v as u8);
                Ok(())
            }
            forward_int!(serialize_i8, i8);
            forward_int!(serialize_i16, i16);
            forward_int!(serialize_i32, i32);
            forward_int!(serialize_i64, i64);
            forward_int!(serialize_u8, u8);
            forward_int!(serialize_u16, u16);
            forward_int!(serialize_u32, u32);
            forward_int!(serialize_u64, u64);
            fn serialize_f32(self, v: f32) -> Result<(), Error> {
                self.put_u64(v.to_bits() as u64);
                Ok(())
            }
            fn serialize_f64(self, v: f64) -> Result<(), Error> {
                self.put_u64(v.to_bits());
                Ok(())
            }
            fn serialize_char(self, v: char) -> Result<(), Error> {
                self.put_u64(v as u64);
                Ok(())
            }
            fn serialize_str(self, v: &str) -> Result<(), Error> {
                self.put_bytes(v.as_bytes());
                Ok(())
            }
            fn serialize_bytes(self, v: &[u8]) -> Result<(), Error> {
                self.put_bytes(v);
                Ok(())
            }
            fn serialize_none(self) -> Result<(), Error> {
                self.out.push(0);
                Ok(())
            }
            fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), Error> {
                self.out.push(1);
                value.serialize(self)
            }
            fn serialize_unit(self) -> Result<(), Error> {
                Ok(())
            }
            fn serialize_unit_struct(self, _name: &'static str) -> Result<(), Error> {
                Ok(())
            }
            fn serialize_unit_variant(
                self,
                _name: &'static str,
                variant_index: u32,
                _variant: &'static str,
            ) -> Result<(), Error> {
                self.put_u64(variant_index as u64);
                Ok(())
            }
            fn serialize_newtype_struct<T: ?Sized + Serialize>(
                self,
                _name: &'static str,
                value: &T,
            ) -> Result<(), Error> {
                value.serialize(self)
            }
            fn serialize_newtype_variant<T: ?Sized + Serialize>(
                self,
                _name: &'static str,
                variant_index: u32,
                _variant: &'static str,
                value: &T,
            ) -> Result<(), Error> {
                self.put_u64(variant_index as u64);
                value.serialize(self)
            }
            fn serialize_seq(self, len: Option<usize>) -> Result<Self, Error> {
                let len =
                    len.ok_or_else(|| ser::Error::custom("sequences must know their length"))?;
                self.put_u64(len as u64);
                Ok(self)
            }
            fn serialize_tuple(self, _len: usize) -> Result<Self, Error> {
                Ok(self)
            }
            fn serialize_tuple_struct(
                self,
                _name: &'static str,
                _len: usize,
            ) -> Result<Self, Error> {
                Ok(self)
            }
            fn serialize_tuple_variant(
                self,
                _name: &'static str,
                variant_index: u32,
                _variant: &'static str,
                _len: usize,
            ) -> Result<Self, Error> {
                self.put_u64(variant_index as u64);
                Ok(self)
            }
            fn serialize_map(self, len: Option<usize>) -> Result<Self, Error> {
                let len = len.ok_or_else(|| ser::Error::custom("maps must know their length"))?;
                self.put_u64(len as u64);
                Ok(self)
            }
            fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, Error> {
                Ok(self)
            }
            fn serialize_struct_variant(
                self,
                _name: &'static str,
                variant_index: u32,
                _variant: &'static str,
                _len: usize,
            ) -> Result<Self, Error> {
                self.put_u64(variant_index as u64);
                Ok(self)
            }
        }

        macro_rules! impl_compound {
            ($trait:ident, $method:ident) => {
                impl<'a, 'b> ser::$trait for &'a mut Encoder<'b> {
                    type Ok = ();
                    type Error = Error;
                    fn $method<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
                        value.serialize(&mut **self)
                    }
                    fn end(self) -> Result<(), Error> {
                        Ok(())
                    }
                }
            };
        }
        impl_compound!(SerializeSeq, serialize_element);
        impl_compound!(SerializeTuple, serialize_element);
        impl_compound!(SerializeTupleStruct, serialize_field);
        impl_compound!(SerializeTupleVariant, serialize_field);

        impl<'a, 'b> ser::SerializeMap for &'a mut Encoder<'b> {
            type Ok = ();
            type Error = Error;
            fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Error> {
                key.serialize(&mut **self)
            }
            fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), Error> {
                Ok(())
            }
        }

        impl<'a, 'b> ser::SerializeStruct for &'a mut Encoder<'b> {
            type Ok = ();
            type Error = Error;
            fn serialize_field<T: ?Sized + Serialize>(
                &mut self,
                _key: &'static str,
                value: &T,
            ) -> Result<(), Error> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), Error> {
                Ok(())
            }
        }

        impl<'a, 'b> ser::SerializeStructVariant for &'a mut Encoder<'b> {
            type Ok = ();
            type Error = Error;
            fn serialize_field<T: ?Sized + Serialize>(
                &mut self,
                _key: &'static str,
                value: &T,
            ) -> Result<(), Error> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), Error> {
                Ok(())
            }
        }
    }

    mod de {
        use serde::de::{self, DeserializeSeed, IntoDeserializer, Visitor};
        use std::fmt;

        #[derive(Debug)]
        pub struct Error(String);

        impl fmt::Display for Error {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
        impl std::error::Error for Error {}
        impl de::Error for Error {
            fn custom<T: fmt::Display>(msg: T) -> Self {
                Error(msg.to_string())
            }
        }

        #[derive(Debug)]
        pub struct Decoder<'de> {
            pub input: &'de [u8],
        }

        impl<'de> Decoder<'de> {
            fn take(&mut self, n: usize) -> Result<&'de [u8], Error> {
                if self.input.len() < n {
                    return Err(de::Error::custom("unexpected end of stored value"));
                }
                let (head, rest) = self.input.split_at(n);
                self.input = rest;
                Ok(head)
            }
            fn get_u64(&mut self) -> Result<u64, Error> {
                let bytes = self.take(8)?;
                Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes taken")))
            }
            fn get_u8(&mut self) -> Result<u8, Error> {
                Ok(self.take(1)?[0])
            }
            fn get_bytes(&mut self) -> Result<&'de [u8], Error> {
                let len = self.get_u64()? as usize;
                self.take(len)
            }
        }

        macro_rules! forward_int_de {
            ($name:ident, $visit:ident, $ty:ty) => {
                fn $name<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
                    let v = self.get_u64()?;
                    visitor.$visit(v as $ty)
                }
            };
        }

        impl<'de> de::Deserializer<'de> for &mut Decoder<'de> {
            type Error = Error;

            fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, Error> {
                Err(de::Error::custom(
                    "the storage codec is not self-describing",
                ))
            }
            fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
                visitor.visit_bool(self.get_u8()? != 0)
            }
            forward_int_de!(deserialize_i8, visit_i8, i8);
            forward_int_de!(deserialize_i16, visit_i16, i16);
            forward_int_de!(deserialize_i32, visit_i32, i32);
            forward_int_de!(deserialize_i64, visit_i64, i64);
            forward_int_de!(deserialize_u8, visit_u8, u8);
            forward_int_de!(deserialize_u16, visit_u16, u16);
            forward_int_de!(deserialize_u32, visit_u32, u32);
            forward_int_de!(deserialize_u64, visit_u64, u64);
            fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
                let bits = self.get_u64()? as u32;
                visitor.visit_f32(f32::from_bits(bits))
            }
            fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
                let bits = self.get_u64()?;
                visitor.visit_f64(f64::from_bits(bits))
            }
            fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
                let v = self.get_u64()? as u32;
                visitor.visit_char(char::from_u32(v).ok_or_else(|| de::Error::custom("bad char"))?)
            }
            fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
                let bytes = self.get_bytes()?;
                visitor.visit_str(std::str::from_utf8(bytes).map_err(de::Error::custom)?)
            }
            fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
                self.deserialize_str(visitor)
            }
            fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
                let bytes = self.get_bytes()?;
                visitor.visit_bytes(bytes)
            }
            fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
                self.deserialize_bytes(visitor)
            }
            fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
                if self.get_u8()? == 0 {
                    visitor.visit_none()
                } else {
                    visitor.visit_some(self)
                }
            }
            fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
                visitor.visit_unit()
            }
            fn deserialize_unit_struct<V: Visitor<'de>>(
                self,
                _name: &'static str,
                visitor: V,
            ) -> Result<V::Value, Error> {
                visitor.visit_unit()
            }
            fn deserialize_newtype_struct<V: Visitor<'de>>(
                self,
                _name: &'static str,
                visitor: V,
            ) -> Result<V::Value, Error> {
                visitor.visit_newtype_struct(self)
            }
            fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
                let len = self.get_u64()? as usize;
                visitor.visit_seq(Counted {
                    de: self,
                    remaining: len,
                })
            }
            fn deserialize_tuple<V: Visitor<'de>>(
                self,
                len: usize,
                visitor: V,
            ) -> Result<V::Value, Error> {
                visitor.visit_seq(Counted {
                    de: self,
                    remaining: len,
                })
            }
            fn deserialize_tuple_struct<V: Visitor<'de>>(
                self,
                _name: &'static str,
                len: usize,
                visitor: V,
            ) -> Result<V::Value, Error> {
                visitor.visit_seq(Counted {
                    de: self,
                    remaining: len,
                })
            }
            fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
                let len = self.get_u64()? as usize;
                visitor.visit_map(Counted {
                    de: self,
                    remaining: len,
                })
            }
            fn deserialize_struct<V: Visitor<'de>>(
                self,
                _name: &'static str,
                fields: &'static [&'static str],
                visitor: V,
            ) -> Result<V::Value, Error> {
                visitor.visit_seq(Counted {
                    de: self,
                    remaining: fields.len(),
                })
            }
            fn deserialize_enum<V: Visitor<'de>>(
                self,
                _name: &'static str,
                _variants: &'static [&'static str],
                visitor: V,
            ) -> Result<V::Value, Error> {
                visitor.visit_enum(EnumAccess { de: self })
            }
            fn deserialize_identifier<V: Visitor<'de>>(
                self,
                visitor: V,
            ) -> Result<V::Value, Error> {
                let idx = self.get_u64()? as u32;
                visitor.visit_u32(idx)
            }
            fn deserialize_ignored_any<V: Visitor<'de>>(
                self,
                _visitor: V,
            ) -> Result<V::Value, Error> {
                Err(de::Error::custom("cannot skip values in the storage codec"))
            }
        }

        struct Counted<'a, 'de> {
            de: &'a mut Decoder<'de>,
            remaining: usize,
        }

        impl<'de, 'a> de::SeqAccess<'de> for Counted<'a, 'de> {
            type Error = Error;
            fn next_element_seed<T: DeserializeSeed<'de>>(
                &mut self,
                seed: T,
            ) -> Result<Option<T::Value>, Error> {
                if self.remaining == 0 {
                    return Ok(None);
                }
                self.remaining -= 1;
                seed.deserialize(&mut *self.de).map(Some)
            }
            fn size_hint(&self) -> Option<usize> {
                Some(self.remaining)
            }
        }

        impl<'de, 'a> de::MapAccess<'de> for Counted<'a, 'de> {
            type Error = Error;
            fn next_key_seed<K: DeserializeSeed<'de>>(
                &mut self,
                seed: K,
            ) -> Result<Option<K::Value>, Error> {
                if self.remaining == 0 {
                    return Ok(None);
                }
                self.remaining -= 1;
                seed.deserialize(&mut *self.de).map(Some)
            }
            fn next_value_seed<V: DeserializeSeed<'de>>(
                &mut self,
                seed: V,
            ) -> Result<V::Value, Error> {
                seed.deserialize(&mut *self.de)
            }
            fn size_hint(&self) -> Option<usize> {
                Some(self.remaining)
            }
        }

        struct EnumAccess<'a, 'de> {
            de: &'a mut Decoder<'de>,
        }

        impl<'de, 'a> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
            type Error = Error;
            type Variant = VariantAccess<'a, 'de>;
            fn variant_seed<V: DeserializeSeed<'de>>(
                self,
                seed: V,
            ) -> Result<(V::Value, Self::Variant), Error> {
                let index = self.de.get_u64()? as u32;
                let value = seed.deserialize(index.into_deserializer())?;
                Ok((value, VariantAccess { de: self.de }))
            }
        }

        struct VariantAccess<'a, 'de> {
            de: &'a mut Decoder<'de>,
        }

        impl<'de, 'a> de::VariantAccess<'de> for VariantAccess<'a, 'de> {
            type Error = Error;
            fn unit_variant(self) -> Result<(), Error> {
                Ok(())
            }
            fn newtype_variant_seed<T: DeserializeSeed<'de>>(
                self,
                seed: T,
            ) -> Result<T::Value, Error> {
                seed.deserialize(self.de)
            }
            fn tuple_variant<V: Visitor<'de>>(
                self,
                len: usize,
                visitor: V,
            ) -> Result<V::Value, Error> {
                visitor.visit_seq(Counted {
                    de: self.de,
                    remaining: len,
                })
            }
            fn struct_variant<V: Visitor<'de>>(
                self,
                fields: &'static [&'static str],
                visitor: V,
            ) -> Result<V::Value, Error> {
                visitor.visit_seq(Counted {
                    de: self.de,
                    remaining: fields.len(),
                })
            }
        }
    }
}

use codec::{decode, encode};

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct TcpSocketState {
        local: (u32, u16),
        remote: Option<(u32, u16)>,
        listening: bool,
        backlog: Vec<u64>,
        label: String,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum FilterAction {
        Pass,
        Block { reason: String },
        RateLimit(u32),
    }

    #[test]
    fn store_retrieve_round_trip() {
        let storage = StorageServer::new();
        let state = TcpSocketState {
            local: (0x0a000001, 22),
            remote: Some((0x0a000002, 51515)),
            listening: false,
            backlog: vec![1, 2, 3],
            label: "ssh".into(),
        };
        storage.store("tcp", "socket/22", &state);
        let restored: TcpSocketState = storage.retrieve("tcp", "socket/22").unwrap();
        assert_eq!(restored, state);
    }

    #[test]
    fn missing_key_is_reported() {
        let storage = StorageServer::new();
        let err = storage.retrieve::<u32>("ip", "routes").unwrap_err();
        assert!(matches!(err, StorageError::Missing { .. }));
        assert_eq!(storage.stats().misses, 1);
    }

    #[test]
    fn enums_and_maps_round_trip() {
        let storage = StorageServer::new();
        let mut rules: BTreeMap<String, FilterAction> = BTreeMap::new();
        rules.insert("allow-ssh".into(), FilterAction::Pass);
        rules.insert(
            "deny-telnet".into(),
            FilterAction::Block {
                reason: "legacy".into(),
            },
        );
        rules.insert("limit-dns".into(), FilterAction::RateLimit(100));
        storage.store("pf", "rules", &rules);
        let restored: BTreeMap<String, FilterAction> = storage.retrieve("pf", "rules").unwrap();
        assert_eq!(restored, rules);
    }

    #[test]
    fn overwrite_replaces_value() {
        let storage = StorageServer::new();
        storage.store("udp", "socket/53", &1u32);
        storage.store("udp", "socket/53", &2u32);
        assert_eq!(storage.retrieve::<u32>("udp", "socket/53").unwrap(), 2);
    }

    #[test]
    fn keys_are_namespaced_per_component() {
        let storage = StorageServer::new();
        storage.store("udp", "socket/1", &1u8);
        storage.store("udp", "socket/2", &2u8);
        storage.store("tcp", "socket/1", &3u8);
        assert_eq!(storage.keys("udp"), vec!["socket/1", "socket/2"]);
        assert_eq!(storage.keys("tcp"), vec!["socket/1"]);
        assert_eq!(storage.clear_component("udp"), 2);
        assert!(storage.keys("udp").is_empty());
        assert_eq!(storage.keys("tcp").len(), 1);
    }

    #[test]
    fn delete_and_wipe() {
        let storage = StorageServer::new();
        storage.store("ip", "config", &42u64);
        assert!(storage.delete("ip", "config"));
        assert!(!storage.delete("ip", "config"));
        storage.store("ip", "config", &42u64);
        storage.wipe();
        assert!(storage.retrieve::<u64>("ip", "config").is_err());
    }

    #[test]
    fn component_size_reflects_stored_state() {
        let storage = StorageServer::new();
        assert_eq!(storage.component_size("tcp"), 0);
        storage.store("tcp", "socket/1", &vec![0u8; 100]);
        storage.store("ip", "config", &1u8);
        assert!(storage.component_size("tcp") > storage.component_size("ip"));
    }

    #[test]
    fn corrupt_data_detected_on_type_confusion() {
        let storage = StorageServer::new();
        storage.store("x", "k", &"short");
        // Asking for a type whose decoding runs past the stored bytes fails.
        let err = storage
            .retrieve::<(u64, u64, u64, u64, u64)>("x", "k")
            .unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
    }

    #[test]
    fn stats_count_operations() {
        let storage = StorageServer::new();
        storage.store("a", "k", &1u8);
        let _: u8 = storage.retrieve("a", "k").unwrap();
        let _ = storage.retrieve::<u8>("a", "missing");
        let stats = storage.stats();
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.retrievals, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.keys, 1);
    }
}
