//! Process table and core assignment.
//!
//! NewtOS dedicates cores to operating-system components: each server runs
//! alone on its core, keeping caches, TLBs and branch predictors warm and
//! avoiding context switches; the remaining cores are time-shared by
//! applications (paper Figure 1).  The [`ProcessTable`] records which
//! component runs where, together with its privilege class and restart
//! count, so that the rest of the system (the reincarnation server, the
//! simulator, the benchmarks) can reason about core usage.

use std::collections::HashMap;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use newt_channels::endpoint::{Endpoint, EndpointAllocator};

/// How a component is scheduled onto cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreAssignment {
    /// The component owns a core exclusively (no context switching, warm
    /// caches, interrupts handled locally).
    Dedicated(u32),
    /// The component shares the application cores with other processes and
    /// pays context-switch costs.
    Shared,
}

impl CoreAssignment {
    /// Returns `true` for a dedicated-core assignment.
    pub fn is_dedicated(&self) -> bool {
        matches!(self, CoreAssignment::Dedicated(_))
    }
}

/// Privilege class of a process, which determines the damage a fault can do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Privilege {
    /// An unprivileged user-space operating-system server (the default in
    /// NewtOS — even drivers and the network stack run here).
    UserServer,
    /// A device driver with access to its device (but nothing else).
    Driver,
    /// An ordinary application process.
    Application,
}

/// One entry of the process table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessInfo {
    /// The process's endpoint.
    pub endpoint: Endpoint,
    /// Human-readable name ("ip", "tcp", "e1000.0", ...).
    pub name: String,
    /// Core assignment.
    pub core: CoreAssignment,
    /// Privilege class.
    pub privilege: Privilege,
    /// How many times the reincarnation server restarted this process.
    pub restarts: u32,
}

/// The system-wide process table.
///
/// # Examples
///
/// ```
/// use newt_kernel::proc::{CoreAssignment, Privilege, ProcessTable};
///
/// let table = ProcessTable::new();
/// let ip = table.register("ip", CoreAssignment::Dedicated(2), Privilege::UserServer);
/// assert_eq!(table.info(ip).unwrap().name, "ip");
/// assert_eq!(table.dedicated_cores(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ProcessTable {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    allocator: EndpointAllocator,
    processes: HashMap<Endpoint, ProcessInfo>,
}

impl ProcessTable {
    /// Creates an empty process table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new process, allocating its endpoint.
    pub fn register(&self, name: &str, core: CoreAssignment, privilege: Privilege) -> Endpoint {
        let mut inner = self.inner.write();
        let endpoint = inner.allocator.allocate(name);
        inner.processes.insert(
            endpoint,
            ProcessInfo {
                endpoint,
                name: name.to_string(),
                core,
                privilege,
                restarts: 0,
            },
        );
        endpoint
    }

    /// Returns the process information for `endpoint`.
    pub fn info(&self, endpoint: Endpoint) -> Option<ProcessInfo> {
        self.inner.read().processes.get(&endpoint).cloned()
    }

    /// Looks a process up by name.
    pub fn by_name(&self, name: &str) -> Option<ProcessInfo> {
        self.inner
            .read()
            .processes
            .values()
            .find(|p| p.name == name)
            .cloned()
    }

    /// Records that the reincarnation server restarted `endpoint`.
    pub fn record_restart(&self, endpoint: Endpoint) {
        if let Some(info) = self.inner.write().processes.get_mut(&endpoint) {
            info.restarts += 1;
        }
    }

    /// Removes a process from the table (it exited for good).
    pub fn remove(&self, endpoint: Endpoint) -> Option<ProcessInfo> {
        self.inner.write().processes.remove(&endpoint)
    }

    /// Returns all registered processes, sorted by endpoint.
    pub fn list(&self) -> Vec<ProcessInfo> {
        let mut all: Vec<ProcessInfo> = self.inner.read().processes.values().cloned().collect();
        all.sort_by_key(|p| p.endpoint);
        all
    }

    /// Returns the number of cores dedicated to operating-system components —
    /// the "price we pay" the paper discusses.
    pub fn dedicated_cores(&self) -> usize {
        self.inner
            .read()
            .processes
            .values()
            .filter(|p| p.core.is_dedicated())
            .count()
    }

    /// Returns the number of registered processes.
    pub fn len(&self) -> usize {
        self.inner.read().processes.len()
    }

    /// Returns `true` if no process is registered.
    pub fn is_empty(&self) -> bool {
        self.inner.read().processes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let table = ProcessTable::new();
        let ip = table.register("ip", CoreAssignment::Dedicated(1), Privilege::UserServer);
        let app = table.register("iperf", CoreAssignment::Shared, Privilege::Application);
        assert_eq!(table.len(), 2);
        assert_eq!(table.info(ip).unwrap().name, "ip");
        assert_eq!(table.by_name("iperf").unwrap().endpoint, app);
        assert!(table.by_name("missing").is_none());
    }

    #[test]
    fn dedicated_core_count() {
        let table = ProcessTable::new();
        table.register("ip", CoreAssignment::Dedicated(1), Privilege::UserServer);
        table.register("tcp", CoreAssignment::Dedicated(2), Privilege::UserServer);
        table.register("app", CoreAssignment::Shared, Privilege::Application);
        assert_eq!(table.dedicated_cores(), 2);
    }

    #[test]
    fn restart_counter_increments() {
        let table = ProcessTable::new();
        let drv = table.register("e1000.0", CoreAssignment::Dedicated(3), Privilege::Driver);
        table.record_restart(drv);
        table.record_restart(drv);
        assert_eq!(table.info(drv).unwrap().restarts, 2);
    }

    #[test]
    fn remove_deletes_entry() {
        let table = ProcessTable::new();
        let ep = table.register("pf", CoreAssignment::Dedicated(4), Privilege::UserServer);
        assert!(table.remove(ep).is_some());
        assert!(table.info(ep).is_none());
        assert!(table.remove(ep).is_none());
        assert!(table.is_empty());
    }

    #[test]
    fn list_is_sorted_by_endpoint() {
        let table = ProcessTable::new();
        let a = table.register("a", CoreAssignment::Shared, Privilege::Application);
        let b = table.register("b", CoreAssignment::Shared, Privilege::Application);
        let list = table.list();
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].endpoint, a);
        assert_eq!(list[1].endpoint, b);
    }
}
