//! Virtual time.
//!
//! The paper's experiments span wall-clock seconds (link resets take ~2 s,
//! TCP retransmission timers fire after hundreds of milliseconds, heartbeat
//! periods are measured in seconds).  To keep the reproduction fast, every
//! time-dependent component reads a [`SimClock`] instead of `Instant::now()`.
//! A `SimClock` maps real time to *virtual* time through a constant speed-up
//! factor, so a 20-virtual-second bitrate trace can be produced in a couple
//! of real seconds without changing any timer constant.

use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonically increasing virtual clock.
///
/// Cloning is cheap; all clones share the same origin and speed-up.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use newt_kernel::clock::SimClock;
///
/// // Virtual time passes 100x faster than real time.
/// let clock = SimClock::with_speedup(100.0);
/// let start = clock.now();
/// clock.sleep(Duration::from_millis(200)); // 200 *virtual* ms ≈ 2 real ms
/// assert!(clock.now() - start >= Duration::from_millis(200));
/// ```
#[derive(Debug, Clone)]
pub struct SimClock {
    inner: Arc<ClockInner>,
}

#[derive(Debug)]
struct ClockInner {
    origin: Instant,
    speedup: f64,
}

impl Default for SimClock {
    fn default() -> Self {
        Self::realtime()
    }
}

impl SimClock {
    /// Creates a clock where virtual time equals real time.
    pub fn realtime() -> Self {
        Self::with_speedup(1.0)
    }

    /// Creates a clock where virtual time advances `speedup` times faster
    /// than real time.
    ///
    /// # Panics
    ///
    /// Panics if `speedup` is not strictly positive and finite.
    pub fn with_speedup(speedup: f64) -> Self {
        assert!(
            speedup.is_finite() && speedup > 0.0,
            "clock speed-up must be positive and finite"
        );
        SimClock {
            inner: Arc::new(ClockInner {
                origin: Instant::now(),
                speedup,
            }),
        }
    }

    /// Returns the configured speed-up factor.
    pub fn speedup(&self) -> f64 {
        self.inner.speedup
    }

    /// Returns the virtual time elapsed since the clock was created.
    pub fn now(&self) -> Duration {
        let real = self.inner.origin.elapsed();
        Duration::from_secs_f64(real.as_secs_f64() * self.inner.speedup)
    }

    /// Sleeps for a *virtual* duration (i.e. `duration / speedup` of real
    /// time).
    pub fn sleep(&self, duration: Duration) {
        let real = Duration::from_secs_f64(duration.as_secs_f64() / self.inner.speedup);
        if !real.is_zero() {
            std::thread::sleep(real);
        }
    }

    /// Converts a virtual duration into the real duration it corresponds to.
    pub fn to_real(&self, virtual_duration: Duration) -> Duration {
        Duration::from_secs_f64(virtual_duration.as_secs_f64() / self.inner.speedup)
    }

    /// Converts a real duration into the virtual duration it corresponds to.
    pub fn to_virtual(&self, real_duration: Duration) -> Duration {
        Duration::from_secs_f64(real_duration.as_secs_f64() * self.inner.speedup)
    }

    /// Returns a virtual deadline `duration` from now.
    pub fn deadline(&self, duration: Duration) -> Duration {
        self.now() + duration
    }

    /// Returns `true` if the virtual `deadline` has passed.
    pub fn expired(&self, deadline: Duration) -> bool {
        self.now() >= deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realtime_clock_tracks_real_time() {
        let clock = SimClock::realtime();
        let a = clock.now();
        std::thread::sleep(Duration::from_millis(10));
        let b = clock.now();
        assert!(b - a >= Duration::from_millis(9));
        assert!(b - a < Duration::from_secs(2));
    }

    #[test]
    fn speedup_scales_virtual_time() {
        let clock = SimClock::with_speedup(50.0);
        std::thread::sleep(Duration::from_millis(10));
        // 10 real ms ≈ 500 virtual ms.
        assert!(clock.now() >= Duration::from_millis(400));
    }

    #[test]
    fn sleep_is_scaled_down() {
        let clock = SimClock::with_speedup(100.0);
        let start = Instant::now();
        clock.sleep(Duration::from_millis(500));
        // 500 virtual ms should take roughly 5 real ms.
        assert!(start.elapsed() < Duration::from_millis(200));
        assert!(clock.now() >= Duration::from_millis(400));
    }

    #[test]
    fn conversions_round_trip() {
        let clock = SimClock::with_speedup(10.0);
        let v = Duration::from_secs(1);
        let r = clock.to_real(v);
        assert!((clock.to_virtual(r).as_secs_f64() - 1.0).abs() < 1e-9);
        assert!((r.as_secs_f64() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn deadlines_expire() {
        let clock = SimClock::with_speedup(1000.0);
        let deadline = clock.deadline(Duration::from_millis(100));
        assert!(!clock.expired(deadline) || clock.now() >= deadline);
        clock.sleep(Duration::from_millis(150));
        assert!(clock.expired(deadline));
    }

    #[test]
    fn clones_share_origin() {
        let clock = SimClock::with_speedup(10.0);
        let clone = clock.clone();
        std::thread::sleep(Duration::from_millis(5));
        let a = clock.now();
        let b = clone.now();
        let diff = a.abs_diff(b);
        assert!(diff < Duration::from_millis(50));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speedup_rejected() {
        let _ = SimClock::with_speedup(0.0);
    }
}
