//! The virtual memory manager.
//!
//! A process cannot make part of its address space available to another
//! process all by itself: setting up a shared-memory channel involves a
//! trusted third party, the virtual memory manager, which every server
//! implicitly trusts (paper §IV-A).  Once a shared region between two
//! processes is set up, the source is known and cannot be forged.
//!
//! In this reproduction the actual sharing is done by the
//! [`Registry`]; the [`Vmm`] wraps it to
//! (a) account the kernel traps that channel setup costs — the slow path the
//! fast-path channels deliberately keep off the per-packet path — and (b)
//! keep a grant table recording which endpoint exported what to whom, which
//! the recovery code consults after a crash.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use newt_channels::endpoint::{Endpoint, Generation};
use newt_channels::error::RegistryError;
use newt_channels::registry::{Access, Registry};

use crate::cost::{CostModel, CycleAccount};

/// One entry of the grant table: `owner` exported `name` to `grantee`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grant {
    /// The exporting endpoint.
    pub owner: Endpoint,
    /// The receiving endpoint.
    pub grantee: Endpoint,
    /// The published name of the exported object.
    pub name: String,
}

/// Counters describing VMM activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmmStats {
    /// Map/export operations performed (each costs kernel traps).
    pub exports: u64,
    /// Attach operations performed.
    pub attaches: u64,
    /// Cycles charged for the slow-path setup work.
    pub setup_cycles: u64,
}

/// The trusted third party for shared-memory setup.
#[derive(Debug)]
pub struct Vmm {
    registry: Registry,
    model: CostModel,
    grants: Mutex<Vec<Grant>>,
    exports: std::sync::atomic::AtomicU64,
    attaches: std::sync::atomic::AtomicU64,
    cycles: CycleAccount,
}

impl Vmm {
    /// Creates a VMM around an existing registry.
    pub fn new(registry: Registry, model: CostModel) -> Self {
        Vmm {
            registry,
            model,
            grants: Mutex::new(Vec::new()),
            exports: std::sync::atomic::AtomicU64::new(0),
            attaches: std::sync::atomic::AtomicU64::new(0),
            cycles: CycleAccount::new(),
        }
    }

    /// Returns the underlying registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    fn charge_setup(&self) {
        // Channel setup takes a handful of kernel round trips (request,
        // grant, map) — all off the fast path.
        self.cycles
            .charge(3 * self.model.trap_expected() as u64 + self.model.context_switch);
    }

    /// Exports a shared object from `owner` to `grantee`, recording the
    /// grant.
    ///
    /// # Errors
    ///
    /// Propagates [`RegistryError`] from the underlying publish/grant.
    pub fn export_shared<T: Send + Sync + 'static>(
        &self,
        owner: Endpoint,
        generation: Generation,
        grantee: Endpoint,
        name: &str,
        object: Arc<T>,
    ) -> Result<(), RegistryError> {
        self.charge_setup();
        self.exports
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        match self.registry.publish_shared(
            owner,
            generation,
            name,
            Access::Granted(vec![grantee]),
            object,
        ) {
            Ok(()) => {}
            Err(RegistryError::AlreadyPublished(_)) => {
                // Already published (e.g. exporting the same pool to a second
                // consumer): just extend the grant.
                self.registry.grant(owner, name, grantee)?;
            }
            Err(e) => return Err(e),
        }
        self.grants.lock().push(Grant {
            owner,
            grantee,
            name: name.to_string(),
        });
        Ok(())
    }

    /// Attaches `grantee` to an object previously exported to it.
    ///
    /// # Errors
    ///
    /// Propagates [`RegistryError`] from the underlying attach.
    pub fn attach_shared<T: Send + Sync + 'static>(
        &self,
        grantee: Endpoint,
        name: &str,
    ) -> Result<Arc<T>, RegistryError> {
        self.charge_setup();
        self.attaches
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.registry.attach_shared(grantee, name)
    }

    /// Returns the grants currently recorded for `owner`.
    pub fn grants_by(&self, owner: Endpoint) -> Vec<Grant> {
        self.grants
            .lock()
            .iter()
            .filter(|g| g.owner == owner)
            .cloned()
            .collect()
    }

    /// Returns the grants currently recorded towards `grantee`.
    pub fn grants_to(&self, grantee: Endpoint) -> Vec<Grant> {
        self.grants
            .lock()
            .iter()
            .filter(|g| g.grantee == grantee)
            .cloned()
            .collect()
    }

    /// Drops every grant made by `owner` (its old incarnation crashed) and
    /// returns them so neighbours know what they must re-attach.
    pub fn revoke_owner(&self, owner: Endpoint) -> Vec<Grant> {
        let mut grants = self.grants.lock();
        let (revoked, kept): (Vec<Grant>, Vec<Grant>) =
            grants.drain(..).partition(|g| g.owner == owner);
        *grants = kept;
        drop(grants);
        self.registry.revoke_all_from(owner);
        revoked
    }

    /// Returns activity counters.
    pub fn stats(&self) -> VmmStats {
        VmmStats {
            exports: self.exports.load(std::sync::atomic::Ordering::Relaxed),
            attaches: self.attaches.load(std::sync::atomic::Ordering::Relaxed),
            setup_cycles: self.cycles.total(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ep(n: u32) -> Endpoint {
        Endpoint::from_raw(n)
    }

    #[test]
    fn export_and_attach_round_trip() {
        let vmm = Vmm::new(Registry::new(), CostModel::default());
        let ip = ep(1);
        let tcp = ep(2);
        vmm.export_shared(ip, Generation::FIRST, tcp, "ip.rx-pool", Arc::new(123u64))
            .unwrap();
        let got: Arc<u64> = vmm.attach_shared(tcp, "ip.rx-pool").unwrap();
        assert_eq!(*got, 123);
        assert_eq!(vmm.grants_by(ip).len(), 1);
        assert_eq!(vmm.grants_to(tcp).len(), 1);
        assert!(vmm.stats().setup_cycles > 0);
        assert_eq!(vmm.stats().exports, 1);
        assert_eq!(vmm.stats().attaches, 1);
    }

    #[test]
    fn ungranted_endpoint_cannot_attach() {
        let vmm = Vmm::new(Registry::new(), CostModel::default());
        vmm.export_shared(ep(1), Generation::FIRST, ep(2), "secret", Arc::new(1u8))
            .unwrap();
        assert!(matches!(
            vmm.attach_shared::<u8>(ep(3), "secret"),
            Err(RegistryError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn exporting_to_a_second_consumer_extends_the_grant() {
        let vmm = Vmm::new(Registry::new(), CostModel::default());
        let obj = Arc::new(7u32);
        vmm.export_shared(ep(1), Generation::FIRST, ep(2), "pool", Arc::clone(&obj))
            .unwrap();
        vmm.export_shared(ep(1), Generation::FIRST, ep(3), "pool", obj)
            .unwrap();
        assert_eq!(*vmm.attach_shared::<u32>(ep(2), "pool").unwrap(), 7);
        assert_eq!(*vmm.attach_shared::<u32>(ep(3), "pool").unwrap(), 7);
        assert_eq!(vmm.grants_by(ep(1)).len(), 2);
    }

    #[test]
    fn revoke_owner_clears_grants_and_registry() {
        let vmm = Vmm::new(Registry::new(), CostModel::default());
        vmm.export_shared(ep(1), Generation::FIRST, ep(2), "ip.pool", Arc::new(0u8))
            .unwrap();
        vmm.export_shared(ep(4), Generation::FIRST, ep(2), "pf.pool", Arc::new(0u8))
            .unwrap();
        let revoked = vmm.revoke_owner(ep(1));
        assert_eq!(revoked.len(), 1);
        assert_eq!(revoked[0].name, "ip.pool");
        assert!(vmm.grants_by(ep(1)).is_empty());
        assert!(!vmm.registry().exists("ip.pool"));
        assert!(vmm.registry().exists("pf.pool"));
    }
}
