//! Synchronous kernel IPC — the slow, trusted path.
//!
//! In a multiserver system the kernel-mediated IPC primitive is what servers
//! fall back to when the fast-path channels cannot be used: setting channels
//! up, delivering interrupts to drivers, and accepting POSIX system calls
//! from applications (paper §V-B).  Every use of it costs a trap into the
//! kernel, and messages that cross to an *idle* core additionally cost an
//! inter-processor interrupt — exactly the overheads the asynchronous
//! channels avoid.
//!
//! [`KernelIpc`] reproduces this primitive between threads.  It charges the
//! configured [`CostModel`] for every trap, context switch and IPI, and can
//! optionally *emulate* those costs by spinning for the equivalent time, so
//! that end-to-end throughput measurements of a kernel-IPC-based stack (the
//! MINIX-3-like baseline of Table II) physically feel the overhead the paper
//! describes.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use newt_channels::endpoint::Endpoint;

use crate::cost::{CostModel, CycleAccount};

/// A fixed-size kernel IPC message, patterned after the MINIX 3 message
/// layout: a source endpoint, a message type and a small payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// The endpoint that sent the message (filled in by the kernel, so it
    /// can be trusted by the receiver).
    pub source: Endpoint,
    /// Message type, interpreted by the receiving server.
    pub mtype: u32,
    /// Payload words.
    pub payload: [u64; 8],
}

impl Message {
    /// Creates a message of type `mtype` with an all-zero payload.
    pub fn new(mtype: u32) -> Self {
        Message {
            source: Endpoint::from_raw(0),
            mtype,
            payload: [0; 8],
        }
    }

    /// Builder-style helper that sets payload word `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    #[must_use]
    pub fn with_word(mut self, index: usize, value: u64) -> Self {
        self.payload[index] = value;
        self
    }

    /// Returns payload word `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    pub fn word(&self, index: usize) -> u64 {
        self.payload[index]
    }
}

/// Errors returned by kernel IPC operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpcError {
    /// The destination endpoint was never attached to the kernel.
    UnknownEndpoint(Endpoint),
    /// The destination endpoint has exited or was detached.
    Dead(Endpoint),
    /// No message arrived before the timeout expired.
    Timeout,
    /// A non-blocking receive found no pending message.
    WouldBlock,
}

impl std::fmt::Display for IpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpcError::UnknownEndpoint(ep) => {
                write!(f, "endpoint {ep} is not attached to the kernel")
            }
            IpcError::Dead(ep) => write!(f, "endpoint {ep} is dead"),
            IpcError::Timeout => write!(f, "timed out waiting for a kernel message"),
            IpcError::WouldBlock => write!(f, "no kernel message pending"),
        }
    }
}

impl std::error::Error for IpcError {}

/// Counters describing kernel involvement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Kernel traps performed (every send and every blocking receive).
    pub traps: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Inter-processor interrupts sent to wake idle destination cores.
    pub ipis: u64,
    /// Total cycles charged for kernel involvement.
    pub cycles: u64,
}

#[derive(Debug, Default)]
struct Mailbox {
    queue: Mutex<VecDeque<Message>>,
    condvar: Condvar,
    alive: AtomicBool,
    /// Whether the owner is currently blocked in `receive` (i.e. its core is
    /// idle and a message needs an IPI to wake it).
    idle: AtomicBool,
}

struct KernelInner {
    model: CostModel,
    emulate_costs: bool,
    mailboxes: Mutex<HashMap<Endpoint, Arc<Mailbox>>>,
    traps: AtomicU64,
    messages: AtomicU64,
    ipis: AtomicU64,
    cycles: CycleAccount,
}

/// The kernel IPC substrate shared by every server thread.
///
/// Cloning yields another handle to the same kernel.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use newt_channels::endpoint::Endpoint;
/// use newt_kernel::ipc::{KernelIpc, Message};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let kernel = KernelIpc::new(Default::default());
/// let app = Endpoint::from_raw(10);
/// let syscall = Endpoint::from_raw(11);
/// kernel.attach(app);
/// kernel.attach(syscall);
///
/// kernel.send(app, syscall, Message::new(42).with_word(0, 7))?;
/// let msg = kernel.receive(syscall, Duration::from_secs(1))?;
/// assert_eq!(msg.mtype, 42);
/// assert_eq!(msg.source, app);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct KernelIpc {
    inner: Arc<KernelInner>,
}

impl std::fmt::Debug for KernelIpc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelIpc")
            .field("endpoints", &self.inner.mailboxes.lock().len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl KernelIpc {
    /// Creates a kernel that only *accounts* costs (no artificial delays).
    pub fn new(model: CostModel) -> Self {
        Self::with_options(model, false)
    }

    /// Creates a kernel that additionally *emulates* the charged costs by
    /// spinning, so kernel-IPC-heavy configurations measurably slow down.
    pub fn with_cost_emulation(model: CostModel) -> Self {
        Self::with_options(model, true)
    }

    fn with_options(model: CostModel, emulate_costs: bool) -> Self {
        KernelIpc {
            inner: Arc::new(KernelInner {
                model,
                emulate_costs,
                mailboxes: Mutex::new(HashMap::new()),
                traps: AtomicU64::new(0),
                messages: AtomicU64::new(0),
                ipis: AtomicU64::new(0),
                cycles: CycleAccount::new(),
            }),
        }
    }

    /// Returns the cost model used for accounting.
    pub fn cost_model(&self) -> CostModel {
        self.inner.model
    }

    fn charge(&self, cycles: u64) {
        self.inner.cycles.charge(cycles);
        if self.inner.emulate_costs {
            let wait = self.inner.model.cycles_to_duration(cycles);
            let start = Instant::now();
            while start.elapsed() < wait {
                std::hint::spin_loop();
            }
        }
    }

    fn charge_trap(&self) {
        self.inner.traps.fetch_add(1, Ordering::Relaxed);
        self.charge(self.inner.model.trap_expected() as u64);
    }

    /// Attaches an endpoint, creating its mailbox.  Attaching an endpoint
    /// that already exists simply marks it alive again: messages queued for
    /// the previous incarnation stay queued, because they are still valid
    /// requests the new incarnation can serve.
    pub fn attach(&self, endpoint: Endpoint) {
        let mut boxes = self.inner.mailboxes.lock();
        let mailbox = boxes
            .entry(endpoint)
            .or_insert_with(|| Arc::new(Mailbox::default()));
        mailbox.alive.store(true, Ordering::Release);
    }

    /// Discards every message queued for `endpoint` (used when a restarted
    /// server explicitly wants to start from a clean mailbox).
    pub fn clear_mailbox(&self, endpoint: Endpoint) {
        if let Some(mailbox) = self.inner.mailboxes.lock().get(&endpoint) {
            mailbox.queue.lock().clear();
        }
    }

    /// Detaches an endpoint (it exited or crashed).  Blocked receivers are
    /// woken and senders get [`IpcError::Dead`] from now on.
    pub fn detach(&self, endpoint: Endpoint) {
        let boxes = self.inner.mailboxes.lock();
        if let Some(mailbox) = boxes.get(&endpoint) {
            mailbox.alive.store(false, Ordering::Release);
            let _guard = mailbox.queue.lock();
            mailbox.condvar.notify_all();
        }
    }

    /// Returns `true` if the endpoint is attached and alive.
    pub fn is_attached(&self, endpoint: Endpoint) -> bool {
        self.inner
            .mailboxes
            .lock()
            .get(&endpoint)
            .is_some_and(|m| m.alive.load(Ordering::Acquire))
    }

    fn mailbox(&self, endpoint: Endpoint) -> Result<Arc<Mailbox>, IpcError> {
        self.inner
            .mailboxes
            .lock()
            .get(&endpoint)
            .cloned()
            .ok_or(IpcError::UnknownEndpoint(endpoint))
    }

    /// Sends `message` from `from` to `to`.  This is the kernel trap the
    /// fast-path channels avoid.
    ///
    /// # Errors
    ///
    /// Returns [`IpcError::UnknownEndpoint`] or [`IpcError::Dead`] when the
    /// destination cannot receive.
    pub fn send(&self, from: Endpoint, to: Endpoint, mut message: Message) -> Result<(), IpcError> {
        let mailbox = self.mailbox(to)?;
        if !mailbox.alive.load(Ordering::Acquire) {
            return Err(IpcError::Dead(to));
        }
        self.charge_trap();
        message.source = from;
        {
            let mut queue = mailbox.queue.lock();
            queue.push_back(message);
            // Waking an idle destination core requires an IPI.
            if mailbox.idle.load(Ordering::Acquire) {
                self.inner.ipis.fetch_add(1, Ordering::Relaxed);
                self.charge(self.inner.model.ipi);
            }
            mailbox.condvar.notify_all();
        }
        self.inner.messages.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Non-blocking receive.
    ///
    /// # Errors
    ///
    /// Returns [`IpcError::WouldBlock`] when no message is pending,
    /// [`IpcError::UnknownEndpoint`] when `me` was never attached.
    pub fn try_receive(&self, me: Endpoint) -> Result<Message, IpcError> {
        let mailbox = self.mailbox(me)?;
        let mut queue = mailbox.queue.lock();
        queue.pop_front().ok_or(IpcError::WouldBlock)
    }

    /// Blocking receive with a timeout.  The caller's core is considered
    /// idle while it waits (so senders pay the IPI cost to wake it).
    ///
    /// # Errors
    ///
    /// Returns [`IpcError::Timeout`] if nothing arrives in time, or
    /// [`IpcError::Dead`] if the endpoint was detached while waiting.
    pub fn receive(&self, me: Endpoint, timeout: Duration) -> Result<Message, IpcError> {
        self.receive_matching(me, timeout, |_| true)
    }

    /// Blocking receive of the first message whose source is `from`.
    /// Messages from other sources stay queued.
    ///
    /// # Errors
    ///
    /// As [`KernelIpc::receive`].
    pub fn receive_from(
        &self,
        me: Endpoint,
        from: Endpoint,
        timeout: Duration,
    ) -> Result<Message, IpcError> {
        self.receive_matching(me, timeout, |m| m.source == from)
    }

    fn receive_matching<F: Fn(&Message) -> bool>(
        &self,
        me: Endpoint,
        timeout: Duration,
        matches: F,
    ) -> Result<Message, IpcError> {
        let mailbox = self.mailbox(me)?;
        self.charge_trap();
        let deadline = Instant::now() + timeout;
        let mut queue = mailbox.queue.lock();
        loop {
            if let Some(pos) = queue.iter().position(&matches) {
                return Ok(queue.remove(pos).expect("position found above"));
            }
            if !mailbox.alive.load(Ordering::Acquire) {
                return Err(IpcError::Dead(me));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(IpcError::Timeout);
            }
            mailbox.idle.store(true, Ordering::Release);
            let timed_out = mailbox
                .condvar
                .wait_for(&mut queue, deadline - now)
                .timed_out();
            mailbox.idle.store(false, Ordering::Release);
            if timed_out && queue.iter().position(&matches).is_none() {
                return Err(IpcError::Timeout);
            }
        }
    }

    /// The synchronous request/reply pattern (`sendrec` in MINIX terms):
    /// sends `message` to `to` and blocks until `to` replies.
    ///
    /// # Errors
    ///
    /// As [`KernelIpc::send`] and [`KernelIpc::receive_from`].
    pub fn sendrec(
        &self,
        from: Endpoint,
        to: Endpoint,
        message: Message,
        timeout: Duration,
    ) -> Result<Message, IpcError> {
        self.send(from, to, message)?;
        self.receive_from(from, to, timeout)
    }

    /// Returns the number of messages waiting in `endpoint`'s mailbox.
    pub fn pending(&self, endpoint: Endpoint) -> usize {
        self.mailbox(endpoint)
            .map(|m| m.queue.lock().len())
            .unwrap_or(0)
    }

    /// Returns a snapshot of the kernel involvement counters.
    pub fn stats(&self) -> KernelStats {
        KernelStats {
            traps: self.inner.traps.load(Ordering::Relaxed),
            messages: self.inner.messages.load(Ordering::Relaxed),
            ipis: self.inner.ipis.load(Ordering::Relaxed),
            cycles: self.inner.cycles.total(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn ep(n: u32) -> Endpoint {
        Endpoint::from_raw(n)
    }

    fn kernel() -> KernelIpc {
        KernelIpc::new(CostModel::default())
    }

    #[test]
    fn send_and_receive_round_trip() {
        let k = kernel();
        k.attach(ep(1));
        k.attach(ep(2));
        k.send(ep(1), ep(2), Message::new(5).with_word(0, 99))
            .unwrap();
        let m = k.receive(ep(2), Duration::from_secs(1)).unwrap();
        assert_eq!(m.mtype, 5);
        assert_eq!(m.word(0), 99);
        assert_eq!(m.source, ep(1));
    }

    #[test]
    fn source_is_set_by_kernel_not_sender() {
        let k = kernel();
        k.attach(ep(1));
        k.attach(ep(2));
        // A malicious sender cannot forge the source field.
        let mut forged = Message::new(1);
        forged.source = ep(77);
        k.send(ep(1), ep(2), forged).unwrap();
        let m = k.receive(ep(2), Duration::from_secs(1)).unwrap();
        assert_eq!(m.source, ep(1));
    }

    #[test]
    fn unknown_and_dead_endpoints_error() {
        let k = kernel();
        k.attach(ep(1));
        assert_eq!(
            k.send(ep(1), ep(9), Message::new(0)).unwrap_err(),
            IpcError::UnknownEndpoint(ep(9))
        );
        k.attach(ep(2));
        k.detach(ep(2));
        assert_eq!(
            k.send(ep(1), ep(2), Message::new(0)).unwrap_err(),
            IpcError::Dead(ep(2))
        );
        assert!(!k.is_attached(ep(2)));
    }

    #[test]
    fn try_receive_does_not_block() {
        let k = kernel();
        k.attach(ep(1));
        assert_eq!(k.try_receive(ep(1)).unwrap_err(), IpcError::WouldBlock);
    }

    #[test]
    fn receive_times_out() {
        let k = kernel();
        k.attach(ep(1));
        let start = Instant::now();
        assert_eq!(
            k.receive(ep(1), Duration::from_millis(30)).unwrap_err(),
            IpcError::Timeout
        );
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn receive_from_filters_sources() {
        let k = kernel();
        for i in 1..=3 {
            k.attach(ep(i));
        }
        k.send(ep(1), ep(3), Message::new(1)).unwrap();
        k.send(ep(2), ep(3), Message::new(2)).unwrap();
        let m = k
            .receive_from(ep(3), ep(2), Duration::from_secs(1))
            .unwrap();
        assert_eq!(m.mtype, 2);
        // The other message is still pending.
        assert_eq!(k.pending(ep(3)), 1);
        let m = k.receive(ep(3), Duration::from_secs(1)).unwrap();
        assert_eq!(m.mtype, 1);
    }

    #[test]
    fn sendrec_round_trip_across_threads() {
        let k = kernel();
        let client = ep(1);
        let server = ep(2);
        k.attach(client);
        k.attach(server);
        let k_server = k.clone();
        let handle = thread::spawn(move || {
            let req = k_server.receive(server, Duration::from_secs(5)).unwrap();
            let reply = Message::new(req.mtype + 1).with_word(0, req.word(0) * 2);
            k_server.send(server, req.source, reply).unwrap();
        });
        let reply = k
            .sendrec(
                client,
                server,
                Message::new(10).with_word(0, 21),
                Duration::from_secs(5),
            )
            .unwrap();
        assert_eq!(reply.mtype, 11);
        assert_eq!(reply.word(0), 42);
        handle.join().unwrap();
    }

    #[test]
    fn idle_receiver_costs_an_ipi() {
        let k = kernel();
        k.attach(ep(1));
        k.attach(ep(2));
        let k2 = k.clone();
        let handle = thread::spawn(move || k2.receive(ep(2), Duration::from_secs(5)));
        // Give the receiver time to block (become idle).
        thread::sleep(Duration::from_millis(30));
        k.send(ep(1), ep(2), Message::new(7)).unwrap();
        handle.join().unwrap().unwrap();
        let stats = k.stats();
        assert!(stats.ipis >= 1, "expected at least one IPI, got {stats:?}");
    }

    #[test]
    fn stats_count_traps_and_messages() {
        let k = kernel();
        k.attach(ep(1));
        k.attach(ep(2));
        k.send(ep(1), ep(2), Message::new(0)).unwrap();
        k.receive(ep(2), Duration::from_secs(1)).unwrap();
        let stats = k.stats();
        assert_eq!(stats.messages, 1);
        assert!(stats.traps >= 2); // one for the send, one for the receive
        assert!(stats.cycles > 0);
    }

    #[test]
    fn detach_wakes_blocked_receiver() {
        let k = kernel();
        k.attach(ep(1));
        let k2 = k.clone();
        let handle = thread::spawn(move || k2.receive(ep(1), Duration::from_secs(10)));
        thread::sleep(Duration::from_millis(30));
        k.detach(ep(1));
        assert_eq!(handle.join().unwrap().unwrap_err(), IpcError::Dead(ep(1)));
    }

    #[test]
    fn reattach_keeps_pending_requests_and_clear_discards_them() {
        let k = kernel();
        k.attach(ep(1));
        k.attach(ep(2));
        k.send(ep(1), ep(2), Message::new(1)).unwrap();
        // The server crashes and its new incarnation attaches again: the
        // queued request is still valid and stays available...
        k.attach(ep(2));
        assert_eq!(k.pending(ep(2)), 1);
        // ...unless the new incarnation explicitly clears its mailbox.
        k.clear_mailbox(ep(2));
        assert_eq!(k.pending(ep(2)), 0);
    }

    #[test]
    fn cost_emulation_slows_traffic_down() {
        let model = CostModel {
            trap_hot: 200_000,
            trap_cold: 200_000,
            ..CostModel::default()
        };
        let fast = KernelIpc::new(model);
        let slow = KernelIpc::with_cost_emulation(model);
        for k in [&fast, &slow] {
            k.attach(ep(1));
            k.attach(ep(2));
        }
        let time = |k: &KernelIpc| {
            let start = Instant::now();
            for _ in 0..50 {
                k.send(ep(1), ep(2), Message::new(0)).unwrap();
                k.receive(ep(2), Duration::from_secs(1)).unwrap();
            }
            start.elapsed()
        };
        let fast_t = time(&fast);
        let slow_t = time(&slow);
        assert!(
            slow_t > fast_t,
            "emulated kernel should be slower: {fast_t:?} vs {slow_t:?}"
        );
    }
}
