//! The cycle-cost model.
//!
//! The paper motivates its design with concrete costs measured on the test
//! machine (a 12-core 1.9 GHz AMD Opteron 6168):
//!
//! * a void Linux `SYSCALL` with hot caches: **≈150 cycles**;
//! * the same call with cold caches: **≈3000 cycles**;
//! * asynchronously enqueueing a message on a channel between two processes
//!   on different cores while the receiver keeps consuming: **≈30 cycles**;
//! * kernel IPC to an idle core additionally needs an **inter-processor
//!   interrupt**;
//! * kernel IPC on a shared core additionally pays a **context switch**.
//!
//! [`CostModel`] packages those numbers so that both the analytic simulator
//! (`newt-sim`) and the executable kernel-IPC substrate ([`crate::ipc`]) can
//! charge them consistently.  [`CycleAccount`] accumulates charged cycles per
//! actor, and can convert them back to seconds at the modelled CPU frequency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Cycle costs of the primitive operations of the communication substrate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// CPU clock frequency in GHz (cycles per nanosecond).
    pub cpu_ghz: f64,
    /// Cycles for a kernel trap with hot caches (the paper's ~150).
    pub trap_hot: u64,
    /// Cycles for a kernel trap with cold caches (the paper's ~3000).
    pub trap_cold: u64,
    /// Cycles to enqueue a message on a user-space channel (the paper's ~30).
    pub channel_enqueue: u64,
    /// Cycles for a context switch between two processes sharing a core.
    pub context_switch: u64,
    /// Cycles charged for sending and handling an inter-processor interrupt.
    pub ipi: u64,
    /// Cycles per byte for copying payload data (avoided by zero-copy).
    pub copy_per_byte: f64,
    /// Cycles of per-packet protocol work in one server (header building,
    /// checksum bookkeeping, socket lookup, ...).
    pub per_packet_work: u64,
    /// Fraction of kernel traps that run with cold caches in steady state.
    pub cold_trap_fraction: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::opteron_6168()
    }
}

impl CostModel {
    /// The cost model of the paper's evaluation machine (1.9 GHz Opteron).
    pub fn opteron_6168() -> Self {
        CostModel {
            cpu_ghz: 1.9,
            trap_hot: 150,
            trap_cold: 3000,
            channel_enqueue: 30,
            context_switch: 1200,
            ipi: 2000,
            copy_per_byte: 0.5,
            per_packet_work: 2500,
            cold_trap_fraction: 0.2,
        }
    }

    /// Expected cost of one kernel trap given the configured hot/cold mix.
    pub fn trap_expected(&self) -> f64 {
        self.trap_hot as f64 * (1.0 - self.cold_trap_fraction)
            + self.trap_cold as f64 * self.cold_trap_fraction
    }

    /// Cycles needed to copy `bytes` bytes.
    pub fn copy_cost(&self, bytes: usize) -> u64 {
        (self.copy_per_byte * bytes as f64).round() as u64
    }

    /// Converts a cycle count into wall-clock time at the modelled frequency.
    pub fn cycles_to_duration(&self, cycles: u64) -> Duration {
        Duration::from_secs_f64(cycles as f64 / (self.cpu_ghz * 1e9))
    }

    /// Converts a duration into cycles at the modelled frequency.
    pub fn duration_to_cycles(&self, duration: Duration) -> u64 {
        (duration.as_secs_f64() * self.cpu_ghz * 1e9).round() as u64
    }

    /// Cycles one core can spend per second.
    pub fn cycles_per_second(&self) -> f64 {
        self.cpu_ghz * 1e9
    }
}

/// Accumulates cycles charged to one actor (a core or a server).
#[derive(Debug, Default)]
pub struct CycleAccount {
    cycles: AtomicU64,
    charges: AtomicU64,
}

impl CycleAccount {
    /// Creates an empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cycles` to the account.
    pub fn charge(&self, cycles: u64) {
        self.cycles.fetch_add(cycles, Ordering::Relaxed);
        self.charges.fetch_add(1, Ordering::Relaxed);
    }

    /// Returns the total cycles charged so far.
    pub fn total(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Returns the number of individual charges recorded.
    pub fn charges(&self) -> u64 {
        self.charges.load(Ordering::Relaxed)
    }

    /// Converts the accumulated cycles into time under `model`.
    pub fn busy_time(&self, model: &CostModel) -> Duration {
        model.cycles_to_duration(self.total())
    }

    /// Resets the account to zero.
    pub fn reset(&self) {
        self.cycles.store(0, Ordering::Relaxed);
        self.charges.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_numbers() {
        let m = CostModel::default();
        assert_eq!(m.trap_hot, 150);
        assert_eq!(m.trap_cold, 3000);
        assert_eq!(m.channel_enqueue, 30);
        assert!((m.cpu_ghz - 1.9).abs() < f64::EPSILON);
        // The channel enqueue is at least 5x cheaper than even a hot trap.
        assert!(m.channel_enqueue * 5 <= m.trap_hot);
    }

    #[test]
    fn expected_trap_between_hot_and_cold() {
        let m = CostModel::default();
        let e = m.trap_expected();
        assert!(e > m.trap_hot as f64);
        assert!(e < m.trap_cold as f64);
    }

    #[test]
    fn copy_cost_scales_linearly() {
        let m = CostModel::default();
        assert_eq!(m.copy_cost(0), 0);
        assert_eq!(m.copy_cost(1000), 500);
        assert_eq!(m.copy_cost(2000), 2 * m.copy_cost(1000));
    }

    #[test]
    fn cycle_duration_round_trip() {
        let m = CostModel::default();
        let cycles = 1_900_000; // 1 ms at 1.9 GHz
        let d = m.cycles_to_duration(cycles);
        assert!((d.as_secs_f64() - 0.001).abs() < 1e-9);
        assert_eq!(m.duration_to_cycles(d), cycles);
    }

    #[test]
    fn account_accumulates_and_resets() {
        let acct = CycleAccount::new();
        acct.charge(100);
        acct.charge(250);
        assert_eq!(acct.total(), 350);
        assert_eq!(acct.charges(), 2);
        let m = CostModel::default();
        assert!(acct.busy_time(&m) > Duration::ZERO);
        acct.reset();
        assert_eq!(acct.total(), 0);
        assert_eq!(acct.charges(), 0);
    }

    #[test]
    fn cycles_per_second_matches_frequency() {
        let m = CostModel::default();
        assert!((m.cycles_per_second() - 1.9e9).abs() < 1.0);
    }
}
