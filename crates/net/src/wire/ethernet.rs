//! Ethernet II framing.

use super::{MacAddr, WireError};

/// Length of an Ethernet II header (two addresses plus the EtherType).
pub const ETHERNET_HEADER_LEN: usize = 14;

/// EtherType values understood by the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (`0x0800`).
    Ipv4,
    /// ARP (`0x0806`).
    Arp,
}

impl EtherType {
    /// Returns the numeric EtherType value.
    pub const fn as_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
        }
    }

    /// Parses a numeric EtherType.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnsupportedEtherType`] for anything other than
    /// IPv4 and ARP.
    pub fn try_from_u16(value: u16) -> Result<Self, WireError> {
        match value {
            0x0800 => Ok(EtherType::Ipv4),
            0x0806 => Ok(EtherType::Arp),
            other => Err(WireError::UnsupportedEtherType(other)),
        }
    }
}

/// A parsed (or to-be-built) Ethernet II frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
    /// Frame payload (an IPv4 packet or an ARP packet).
    pub payload: Vec<u8>,
}

impl EthernetFrame {
    /// Creates a frame.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: Vec<u8>) -> Self {
        EthernetFrame {
            dst,
            src,
            ethertype,
            payload,
        }
    }

    /// Serialises the frame into wire bytes.
    pub fn build(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ETHERNET_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.dst.octets());
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.ethertype.as_u16().to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a frame from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] for short buffers and
    /// [`WireError::UnsupportedEtherType`] for unknown payload protocols.
    pub fn parse(data: &[u8]) -> Result<Self, WireError> {
        if data.len() < ETHERNET_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: ETHERNET_HEADER_LEN,
                got: data.len(),
            });
        }
        let dst = MacAddr([data[0], data[1], data[2], data[3], data[4], data[5]]);
        let src = MacAddr([data[6], data[7], data[8], data[9], data[10], data[11]]);
        let ethertype = EtherType::try_from_u16(u16::from_be_bytes([data[12], data[13]]))?;
        Ok(EthernetFrame {
            dst,
            src,
            ethertype,
            payload: data[ETHERNET_HEADER_LEN..].to_vec(),
        })
    }

    /// Total length of the frame on the wire.
    pub fn wire_len(&self) -> usize {
        ETHERNET_HEADER_LEN + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_parse_round_trip() {
        let frame = EthernetFrame::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            EtherType::Ipv4,
            vec![1, 2, 3, 4],
        );
        let bytes = frame.build();
        assert_eq!(bytes.len(), frame.wire_len());
        let parsed = EthernetFrame::parse(&bytes).unwrap();
        assert_eq!(parsed, frame);
    }

    #[test]
    fn truncated_frame_rejected() {
        assert!(matches!(
            EthernetFrame::parse(&[0u8; 10]),
            Err(WireError::Truncated {
                needed: 14,
                got: 10
            })
        ));
    }

    #[test]
    fn unknown_ethertype_rejected() {
        let mut bytes = EthernetFrame::new(
            MacAddr::BROADCAST,
            MacAddr::from_index(1),
            EtherType::Arp,
            vec![],
        )
        .build();
        bytes[12] = 0x86;
        bytes[13] = 0xdd; // IPv6
        assert_eq!(
            EthernetFrame::parse(&bytes),
            Err(WireError::UnsupportedEtherType(0x86dd))
        );
    }

    #[test]
    fn ethertype_values() {
        assert_eq!(EtherType::Ipv4.as_u16(), 0x0800);
        assert_eq!(EtherType::Arp.as_u16(), 0x0806);
        assert_eq!(EtherType::try_from_u16(0x0800).unwrap(), EtherType::Ipv4);
    }
}
