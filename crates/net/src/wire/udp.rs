//! UDP (RFC 768).

use std::net::Ipv4Addr;

use super::checksum::pseudo_header_checksum;
use super::{IpProtocol, WireError};

/// Length of a UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload.
    pub payload: Vec<u8>,
}

impl UdpDatagram {
    /// Creates a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: Vec<u8>) -> Self {
        UdpDatagram {
            src_port,
            dst_port,
            payload,
        }
    }

    /// Serialises the datagram, computing the checksum over the pseudo
    /// header for `src`/`dst`.
    pub fn build(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let len = (UDP_HEADER_LEN + self.payload.len()) as u16;
        let mut out = Vec::with_capacity(len as usize);
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.payload);
        let mut csum = pseudo_header_checksum(src, dst, IpProtocol::Udp.as_u8(), &out);
        if csum == 0 {
            csum = 0xffff; // RFC 768: zero is transmitted as all ones
        }
        out[6..8].copy_from_slice(&csum.to_be_bytes());
        out
    }

    /// Parses a datagram, verifying the checksum against the pseudo header.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`], [`WireError::BadLength`] or
    /// [`WireError::BadChecksum`].
    pub fn parse(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<Self, WireError> {
        if data.len() < UDP_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: UDP_HEADER_LEN,
                got: data.len(),
            });
        }
        let len = u16::from_be_bytes([data[4], data[5]]) as usize;
        if len < UDP_HEADER_LEN || data.len() < len {
            return Err(WireError::BadLength {
                field: "udp length",
            });
        }
        let declared_checksum = u16::from_be_bytes([data[6], data[7]]);
        if declared_checksum != 0
            && pseudo_header_checksum(src, dst, IpProtocol::Udp.as_u8(), &data[..len]) != 0
        {
            return Err(WireError::BadChecksum { protocol: "udp" });
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            payload: data[UDP_HEADER_LEN..len].to_vec(),
        })
    }

    /// Total length of the datagram on the wire.
    pub fn wire_len(&self) -> usize {
        UDP_HEADER_LEN + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
    }

    #[test]
    fn build_parse_round_trip() {
        let (src, dst) = addrs();
        let dgram = UdpDatagram::new(5353, 53, b"dns query".to_vec());
        let parsed = UdpDatagram::parse(&dgram.build(src, dst), src, dst).unwrap();
        assert_eq!(parsed, dgram);
        assert_eq!(parsed.wire_len(), 17);
    }

    #[test]
    fn wrong_addresses_fail_checksum() {
        let (src, dst) = addrs();
        let bytes = UdpDatagram::new(1, 2, vec![1, 2, 3]).build(src, dst);
        assert_eq!(
            UdpDatagram::parse(&bytes, src, Ipv4Addr::new(10, 0, 0, 9)),
            Err(WireError::BadChecksum { protocol: "udp" })
        );
    }

    #[test]
    fn corrupted_payload_detected() {
        let (src, dst) = addrs();
        let mut bytes = UdpDatagram::new(1, 2, vec![0u8; 64]).build(src, dst);
        bytes[20] ^= 1;
        assert_eq!(
            UdpDatagram::parse(&bytes, src, dst),
            Err(WireError::BadChecksum { protocol: "udp" })
        );
    }

    #[test]
    fn zero_checksum_means_unverified() {
        let (src, dst) = addrs();
        let mut bytes = UdpDatagram::new(7, 9, b"x".to_vec()).build(src, dst);
        bytes[6] = 0;
        bytes[7] = 0;
        // Checksum 0 = sender did not compute one; accepted as-is.
        assert!(UdpDatagram::parse(&bytes, src, dst).is_ok());
    }

    #[test]
    fn short_and_inconsistent_rejected() {
        let (src, dst) = addrs();
        assert!(matches!(
            UdpDatagram::parse(&[0u8; 4], src, dst),
            Err(WireError::Truncated { .. })
        ));
        let mut bytes = UdpDatagram::new(1, 2, vec![0u8; 8]).build(src, dst);
        bytes[5] = 200; // declared length longer than the buffer
        assert!(matches!(
            UdpDatagram::parse(&bytes, src, dst),
            Err(WireError::BadLength { .. })
        ));
    }
}
