//! ARP (RFC 826) for IPv4 over Ethernet.
//!
//! ARP lives in the IP server in the decomposed stack (the paper folds ARP
//! and ICMP into the IP component, both of which are stateless and therefore
//! trivially restartable).

use std::net::Ipv4Addr;

use super::{MacAddr, WireError};

const ARP_LEN: usize = 28;

/// ARP operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOperation {
    /// Who-has request.
    Request,
    /// Is-at reply.
    Reply,
}

impl ArpOperation {
    fn as_u16(self) -> u16 {
        match self {
            ArpOperation::Request => 1,
            ArpOperation::Reply => 2,
        }
    }
}

/// An ARP packet for IPv4 over Ethernet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArpPacket {
    /// Request or reply.
    pub operation: ArpOperation,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (all zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// Creates a who-has request for `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            operation: ArpOperation::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr([0; 6]),
            target_ip,
        }
    }

    /// Creates the reply answering `request` with the local binding.
    pub fn reply_to(request: &ArpPacket, local_mac: MacAddr, local_ip: Ipv4Addr) -> Self {
        ArpPacket {
            operation: ArpOperation::Reply,
            sender_mac: local_mac,
            sender_ip: local_ip,
            target_mac: request.sender_mac,
            target_ip: request.sender_ip,
        }
    }

    /// Serialises the packet.
    pub fn build(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ARP_LEN);
        out.extend_from_slice(&1u16.to_be_bytes()); // hardware type: Ethernet
        out.extend_from_slice(&0x0800u16.to_be_bytes()); // protocol type: IPv4
        out.push(6); // hardware length
        out.push(4); // protocol length
        out.extend_from_slice(&self.operation.as_u16().to_be_bytes());
        out.extend_from_slice(&self.sender_mac.octets());
        out.extend_from_slice(&self.sender_ip.octets());
        out.extend_from_slice(&self.target_mac.octets());
        out.extend_from_slice(&self.target_ip.octets());
        out
    }

    /// Parses an ARP packet.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if the buffer is too short or
    /// [`WireError::BadLength`] if the hardware/protocol sizes are not
    /// Ethernet/IPv4.
    pub fn parse(data: &[u8]) -> Result<Self, WireError> {
        if data.len() < ARP_LEN {
            return Err(WireError::Truncated {
                needed: ARP_LEN,
                got: data.len(),
            });
        }
        if data[4] != 6 || data[5] != 4 {
            return Err(WireError::BadLength {
                field: "arp hardware/protocol size",
            });
        }
        let operation = match u16::from_be_bytes([data[6], data[7]]) {
            1 => ArpOperation::Request,
            2 => ArpOperation::Reply,
            _ => {
                return Err(WireError::BadLength {
                    field: "arp operation",
                })
            }
        };
        let sender_mac = MacAddr([data[8], data[9], data[10], data[11], data[12], data[13]]);
        let sender_ip = Ipv4Addr::new(data[14], data[15], data[16], data[17]);
        let target_mac = MacAddr([data[18], data[19], data[20], data[21], data[22], data[23]]);
        let target_ip = Ipv4Addr::new(data[24], data[25], data[26], data[27]);
        Ok(ArpPacket {
            operation,
            sender_mac,
            sender_ip,
            target_mac,
            target_ip,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_reply_round_trip() {
        let req = ArpPacket::request(
            MacAddr::from_index(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let parsed = ArpPacket::parse(&req.build()).unwrap();
        assert_eq!(parsed, req);

        let reply =
            ArpPacket::reply_to(&parsed, MacAddr::from_index(2), Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(reply.operation, ArpOperation::Reply);
        assert_eq!(reply.target_ip, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(reply.target_mac, MacAddr::from_index(1));
        let parsed_reply = ArpPacket::parse(&reply.build()).unwrap();
        assert_eq!(parsed_reply, reply);
    }

    #[test]
    fn truncated_and_malformed_rejected() {
        assert!(matches!(
            ArpPacket::parse(&[0u8; 10]),
            Err(WireError::Truncated { .. })
        ));
        let mut bytes = ArpPacket::request(
            MacAddr::from_index(1),
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(1, 1, 1, 2),
        )
        .build();
        bytes[4] = 8; // bogus hardware size
        assert!(matches!(
            ArpPacket::parse(&bytes),
            Err(WireError::BadLength { .. })
        ));
    }
}
