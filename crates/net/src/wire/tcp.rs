//! TCP segments (RFC 793), with the MSS option.

use std::net::Ipv4Addr;

use super::checksum::pseudo_header_checksum;
use super::{IpProtocol, WireError};

/// Length of a TCP header without options.
pub const TCP_HEADER_LEN: usize = 20;

/// TCP control flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// Synchronise sequence numbers.
    pub syn: bool,
    /// Acknowledgement field is significant.
    pub ack: bool,
    /// No more data from sender.
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
    /// Push buffered data to the application.
    pub psh: bool,
}

impl TcpFlags {
    /// A pure SYN.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
        psh: false,
    };
    /// SYN+ACK.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// A pure ACK.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };
    /// FIN+ACK.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
        psh: false,
    };
    /// A reset.
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
        psh: false,
    };
    /// RST+ACK — the reset sent for a segment that named no connection
    /// and carried no acceptable acknowledgement (RFC 793 §3.4).
    pub const RST_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: true,
        psh: false,
    };
    /// ACK carrying data to be pushed.
    pub const PSH_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
        psh: true,
    };

    fn as_u8(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
    }

    fn from_u8(bits: u8) -> Self {
        TcpFlags {
            fin: bits & 0x01 != 0,
            syn: bits & 0x02 != 0,
            rst: bits & 0x04 != 0,
            psh: bits & 0x08 != 0,
            ack: bits & 0x10 != 0,
        }
    }
}

/// A TCP segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: u32,
    /// Acknowledgement number (valid when `flags.ack`).
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
    /// Maximum segment size option (only meaningful on SYN segments).
    pub mss: Option<u16>,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl TcpSegment {
    /// Creates a segment with an empty payload.
    pub fn control(src_port: u16, dst_port: u16, seq: u32, ack: u32, flags: TcpFlags) -> Self {
        TcpSegment {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: 65535,
            mss: None,
            payload: Vec::new(),
        }
    }

    /// Serialises the segment, computing the checksum over the pseudo
    /// header for `src`/`dst`.
    pub fn build(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let options_len = if self.mss.is_some() { 4 } else { 0 };
        let header_len = TCP_HEADER_LEN + options_len;
        let mut out = Vec::with_capacity(header_len + self.payload.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(((header_len / 4) as u8) << 4);
        out.push(self.flags.as_u8());
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&[0, 0]); // urgent pointer
        if let Some(mss) = self.mss {
            out.push(2); // kind: MSS
            out.push(4); // length
            out.extend_from_slice(&mss.to_be_bytes());
        }
        out.extend_from_slice(&self.payload);
        let csum = pseudo_header_checksum(src, dst, IpProtocol::Tcp.as_u8(), &out);
        out[16..18].copy_from_slice(&csum.to_be_bytes());
        out
    }

    /// Parses a segment, verifying its checksum against the pseudo header.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`], [`WireError::BadLength`] or
    /// [`WireError::BadChecksum`].
    pub fn parse(data: &[u8], src: Ipv4Addr, dst: Ipv4Addr) -> Result<Self, WireError> {
        if data.len() < TCP_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: TCP_HEADER_LEN,
                got: data.len(),
            });
        }
        let header_len = ((data[12] >> 4) as usize) * 4;
        if header_len < TCP_HEADER_LEN || data.len() < header_len {
            return Err(WireError::BadLength {
                field: "tcp data offset",
            });
        }
        if pseudo_header_checksum(src, dst, IpProtocol::Tcp.as_u8(), data) != 0 {
            return Err(WireError::BadChecksum { protocol: "tcp" });
        }
        // Scan options for MSS.
        let mut mss = None;
        let mut idx = TCP_HEADER_LEN;
        while idx < header_len {
            match data[idx] {
                0 => break,    // end of options
                1 => idx += 1, // NOP
                2 => {
                    if idx + 4 <= header_len {
                        mss = Some(u16::from_be_bytes([data[idx + 2], data[idx + 3]]));
                    }
                    idx += 4;
                }
                _ => {
                    // Unknown option: skip by its length byte.
                    if idx + 1 >= header_len || data[idx + 1] < 2 {
                        break;
                    }
                    idx += data[idx + 1] as usize;
                }
            }
        }
        Ok(TcpSegment {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            flags: TcpFlags::from_u8(data[13]),
            window: u16::from_be_bytes([data[14], data[15]]),
            mss,
            payload: data[header_len..].to_vec(),
        })
    }

    /// The amount of sequence space this segment occupies (payload plus one
    /// for SYN and FIN each).
    pub fn sequence_len(&self) -> u32 {
        self.payload.len() as u32 + self.flags.syn as u32 + self.flags.fin as u32
    }

    /// Total length of the segment on the wire.
    pub fn wire_len(&self) -> usize {
        TCP_HEADER_LEN + if self.mss.is_some() { 4 } else { 0 } + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
    }

    #[test]
    fn syn_with_mss_round_trip() {
        let (src, dst) = addrs();
        let mut syn = TcpSegment::control(40000, 22, 1000, 0, TcpFlags::SYN);
        syn.mss = Some(1460);
        let parsed = TcpSegment::parse(&syn.build(src, dst), src, dst).unwrap();
        assert_eq!(parsed, syn);
        assert_eq!(parsed.sequence_len(), 1);
        assert_eq!(parsed.wire_len(), 24);
    }

    #[test]
    fn data_segment_round_trip() {
        let (src, dst) = addrs();
        let mut seg = TcpSegment::control(40000, 22, 5000, 7000, TcpFlags::PSH_ACK);
        seg.payload = vec![0x5a; 1400];
        seg.window = 32000;
        let parsed = TcpSegment::parse(&seg.build(src, dst), src, dst).unwrap();
        assert_eq!(parsed, seg);
        assert_eq!(parsed.sequence_len(), 1400);
    }

    #[test]
    fn corrupted_segment_detected() {
        let (src, dst) = addrs();
        let mut seg = TcpSegment::control(1, 2, 0, 0, TcpFlags::ACK);
        seg.payload = vec![7u8; 100];
        let mut bytes = seg.build(src, dst);
        bytes[40] ^= 0x01;
        assert_eq!(
            TcpSegment::parse(&bytes, src, dst),
            Err(WireError::BadChecksum { protocol: "tcp" })
        );
    }

    #[test]
    fn flags_round_trip() {
        for flags in [
            TcpFlags::SYN,
            TcpFlags::SYN_ACK,
            TcpFlags::ACK,
            TcpFlags::FIN_ACK,
            TcpFlags::RST,
            TcpFlags::PSH_ACK,
        ] {
            assert_eq!(TcpFlags::from_u8(flags.as_u8()), flags);
        }
    }

    #[test]
    fn fin_and_syn_occupy_sequence_space() {
        let syn = TcpSegment::control(1, 2, 0, 0, TcpFlags::SYN);
        let fin = TcpSegment::control(1, 2, 0, 0, TcpFlags::FIN_ACK);
        let ack = TcpSegment::control(1, 2, 0, 0, TcpFlags::ACK);
        assert_eq!(syn.sequence_len(), 1);
        assert_eq!(fin.sequence_len(), 1);
        assert_eq!(ack.sequence_len(), 0);
    }

    #[test]
    fn truncated_rejected() {
        let (src, dst) = addrs();
        assert!(matches!(
            TcpSegment::parse(&[0u8; 10], src, dst),
            Err(WireError::Truncated { .. })
        ));
    }
}
