//! Wire formats: Ethernet II, ARP, IPv4, ICMP, UDP and TCP.
//!
//! The decomposed stack passes packets between servers as rich-pointer
//! chains; at the edges (the simulated NIC putting frames on the wire, the
//! remote peer host, the trace capture) packets are parsed from and built
//! into contiguous byte buffers using the types in this module.
//!
//! Parsing is strict about lengths and checksums so that fault-injection
//! experiments that corrupt packets are detected rather than silently
//! accepted.

mod arp;
mod checksum;
mod ethernet;
mod icmp;
mod ipv4;
mod tcp;
mod udp;

pub use arp::{ArpOperation, ArpPacket};
pub use checksum::{internet_checksum, pseudo_header_checksum};
pub use ethernet::{EtherType, EthernetFrame, ETHERNET_HEADER_LEN};
pub use icmp::{IcmpMessage, IcmpType};
pub use ipv4::{IpProtocol, Ipv4Packet, IPV4_HEADER_LEN};
pub use tcp::{TcpFlags, TcpSegment, TCP_HEADER_LEN};
pub use udp::{UdpDatagram, UDP_HEADER_LEN};

use std::fmt;

use serde::{Deserialize, Serialize};

/// The standard Ethernet maximum transmission unit used throughout the
/// evaluation (the paper uses a standard 1500-byte MTU in all
/// configurations).
pub const MTU: usize = 1500;

/// Errors returned when parsing or building wire formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the protocol header requires.
    Truncated {
        /// Bytes needed for the header (or header + declared payload).
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// Protocol whose checksum failed ("ipv4", "tcp", "udp", "icmp").
        protocol: &'static str,
    },
    /// The EtherType is not one the stack understands.
    UnsupportedEtherType(u16),
    /// The IP version field is not 4.
    UnsupportedIpVersion(u8),
    /// The IP protocol number is not one the stack understands.
    UnsupportedProtocol(u8),
    /// A length field is inconsistent with the buffer.
    BadLength {
        /// Description of the inconsistent field.
        field: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "packet truncated: needed {needed} bytes, got {got}")
            }
            WireError::BadChecksum { protocol } => write!(f, "{protocol} checksum mismatch"),
            WireError::UnsupportedEtherType(t) => write!(f, "unsupported ethertype {t:#06x}"),
            WireError::UnsupportedIpVersion(v) => write!(f, "unsupported ip version {v}"),
            WireError::UnsupportedProtocol(p) => write!(f, "unsupported ip protocol {p}"),
            WireError::BadLength { field } => write!(f, "inconsistent length field: {field}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A 48-bit Ethernet MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Returns `true` if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Returns the raw octets.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// Creates a locally administered address from a small index, handy for
    /// generating distinct NIC addresses in tests and simulations.
    pub fn from_index(index: u8) -> MacAddr {
        MacAddr([0x02, 0x00, 0x00, 0x00, 0x00, index])
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MacAddr({self})")
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_addr_display_and_broadcast() {
        let mac = MacAddr([0x02, 0, 0, 0, 0, 0x2a]);
        assert_eq!(format!("{mac}"), "02:00:00:00:00:2a");
        assert!(!mac.is_broadcast());
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert_eq!(MacAddr::from_index(7).octets()[5], 7);
    }

    #[test]
    fn wire_error_messages() {
        let e = WireError::Truncated {
            needed: 20,
            got: 10,
        };
        assert!(format!("{e}").contains("truncated"));
        let e = WireError::BadChecksum { protocol: "tcp" };
        assert!(format!("{e}").contains("tcp"));
        let e = WireError::UnsupportedEtherType(0x86dd);
        assert!(format!("{e}").contains("0x86dd"));
    }
}
