//! IPv4 (RFC 791), options-less headers.

use std::net::Ipv4Addr;

use super::checksum::internet_checksum;
use super::WireError;

/// Length of an IPv4 header without options.
pub const IPV4_HEADER_LEN: usize = 20;

/// IP protocol numbers understood by the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
}

impl IpProtocol {
    /// Returns the protocol number.
    pub const fn as_u8(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
        }
    }

    /// Parses a protocol number.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnsupportedProtocol`] for anything other than
    /// ICMP, TCP and UDP.
    pub fn try_from_u8(value: u8) -> Result<Self, WireError> {
        match value {
            1 => Ok(IpProtocol::Icmp),
            6 => Ok(IpProtocol::Tcp),
            17 => Ok(IpProtocol::Udp),
            other => Err(WireError::UnsupportedProtocol(other)),
        }
    }
}

/// A parsed (or to-be-built) IPv4 packet without options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Transport protocol.
    pub protocol: IpProtocol,
    /// Time to live.
    pub ttl: u8,
    /// Identification field (used by the sender for bookkeeping; this stack
    /// never fragments).
    pub identification: u16,
    /// Transport payload.
    pub payload: Vec<u8>,
}

impl Ipv4Packet {
    /// Creates a packet with the default TTL of 64.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload: Vec<u8>) -> Self {
        Ipv4Packet {
            src,
            dst,
            protocol,
            ttl: 64,
            identification: 0,
            payload,
        }
    }

    /// Serialises the packet, computing the header checksum.
    pub fn build(&self) -> Vec<u8> {
        let total_len = (IPV4_HEADER_LEN + self.payload.len()) as u16;
        let mut out = Vec::with_capacity(total_len as usize);
        out.push(0x45); // version 4, IHL 5
        out.push(0); // DSCP/ECN
        out.extend_from_slice(&total_len.to_be_bytes());
        out.extend_from_slice(&self.identification.to_be_bytes());
        out.extend_from_slice(&0x4000u16.to_be_bytes()); // flags: don't fragment
        out.push(self.ttl);
        out.push(self.protocol.as_u8());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        let csum = internet_checksum(&out[..IPV4_HEADER_LEN]);
        out[10..12].copy_from_slice(&csum.to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a packet, verifying the header checksum.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`], [`WireError::UnsupportedIpVersion`],
    /// [`WireError::BadChecksum`], [`WireError::BadLength`] or
    /// [`WireError::UnsupportedProtocol`] as appropriate.
    pub fn parse(data: &[u8]) -> Result<Self, WireError> {
        if data.len() < IPV4_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: IPV4_HEADER_LEN,
                got: data.len(),
            });
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(WireError::UnsupportedIpVersion(version));
        }
        let ihl = (data[0] & 0x0f) as usize * 4;
        if ihl < IPV4_HEADER_LEN || data.len() < ihl {
            return Err(WireError::BadLength { field: "ipv4 ihl" });
        }
        if internet_checksum(&data[..ihl]) != 0 {
            return Err(WireError::BadChecksum { protocol: "ipv4" });
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]) as usize;
        if total_len < ihl || data.len() < total_len {
            return Err(WireError::BadLength {
                field: "ipv4 total length",
            });
        }
        let protocol = IpProtocol::try_from_u8(data[9])?;
        Ok(Ipv4Packet {
            src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
            dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
            protocol,
            ttl: data[8],
            identification: u16::from_be_bytes([data[4], data[5]]),
            payload: data[ihl..total_len].to_vec(),
        })
    }

    /// Total length of the packet on the wire.
    pub fn wire_len(&self) -> usize {
        IPV4_HEADER_LEN + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Packet {
        Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(192, 168, 1, 2),
            IpProtocol::Udp,
            vec![0xaa; 32],
        )
    }

    #[test]
    fn build_parse_round_trip() {
        let pkt = sample();
        let parsed = Ipv4Packet::parse(&pkt.build()).unwrap();
        assert_eq!(parsed, pkt);
        assert_eq!(parsed.wire_len(), 52);
    }

    #[test]
    fn corrupted_header_fails_checksum() {
        let mut bytes = sample().build();
        bytes[16] ^= 0xff; // flip destination address bits
        assert_eq!(
            Ipv4Packet::parse(&bytes),
            Err(WireError::BadChecksum { protocol: "ipv4" })
        );
    }

    #[test]
    fn ipv6_rejected() {
        let mut bytes = sample().build();
        bytes[0] = 0x65;
        assert_eq!(
            Ipv4Packet::parse(&bytes),
            Err(WireError::UnsupportedIpVersion(6))
        );
    }

    #[test]
    fn truncated_payload_rejected() {
        let bytes = sample().build();
        // Cut 10 bytes off the declared total length.
        assert!(matches!(
            Ipv4Packet::parse(&bytes[..bytes.len() - 10]),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn protocol_numbers() {
        assert_eq!(IpProtocol::Icmp.as_u8(), 1);
        assert_eq!(IpProtocol::Tcp.as_u8(), 6);
        assert_eq!(IpProtocol::Udp.as_u8(), 17);
        assert_eq!(IpProtocol::try_from_u8(6).unwrap(), IpProtocol::Tcp);
        assert!(IpProtocol::try_from_u8(89).is_err());
    }

    #[test]
    fn extra_trailing_bytes_are_ignored() {
        // Ethernet padding after the IP total length must not leak into the
        // payload.
        let pkt = sample();
        let mut bytes = pkt.build();
        bytes.extend_from_slice(&[0u8; 6]);
        let parsed = Ipv4Packet::parse(&bytes).unwrap();
        assert_eq!(parsed.payload.len(), 32);
    }
}
