//! ICMP echo (ping) messages.
//!
//! The paper calls out the "ping of death" as the kind of attack a
//! decomposed stack survives: a malformed ICMP message can crash the IP
//! server, which is then restarted transparently instead of taking the whole
//! system down.

use super::checksum::internet_checksum;
use super::WireError;

const ICMP_HEADER_LEN: usize = 8;

/// ICMP message types understood by the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcmpType {
    /// Echo reply (0).
    EchoReply,
    /// Echo request (8).
    EchoRequest,
}

impl IcmpType {
    fn as_u8(self) -> u8 {
        match self {
            IcmpType::EchoReply => 0,
            IcmpType::EchoRequest => 8,
        }
    }
}

/// An ICMP echo request or reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpMessage {
    /// Echo request or reply.
    pub icmp_type: IcmpType,
    /// Identifier chosen by the sender (typically per ping session).
    pub identifier: u16,
    /// Sequence number within the session.
    pub sequence: u16,
    /// Echo payload.
    pub payload: Vec<u8>,
}

impl IcmpMessage {
    /// Creates an echo request.
    pub fn echo_request(identifier: u16, sequence: u16, payload: Vec<u8>) -> Self {
        IcmpMessage {
            icmp_type: IcmpType::EchoRequest,
            identifier,
            sequence,
            payload,
        }
    }

    /// Creates the reply answering `request`.
    pub fn reply_to(request: &IcmpMessage) -> Self {
        IcmpMessage {
            icmp_type: IcmpType::EchoReply,
            identifier: request.identifier,
            sequence: request.sequence,
            payload: request.payload.clone(),
        }
    }

    /// Serialises the message, computing the ICMP checksum.
    pub fn build(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ICMP_HEADER_LEN + self.payload.len());
        out.push(self.icmp_type.as_u8());
        out.push(0); // code
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.identifier.to_be_bytes());
        out.extend_from_slice(&self.sequence.to_be_bytes());
        out.extend_from_slice(&self.payload);
        let csum = internet_checksum(&out);
        out[2..4].copy_from_slice(&csum.to_be_bytes());
        out
    }

    /// Parses a message, verifying the checksum.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`], [`WireError::BadChecksum`] or
    /// [`WireError::BadLength`] (for non-echo types).
    pub fn parse(data: &[u8]) -> Result<Self, WireError> {
        if data.len() < ICMP_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: ICMP_HEADER_LEN,
                got: data.len(),
            });
        }
        if internet_checksum(data) != 0 {
            return Err(WireError::BadChecksum { protocol: "icmp" });
        }
        let icmp_type = match data[0] {
            0 => IcmpType::EchoReply,
            8 => IcmpType::EchoRequest,
            _ => return Err(WireError::BadLength { field: "icmp type" }),
        };
        Ok(IcmpMessage {
            icmp_type,
            identifier: u16::from_be_bytes([data[4], data[5]]),
            sequence: u16::from_be_bytes([data[6], data[7]]),
            payload: data[ICMP_HEADER_LEN..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round_trip() {
        let req = IcmpMessage::echo_request(0x1234, 7, b"ping payload".to_vec());
        let parsed = IcmpMessage::parse(&req.build()).unwrap();
        assert_eq!(parsed, req);
        let reply = IcmpMessage::reply_to(&parsed);
        assert_eq!(reply.icmp_type, IcmpType::EchoReply);
        assert_eq!(reply.identifier, 0x1234);
        assert_eq!(reply.payload, b"ping payload");
        assert!(IcmpMessage::parse(&reply.build()).is_ok());
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = IcmpMessage::echo_request(1, 1, vec![0u8; 16]).build();
        bytes[9] ^= 0x40;
        assert_eq!(
            IcmpMessage::parse(&bytes),
            Err(WireError::BadChecksum { protocol: "icmp" })
        );
    }

    #[test]
    fn short_message_rejected() {
        assert!(matches!(
            IcmpMessage::parse(&[8, 0, 0]),
            Err(WireError::Truncated { .. })
        ));
    }
}
