//! The Internet checksum (RFC 1071) and the TCP/UDP pseudo-header variant.
//!
//! In the paper's stack, checksums are normally offloaded to the NIC
//! (checksum offloading is one of the optimisations that takes the stack from
//! 3.2 Gbps to 5+ Gbps); the software implementation here is used by the
//! remote peer host, by the simulated NIC when offload is enabled, and by the
//! stack itself when offload is disabled.

use std::net::Ipv4Addr;

/// Computes the 16-bit ones'-complement Internet checksum over `data`.
///
/// # Examples
///
/// ```
/// use newt_net::wire::internet_checksum;
///
/// // A buffer followed by its own checksum sums to zero.
/// let mut header = vec![0x45, 0x00, 0x00, 0x54, 0x00, 0x00, 0x40, 0x00, 0x40, 0x01, 0x00, 0x00];
/// let csum = internet_checksum(&header);
/// header[10] = (csum >> 8) as u8;
/// header[11] = (csum & 0xff) as u8;
/// assert_eq!(internet_checksum(&header), 0);
/// ```
pub fn internet_checksum(data: &[u8]) -> u16 {
    finish(sum_words(data, 0))
}

/// Computes the TCP/UDP checksum, which covers a pseudo header (source and
/// destination address, protocol, segment length) in addition to the segment
/// itself.
pub fn pseudo_header_checksum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, segment: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    sum = sum_words(&src.octets(), sum);
    sum = sum_words(&dst.octets(), sum);
    sum += protocol as u32;
    sum += segment.len() as u32;
    sum = sum_words(segment, sum);
    finish(sum)
}

fn sum_words(data: &[u8], mut sum: u32) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let Some(&last) = chunks.remainder().first() {
        sum += u32::from(u16::from_be_bytes([last, 0]));
    }
    sum
}

fn finish(mut sum: u32) -> u16 {
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let sum = internet_checksum(&data);
        assert_eq!(sum, !0xddf2);
    }

    #[test]
    fn empty_buffer_checksums_to_ffff() {
        assert_eq!(internet_checksum(&[]), 0xffff);
    }

    #[test]
    fn odd_length_is_padded() {
        let even = internet_checksum(&[0x12, 0x34, 0x56, 0x00]);
        let odd = internet_checksum(&[0x12, 0x34, 0x56]);
        assert_eq!(even, odd);
    }

    #[test]
    fn buffer_including_own_checksum_verifies_to_zero() {
        let mut data = vec![0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x00, 0x00];
        let csum = internet_checksum(&data);
        data[6] = (csum >> 8) as u8;
        data[7] = (csum & 0xff) as u8;
        assert_eq!(internet_checksum(&data), 0);
    }

    #[test]
    fn pseudo_header_differs_by_address() {
        let seg = [0u8; 20];
        let a = pseudo_header_checksum(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            6,
            &seg,
        );
        let b = pseudo_header_checksum(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 3),
            6,
            &seg,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn pseudo_header_differs_by_protocol() {
        let seg = [1u8; 8];
        let tcp = pseudo_header_checksum(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            6,
            &seg,
        );
        let udp = pseudo_header_checksum(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            17,
            &seg,
        );
        assert_ne!(tcp, udp);
    }
}
