//! Deterministic payload generation and verification for workloads.
//!
//! The bulk-transfer experiments need a way to tell whether the bytes that
//! arrived at the receiver are the bytes that were sent — especially across
//! crashes, retransmissions and resubmissions, where the paper accepts
//! duplicates but never corruption.  [`PayloadPattern`] produces a
//! deterministic byte stream from an offset, so any window of the stream can
//! be generated (by the sender) and verified (by the receiver) independently.

use crate::wire::internet_checksum;

/// A deterministic, seekable byte-stream pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadPattern {
    seed: u64,
}

impl PayloadPattern {
    /// Creates a pattern from a seed.
    pub fn new(seed: u64) -> Self {
        PayloadPattern { seed }
    }

    /// Returns the byte at stream offset `offset`.
    pub fn byte_at(&self, offset: u64) -> u8 {
        // A small multiplicative hash gives a pattern that catches both
        // reordering and truncation.
        let x = offset
            .wrapping_add(self.seed)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (x >> 56) as u8 ^ (x >> 24) as u8
    }

    /// Fills `buf` with the pattern starting at stream offset `offset`.
    pub fn fill(&self, offset: u64, buf: &mut [u8]) {
        for (i, byte) in buf.iter_mut().enumerate() {
            *byte = self.byte_at(offset + i as u64);
        }
    }

    /// Generates `len` bytes starting at stream offset `offset`.
    pub fn generate(&self, offset: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.fill(offset, &mut buf);
        buf
    }

    /// Verifies that `data` matches the pattern starting at `offset`,
    /// returning the index of the first mismatch if any.
    pub fn verify(&self, offset: u64, data: &[u8]) -> Result<(), usize> {
        for (i, &byte) in data.iter().enumerate() {
            if byte != self.byte_at(offset + i as u64) {
                return Err(i);
            }
        }
        Ok(())
    }
}

/// A deterministic generator of malformed, truncated and bit-flipped
/// frames for adversarial campaigns.
///
/// Every frame it produces is hostile in one of several ways — pure
/// garbage bytes, a truncated TCP header, a wild data offset, a
/// corrupted checksum, a flag soup, or a lying IP total-length — and a
/// correct stack must count and drop all of them without panicking or
/// allocating proportionally to the input.
#[derive(Debug, Clone)]
pub struct FrameFuzzer {
    rng: u64,
}

impl FrameFuzzer {
    /// Creates a fuzzer from a seed (same seed, same frame sequence).
    pub fn new(seed: u64) -> Self {
        FrameFuzzer {
            rng: seed | 1, // xorshift must not start at zero
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Produces the next hostile frame, addressed `src_mac` → `dst_mac`
    /// and (where a shape survives long enough to carry one) an IPv4/TCP
    /// header for `src_ip` → `dst_ip`.
    pub fn next_frame(
        &mut self,
        src_mac: [u8; 6],
        dst_mac: [u8; 6],
        src_ip: [u8; 4],
        dst_ip: [u8; 4],
    ) -> Vec<u8> {
        let shape = self.next_u64() % 6;
        // A plausible Ethernet+IPv4+TCP frame to mutilate.
        let mut frame = Vec::with_capacity(64);
        frame.extend_from_slice(&dst_mac);
        frame.extend_from_slice(&src_mac);
        frame.extend_from_slice(&[0x08, 0x00]); // IPv4 ethertype
        let ip_header_at = frame.len();
        frame.extend_from_slice(&[
            0x45, 0x00, 0x00, 0x28, // ver/ihl, tos, total length 40
            0x00, 0x01, 0x00, 0x00, // ident, flags/frag
            0x40, 0x06, 0x00, 0x00, // ttl, proto TCP, checksum 0 (patched)
        ]);
        frame.extend_from_slice(&src_ip);
        frame.extend_from_slice(&dst_ip);
        let tcp_header_at = frame.len();
        let sport = (self.next_u64() % 65_536) as u16;
        frame.extend_from_slice(&sport.to_be_bytes());
        frame.extend_from_slice(&80u16.to_be_bytes());
        frame.extend_from_slice(&(self.next_u64() as u32).to_be_bytes()); // seq
        frame.extend_from_slice(&(self.next_u64() as u32).to_be_bytes()); // ack
        frame.push(0x50); // data offset 5
        frame.push((self.next_u64() & 0x3f) as u8); // whatever flags
        frame.extend_from_slice(&[0xff, 0xff, 0x00, 0x00, 0x00, 0x00]); // win, csum, urg
        match shape {
            0 => {
                // Pure garbage of a random short length.
                let len = 14 + (self.next_u64() % 100) as usize;
                let mut junk = vec![0u8; len];
                for b in &mut junk {
                    *b = self.next_u64() as u8;
                }
                // Keep the destination MAC so filtering drivers deliver it.
                junk[..6].copy_from_slice(&dst_mac);
                return junk;
            }
            1 => {
                // Truncated mid-TCP-header.
                let keep = tcp_header_at + (self.next_u64() % 19) as usize;
                frame.truncate(keep);
            }
            2 => {
                // Wild TCP data offset (claims options beyond the frame).
                frame[tcp_header_at + 12] = 0xf0;
            }
            3 => {
                // Checksum garbage: a payload the checksum does not cover.
                frame.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
                let total = (frame.len() - ip_header_at) as u16;
                frame[ip_header_at + 2..ip_header_at + 4].copy_from_slice(&total.to_be_bytes());
            }
            4 => {
                // Flag soup: SYN+FIN+RST+everything at once.
                frame[tcp_header_at + 13] = 0x3f;
            }
            _ => {
                // Lying IP total length (longer than the frame carries).
                let lie = 40 + (self.next_u64() % 1400) as u16;
                frame[ip_header_at + 2..ip_header_at + 4].copy_from_slice(&lie.to_be_bytes());
            }
        }
        // Random single-bit flip in the TCP region, so even the
        // "well-formed" shapes arrive subtly corrupted — but leave the IP
        // header alone: the point is to get hostile bytes *past* the IP
        // server's header validation and into the TCP demux.
        if frame.len() > tcp_header_at {
            let span = frame.len() - tcp_header_at;
            let at = tcp_header_at + (self.next_u64() as usize) % span;
            frame[at] ^= 1 << (self.next_u64() % 8);
        }
        // A valid IP header checksum, computed last: frames that die
        // should die on *TCP's* hardening (or on IP's length checks), not
        // all be absorbed by one trivial checksum test.
        frame[ip_header_at + 10..ip_header_at + 12].copy_from_slice(&[0, 0]);
        let csum = internet_checksum(&frame[ip_header_at..tcp_header_at]);
        frame[ip_header_at + 10..ip_header_at + 12].copy_from_slice(&csum.to_be_bytes());
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzzer_is_deterministic_and_varied() {
        let mut a = FrameFuzzer::new(9);
        let mut b = FrameFuzzer::new(9);
        let mac = [0u8; 6];
        let ip = [10, 0, 0, 2];
        let mut lengths = std::collections::HashSet::new();
        for _ in 0..64 {
            let fa = a.next_frame(mac, mac, ip, ip);
            let fb = b.next_frame(mac, mac, ip, ip);
            assert_eq!(fa, fb, "same seed, same frames");
            lengths.insert(fa.len());
        }
        assert!(lengths.len() > 3, "shapes vary");
    }

    #[test]
    fn generation_is_deterministic_and_seekable() {
        let pattern = PayloadPattern::new(42);
        let all = pattern.generate(0, 1000);
        let window = pattern.generate(400, 100);
        assert_eq!(&all[400..500], &window[..]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = PayloadPattern::new(1).generate(0, 64);
        let b = PayloadPattern::new(2).generate(0, 64);
        assert_ne!(a, b);
    }

    #[test]
    fn verify_detects_corruption() {
        let pattern = PayloadPattern::new(7);
        let mut data = pattern.generate(100, 50);
        assert_eq!(pattern.verify(100, &data), Ok(()));
        data[20] ^= 0xff;
        assert_eq!(pattern.verify(100, &data), Err(20));
    }

    #[test]
    fn verify_detects_offset_shift() {
        let pattern = PayloadPattern::new(7);
        let data = pattern.generate(100, 50);
        assert!(pattern.verify(101, &data).is_err());
    }

    #[test]
    fn pattern_is_not_constant() {
        let pattern = PayloadPattern::new(0);
        let data = pattern.generate(0, 256);
        let distinct: std::collections::HashSet<u8> = data.iter().copied().collect();
        assert!(distinct.len() > 16);
    }
}
