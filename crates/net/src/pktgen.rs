//! Deterministic payload generation and verification for workloads.
//!
//! The bulk-transfer experiments need a way to tell whether the bytes that
//! arrived at the receiver are the bytes that were sent — especially across
//! crashes, retransmissions and resubmissions, where the paper accepts
//! duplicates but never corruption.  [`PayloadPattern`] produces a
//! deterministic byte stream from an offset, so any window of the stream can
//! be generated (by the sender) and verified (by the receiver) independently.

/// A deterministic, seekable byte-stream pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadPattern {
    seed: u64,
}

impl PayloadPattern {
    /// Creates a pattern from a seed.
    pub fn new(seed: u64) -> Self {
        PayloadPattern { seed }
    }

    /// Returns the byte at stream offset `offset`.
    pub fn byte_at(&self, offset: u64) -> u8 {
        // A small multiplicative hash gives a pattern that catches both
        // reordering and truncation.
        let x = offset
            .wrapping_add(self.seed)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        (x >> 56) as u8 ^ (x >> 24) as u8
    }

    /// Fills `buf` with the pattern starting at stream offset `offset`.
    pub fn fill(&self, offset: u64, buf: &mut [u8]) {
        for (i, byte) in buf.iter_mut().enumerate() {
            *byte = self.byte_at(offset + i as u64);
        }
    }

    /// Generates `len` bytes starting at stream offset `offset`.
    pub fn generate(&self, offset: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.fill(offset, &mut buf);
        buf
    }

    /// Verifies that `data` matches the pattern starting at `offset`,
    /// returning the index of the first mismatch if any.
    pub fn verify(&self, offset: u64, data: &[u8]) -> Result<(), usize> {
        for (i, &byte) in data.iter().enumerate() {
            if byte != self.byte_at(offset + i as u64) {
                return Err(i);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_seekable() {
        let pattern = PayloadPattern::new(42);
        let all = pattern.generate(0, 1000);
        let window = pattern.generate(400, 100);
        assert_eq!(&all[400..500], &window[..]);
    }

    #[test]
    fn different_seeds_differ() {
        let a = PayloadPattern::new(1).generate(0, 64);
        let b = PayloadPattern::new(2).generate(0, 64);
        assert_ne!(a, b);
    }

    #[test]
    fn verify_detects_corruption() {
        let pattern = PayloadPattern::new(7);
        let mut data = pattern.generate(100, 50);
        assert_eq!(pattern.verify(100, &data), Ok(()));
        data[20] ^= 0xff;
        assert_eq!(pattern.verify(100, &data), Err(20));
    }

    #[test]
    fn verify_detects_offset_shift() {
        let pattern = PayloadPattern::new(7);
        let data = pattern.generate(100, 50);
        assert!(pattern.verify(101, &data).is_err());
    }

    #[test]
    fn pattern_is_not_constant() {
        let pattern = PayloadPattern::new(0);
        let data = pattern.generate(0, 256);
        let distinct: std::collections::HashSet<u8> = data.iter().copied().collect();
        assert!(distinct.len() > 16);
    }
}
