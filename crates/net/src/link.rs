//! Full-duplex links with bandwidth shaping, propagation delay and
//! netem-style impairments.
//!
//! A [`Link`] connects two ports — in the reproduction one side is a
//! simulated NIC owned by a driver server, the other side is the remote peer
//! host.  The link paces frames according to a configurable bandwidth (the
//! paper's network adapters are 1 Gb/s each), which is what gives the
//! bitrate-versus-time figures their ceiling.
//!
//! Beyond the clean gigabit wire, a link can be *impaired* the way Linux
//! `tc netem` impairs one: uniform random loss, bursty two-state
//! (Gilbert–Elliott) loss, per-frame jitter, probabilistic reordering and
//! duplication.  Impairments are what turn the workload benches from
//! fair-weather demos into end-to-end exercises of the stack's
//! retransmission, fast-retransmit and duplicate-suppression paths — see
//! [`Netem`] and [`LinkConfig::impaired`].

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use newt_kernel::clock::SimClock;

use crate::trace::TraceCapture;

/// Two-state Markov (Gilbert–Elliott) loss model: the link alternates
/// between a *good* state with low loss and a *bad* state with high loss,
/// so drops arrive in bursts — the pattern that actually trips TCP's
/// fast-retransmit and RTO machinery, unlike independent uniform loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Per-frame probability of transitioning good → bad.
    pub p_enter_bad: f64,
    /// Per-frame probability of transitioning bad → good.
    pub p_exit_bad: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A moderate burst-loss profile: mostly clean, but roughly every fifty
    /// frames the link enters a bad period that lasts ~4 frames and drops
    /// about half of them.
    pub fn bursty() -> Self {
        GilbertElliott {
            p_enter_bad: 0.02,
            p_exit_bad: 0.25,
            loss_good: 0.0005,
            loss_bad: 0.5,
        }
    }
}

/// Netem-style impairments applied to each direction of a [`Link`]
/// independently (like `tc qdisc add dev ... netem`).  The default is a
/// clean wire: no burst loss, no jitter, no reordering, no duplication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Netem {
    /// Bursty (Gilbert–Elliott) loss, layered on top of
    /// [`LinkConfig::loss_probability`]'s uniform loss.
    pub burst_loss: Option<GilbertElliott>,
    /// Uniform random extra delay in `[0, jitter]` added per frame.
    pub jitter: Duration,
    /// Probability that a frame is held back by [`Netem::reorder_delay`]
    /// extra, letting later frames overtake it (netem's `reorder`).
    pub reorder_probability: f64,
    /// Extra delay applied to reordered frames.
    pub reorder_delay: Duration,
    /// Probability that a frame is delivered twice (netem's `duplicate`).
    pub duplicate_probability: f64,
}

impl Default for Netem {
    fn default() -> Self {
        Netem {
            burst_loss: None,
            jitter: Duration::ZERO,
            reorder_probability: 0.0,
            reorder_delay: Duration::ZERO,
            duplicate_probability: 0.0,
        }
    }
}

impl Netem {
    /// Returns `true` if every impairment is disabled (a clean wire).
    pub fn is_clean(&self) -> bool {
        self.burst_loss.is_none()
            && self.jitter.is_zero()
            && self.reorder_probability == 0.0
            && self.duplicate_probability == 0.0
    }

    /// The degraded-link profile the workload benches run over: bursty
    /// loss, 1 ms jitter, 5% of frames reordered by 2 ms, 1% duplicated.
    pub fn degraded() -> Self {
        Netem {
            burst_loss: Some(GilbertElliott::bursty()),
            jitter: Duration::from_millis(1),
            reorder_probability: 0.05,
            reorder_delay: Duration::from_millis(2),
            duplicate_probability: 0.01,
        }
    }
}

/// Configuration of a [`Link`].
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Bandwidth per direction in bits per second (`f64::INFINITY` disables
    /// pacing).
    pub bandwidth_bps: f64,
    /// One-way propagation delay.
    pub propagation: Duration,
    /// Probability (0..1) that a frame is silently dropped (uniform,
    /// independent loss).
    pub loss_probability: f64,
    /// Maximum number of frames queued per direction before tail drop.
    pub queue_limit: usize,
    /// Netem-style impairments (burst loss, jitter, reordering,
    /// duplication); [`Netem::default`] is a clean wire.
    pub netem: Netem,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::gigabit()
    }
}

impl LinkConfig {
    /// A loss-free gigabit link with a 100 µs propagation delay, matching the
    /// Intel PRO/1000 adapters used in the paper's evaluation.
    pub fn gigabit() -> Self {
        LinkConfig {
            bandwidth_bps: 1e9,
            propagation: Duration::from_micros(100),
            loss_probability: 0.0,
            queue_limit: 2048,
            netem: Netem::default(),
        }
    }

    /// An unshaped link (infinite bandwidth, no delay), useful for unit tests
    /// and peak-throughput measurements where the wire should not be the
    /// bottleneck.
    pub fn unshaped() -> Self {
        LinkConfig {
            bandwidth_bps: f64::INFINITY,
            propagation: Duration::ZERO,
            loss_probability: 0.0,
            queue_limit: 1 << 16,
            netem: Netem::default(),
        }
    }

    /// A gigabit link degraded by [`Netem::degraded`]: burst loss, jitter,
    /// reordering and duplication — the "bad day on the network" profile of
    /// the workload benches.
    pub fn impaired() -> Self {
        LinkConfig {
            netem: Netem::degraded(),
            ..Self::gigabit()
        }
    }

    /// Sets the bandwidth in bits per second.
    #[must_use]
    pub fn bandwidth_bps(mut self, bps: f64) -> Self {
        self.bandwidth_bps = bps;
        self
    }

    /// Sets the uniform loss probability.
    #[must_use]
    pub fn loss_probability(mut self, p: f64) -> Self {
        self.loss_probability = p;
        self
    }

    /// Sets the one-way propagation delay.
    #[must_use]
    pub fn propagation(mut self, delay: Duration) -> Self {
        self.propagation = delay;
        self
    }

    /// Sets the netem-style impairment profile.
    #[must_use]
    pub fn netem(mut self, netem: Netem) -> Self {
        self.netem = netem;
        self
    }
}

/// Which end of the link a port is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSide {
    /// The "A" end (conventionally the NIC under test).
    A,
    /// The "B" end (conventionally the remote peer).
    B,
}

impl LinkSide {
    fn other(self) -> LinkSide {
        match self {
            LinkSide::A => LinkSide::B,
            LinkSide::B => LinkSide::A,
        }
    }
}

#[derive(Debug, Default)]
struct Direction {
    /// Frames in flight, ordered by the virtual time at which they arrive.
    queue: VecDeque<(Duration, Bytes)>,
    /// Virtual time at which the transmitter finishes serialising the last
    /// accepted frame.
    busy_until: Duration,
    /// Whether the Gilbert–Elliott model is currently in its bad state.
    ge_bad: bool,
    frames: u64,
    bytes: u64,
    drops: u64,
    duplicated: u64,
    reordered: u64,
}

impl Direction {
    /// Inserts a frame keeping the queue sorted by arrival time, so frames
    /// are *delivered* in arrival order even when jitter or reordering made
    /// the per-frame delays non-monotonic.
    fn enqueue_sorted(&mut self, arrival: Duration, frame: Bytes) {
        let at = self
            .queue
            .partition_point(|(existing, _)| *existing <= arrival);
        self.queue.insert(at, (arrival, frame));
    }
}

/// Per-direction traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames accepted for transmission.
    pub frames: u64,
    /// Bytes accepted for transmission.
    pub bytes: u64,
    /// Frames dropped (uniform loss, burst loss or queue overflow).
    pub drops: u64,
    /// Extra frame copies injected by the duplication impairment.
    pub duplicated: u64,
    /// Frames held back by the reordering impairment (later frames may
    /// overtake them).
    pub reordered: u64,
}

#[derive(Debug)]
struct LinkInner {
    config: LinkConfig,
    clock: SimClock,
    a_to_b: Mutex<Direction>,
    b_to_a: Mutex<Direction>,
    rng: Mutex<StdRng>,
    trace_a: Mutex<Option<TraceCapture>>,
    trace_b: Mutex<Option<TraceCapture>>,
}

impl LinkInner {
    fn direction(&self, from: LinkSide) -> &Mutex<Direction> {
        match from {
            LinkSide::A => &self.a_to_b,
            LinkSide::B => &self.b_to_a,
        }
    }

    fn trace_for_receiver(&self, side: LinkSide) -> &Mutex<Option<TraceCapture>> {
        match side {
            LinkSide::A => &self.trace_a,
            LinkSide::B => &self.trace_b,
        }
    }
}

/// A point-to-point link created by [`Link::new`].
#[derive(Debug, Clone)]
pub struct Link {
    inner: Arc<LinkInner>,
}

impl Link {
    /// Creates a link and returns it together with its two ports.
    pub fn new(config: LinkConfig, clock: SimClock) -> (Link, LinkPort, LinkPort) {
        let inner = Arc::new(LinkInner {
            config,
            clock,
            a_to_b: Mutex::new(Direction::default()),
            b_to_a: Mutex::new(Direction::default()),
            rng: Mutex::new(StdRng::seed_from_u64(0x6e6574)),
            trace_a: Mutex::new(None),
            trace_b: Mutex::new(None),
        });
        let link = Link {
            inner: Arc::clone(&inner),
        };
        let a = LinkPort {
            side: LinkSide::A,
            inner: Arc::clone(&inner),
        };
        let b = LinkPort {
            side: LinkSide::B,
            inner,
        };
        (link, a, b)
    }

    /// Attaches a trace capture recording every frame *delivered to* `side`.
    pub fn attach_trace(&self, side: LinkSide, trace: TraceCapture) {
        *self.inner.trace_for_receiver(side).lock() = Some(trace);
    }

    /// Returns the counters for the direction transmitting *from* `side`.
    pub fn stats_from(&self, side: LinkSide) -> LinkStats {
        let dir = self.inner.direction(side).lock();
        LinkStats {
            frames: dir.frames,
            bytes: dir.bytes,
            drops: dir.drops,
            duplicated: dir.duplicated,
            reordered: dir.reordered,
        }
    }
}

/// One end of a [`Link`].
#[derive(Debug)]
pub struct LinkPort {
    side: LinkSide,
    inner: Arc<LinkInner>,
}

impl LinkPort {
    /// Returns which side of the link this port is.
    pub fn side(&self) -> LinkSide {
        self.side
    }

    /// Submits a frame for transmission.  Returns `false` if the frame was
    /// dropped (random or bursty loss, or queue overflow) — like a real
    /// wire, the link never blocks the sender.  Accepts anything
    /// convertible to [`Bytes`], so zero-copy views and owned buffers both
    /// work.
    pub fn transmit(&self, frame: impl Into<Bytes>) -> bool {
        let frame: Bytes = frame.into();
        let inner = &*self.inner;
        let netem = inner.config.netem;

        // Loss decisions: uniform loss first, then the two-state burst
        // model.  The Gilbert–Elliott state advances once per offered
        // frame, so bad periods span a run of frames — a burst.
        if inner.config.loss_probability > 0.0
            && inner.rng.lock().gen::<f64>() < inner.config.loss_probability
        {
            inner.direction(self.side).lock().drops += 1;
            return false;
        }
        if let Some(ge) = netem.burst_loss {
            let mut rng = inner.rng.lock();
            let mut dir = inner.direction(self.side).lock();
            let flip = if dir.ge_bad {
                ge.p_exit_bad
            } else {
                ge.p_enter_bad
            };
            if rng.gen::<f64>() < flip {
                dir.ge_bad = !dir.ge_bad;
            }
            let loss = if dir.ge_bad {
                ge.loss_bad
            } else {
                ge.loss_good
            };
            if rng.gen::<f64>() < loss {
                dir.drops += 1;
                return false;
            }
        }

        let now = inner.clock.now();
        // Sample the per-frame impairments before taking the direction
        // lock; a clean wire skips the rng entirely so the benchmark hot
        // path pays no extra lock per frame.
        let (jitter, reordered, duplicate) = if netem.is_clean() {
            (Duration::ZERO, false, false)
        } else {
            let mut rng = inner.rng.lock();
            let jitter = if netem.jitter.is_zero() {
                Duration::ZERO
            } else {
                netem.jitter.mul_f64(rng.gen::<f64>())
            };
            let reordered =
                netem.reorder_probability > 0.0 && rng.gen::<f64>() < netem.reorder_probability;
            let duplicate =
                netem.duplicate_probability > 0.0 && rng.gen::<f64>() < netem.duplicate_probability;
            (jitter, reordered, duplicate)
        };

        let mut dir = inner.direction(self.side).lock();
        if dir.queue.len() >= inner.config.queue_limit {
            dir.drops += 1;
            return false;
        }
        let serialisation = if inner.config.bandwidth_bps.is_finite() {
            Duration::from_secs_f64(frame.len() as f64 * 8.0 / inner.config.bandwidth_bps)
        } else {
            Duration::ZERO
        };
        let start = dir.busy_until.max(now);
        let done = start + serialisation;
        dir.busy_until = done;
        let mut arrival = done + inner.config.propagation + jitter;
        if reordered {
            arrival += netem.reorder_delay;
            dir.reordered += 1;
        }
        dir.frames += 1;
        dir.bytes += frame.len() as u64;
        if duplicate && dir.queue.len() + 1 < inner.config.queue_limit {
            dir.duplicated += 1;
            dir.enqueue_sorted(arrival, frame.clone());
        }
        dir.enqueue_sorted(arrival, frame);
        true
    }

    /// Returns the next frame that has fully arrived at this port, if any.
    pub fn poll_receive(&self) -> Option<Bytes> {
        let inner = &*self.inner;
        let now = inner.clock.now();
        let mut dir = inner.direction(self.side.other()).lock();
        match dir.queue.front() {
            Some((arrival, _)) if *arrival <= now => {
                let (at, frame) = dir.queue.pop_front().expect("front checked above");
                drop(dir);
                if let Some(trace) = inner.trace_for_receiver(self.side).lock().as_ref() {
                    trace.record(at, frame.len());
                }
                Some(frame)
            }
            _ => None,
        }
    }

    /// Drains every frame that has arrived at this port.
    pub fn drain_receive(&self) -> Vec<Bytes> {
        let mut out = Vec::new();
        while let Some(frame) = self.poll_receive() {
            out.push(frame);
        }
        out
    }

    /// Returns the number of frames currently in flight towards this port.
    pub fn in_flight(&self) -> usize {
        self.inner.direction(self.side.other()).lock().queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_cross_an_unshaped_link_immediately() {
        let clock = SimClock::realtime();
        let (_link, a, b) = Link::new(LinkConfig::unshaped(), clock);
        assert!(a.transmit(vec![1, 2, 3]));
        assert_eq!(b.poll_receive().as_deref(), Some(&[1u8, 2, 3][..]));
        assert_eq!(b.poll_receive(), None);
        // And in the other direction.
        assert!(b.transmit(vec![9]));
        assert_eq!(a.poll_receive().as_deref(), Some(&[9u8][..]));
    }

    #[test]
    fn bandwidth_paces_delivery() {
        // 1 Mbit/s: a 12500-byte frame takes 100 ms to serialise, which keeps
        // the assertion robust against scheduling jitter on loaded hosts.
        let clock = SimClock::realtime();
        let config = LinkConfig {
            bandwidth_bps: 1e6,
            propagation: Duration::ZERO,
            loss_probability: 0.0,
            queue_limit: 64,
            netem: Netem::default(),
        };
        let (_link, a, b) = Link::new(config, clock.clone());
        for _ in 0..3 {
            assert!(a.transmit(vec![0u8; 12_500]));
        }
        // Immediately, at most one frame can have arrived.
        let early = b.drain_receive().len();
        assert!(
            early <= 1,
            "delivery was not paced: {early} frames arrived instantly"
        );
        // After 300+ ms everything has arrived.
        clock.sleep(Duration::from_millis(400));
        let total = early + b.drain_receive().len();
        assert_eq!(total, 3);
    }

    #[test]
    fn queue_limit_causes_tail_drop() {
        let clock = SimClock::realtime();
        let config = LinkConfig {
            bandwidth_bps: 1e3,
            propagation: Duration::ZERO,
            loss_probability: 0.0,
            queue_limit: 4,
            netem: Netem::default(),
        };
        let (link, a, _b) = Link::new(config, clock);
        let mut accepted = 0;
        for _ in 0..10 {
            if a.transmit(vec![0u8; 100]) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4);
        assert_eq!(link.stats_from(LinkSide::A).drops, 6);
    }

    #[test]
    fn lossy_link_drops_some_frames() {
        let clock = SimClock::realtime();
        let config = LinkConfig::unshaped().loss_probability(0.5);
        let (link, a, b) = Link::new(config, clock);
        for _ in 0..200 {
            a.transmit(vec![0u8; 10]);
        }
        let delivered = b.drain_receive().len();
        let drops = link.stats_from(LinkSide::A).drops as usize;
        assert_eq!(delivered + drops, 200);
        assert!(
            drops > 20,
            "expected a substantial number of drops, got {drops}"
        );
        assert!(
            delivered > 20,
            "expected a substantial number of deliveries, got {delivered}"
        );
    }

    #[test]
    fn stats_count_bytes_and_frames() {
        let clock = SimClock::realtime();
        let (link, a, b) = Link::new(LinkConfig::unshaped(), clock);
        a.transmit(vec![0u8; 100]);
        a.transmit(vec![0u8; 200]);
        b.drain_receive();
        let stats = link.stats_from(LinkSide::A);
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.bytes, 300);
        assert_eq!(stats.drops, 0);
        assert_eq!(stats.duplicated, 0);
        assert_eq!(stats.reordered, 0);
    }

    #[test]
    fn in_flight_counts_undelivered_frames() {
        let clock = SimClock::realtime();
        let config = LinkConfig {
            bandwidth_bps: 1e3,
            propagation: Duration::from_secs(10),
            loss_probability: 0.0,
            queue_limit: 64,
            netem: Netem::default(),
        };
        let (_link, a, b) = Link::new(config, clock);
        a.transmit(vec![0u8; 10]);
        assert_eq!(b.in_flight(), 1);
        assert_eq!(b.poll_receive(), None);
    }

    #[test]
    fn burst_loss_drops_frames_in_bursts() {
        let clock = SimClock::realtime();
        let config = LinkConfig::unshaped().netem(Netem {
            burst_loss: Some(GilbertElliott {
                p_enter_bad: 0.05,
                p_exit_bad: 0.2,
                loss_good: 0.0,
                loss_bad: 1.0,
            }),
            ..Netem::default()
        });
        let (link, a, b) = Link::new(config, clock);
        // Record the drop pattern over a long run.
        let mut pattern = Vec::new();
        for _ in 0..2_000 {
            pattern.push(!a.transmit(vec![0u8; 10]));
        }
        let drops = link.stats_from(LinkSide::A).drops as usize;
        let delivered = b.drain_receive().len();
        assert_eq!(drops + delivered, 2_000);
        assert!(drops > 50, "burst model produced almost no loss: {drops}");
        assert!(delivered > 1_000, "burst model lost too much: {delivered}");
        // Burstiness: the number of loss *runs* must be far below the number
        // of lost frames (uniform loss at the same rate would have roughly
        // one run per drop).
        let runs = pattern.windows(2).filter(|w| w[1] && !w[0]).count().max(1);
        assert!(
            drops as f64 / runs as f64 >= 2.0,
            "losses are not bursty: {drops} drops in {runs} runs"
        );
    }

    #[test]
    fn reordering_lets_later_frames_overtake() {
        let clock = SimClock::realtime();
        let config = LinkConfig::unshaped().netem(Netem {
            reorder_probability: 0.2,
            reorder_delay: Duration::from_millis(50),
            ..Netem::default()
        });
        let (link, a, b) = Link::new(config, clock.clone());
        for i in 0..100u8 {
            assert!(a.transmit(vec![i]));
        }
        clock.sleep(Duration::from_millis(100));
        let order: Vec<u8> = b.drain_receive().iter().map(|f| f[0]).collect();
        assert_eq!(order.len(), 100, "no frames may be lost by reordering");
        let sorted: Vec<u8> = (0..100).collect();
        assert_ne!(order, sorted, "expected at least one overtake");
        assert!(link.stats_from(LinkSide::A).reordered > 0);
        // Every frame still arrives exactly once.
        let mut check = order.clone();
        check.sort_unstable();
        assert_eq!(check, sorted);
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let clock = SimClock::realtime();
        let config = LinkConfig::unshaped().netem(Netem {
            duplicate_probability: 1.0,
            ..Netem::default()
        });
        let (link, a, b) = Link::new(config, clock);
        for i in 0..10u8 {
            assert!(a.transmit(vec![i]));
        }
        let delivered = b.drain_receive();
        assert_eq!(delivered.len(), 20);
        assert_eq!(link.stats_from(LinkSide::A).duplicated, 10);
        // Stats count offered frames once.
        assert_eq!(link.stats_from(LinkSide::A).frames, 10);
    }

    #[test]
    fn jitter_delays_but_never_loses_frames() {
        let clock = SimClock::realtime();
        let config = LinkConfig::unshaped().netem(Netem {
            jitter: Duration::from_millis(20),
            ..Netem::default()
        });
        let (_link, a, b) = Link::new(config, clock.clone());
        for i in 0..50u8 {
            assert!(a.transmit(vec![i]));
        }
        clock.sleep(Duration::from_millis(40));
        let mut delivered: Vec<u8> = b.drain_receive().iter().map(|f| f[0]).collect();
        delivered.sort_unstable();
        assert_eq!(delivered, (0..50).collect::<Vec<u8>>());
    }

    #[test]
    fn impaired_preset_is_degraded_and_clean_preset_is_clean() {
        assert!(LinkConfig::impaired().netem.burst_loss.is_some());
        assert!(!Netem::degraded().is_clean());
        assert!(Netem::default().is_clean());
        assert!(LinkConfig::gigabit().netem.is_clean());
    }
}
