//! Full-duplex links with bandwidth shaping, propagation delay and loss.
//!
//! A [`Link`] connects two ports — in the reproduction one side is a
//! simulated NIC owned by a driver server, the other side is the remote peer
//! host.  The link paces frames according to a configurable bandwidth (the
//! paper's network adapters are 1 Gb/s each), which is what gives the
//! bitrate-versus-time figures their ceiling.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use newt_kernel::clock::SimClock;

use crate::trace::TraceCapture;

/// Configuration of a [`Link`].
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Bandwidth per direction in bits per second (`f64::INFINITY` disables
    /// pacing).
    pub bandwidth_bps: f64,
    /// One-way propagation delay.
    pub propagation: Duration,
    /// Probability (0..1) that a frame is silently dropped.
    pub loss_probability: f64,
    /// Maximum number of frames queued per direction before tail drop.
    pub queue_limit: usize,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::gigabit()
    }
}

impl LinkConfig {
    /// A loss-free gigabit link with a 100 µs propagation delay, matching the
    /// Intel PRO/1000 adapters used in the paper's evaluation.
    pub fn gigabit() -> Self {
        LinkConfig {
            bandwidth_bps: 1e9,
            propagation: Duration::from_micros(100),
            loss_probability: 0.0,
            queue_limit: 2048,
        }
    }

    /// An unshaped link (infinite bandwidth, no delay), useful for unit tests
    /// and peak-throughput measurements where the wire should not be the
    /// bottleneck.
    pub fn unshaped() -> Self {
        LinkConfig {
            bandwidth_bps: f64::INFINITY,
            propagation: Duration::ZERO,
            loss_probability: 0.0,
            queue_limit: 1 << 16,
        }
    }

    /// Sets the bandwidth in bits per second.
    #[must_use]
    pub fn bandwidth_bps(mut self, bps: f64) -> Self {
        self.bandwidth_bps = bps;
        self
    }

    /// Sets the loss probability.
    #[must_use]
    pub fn loss_probability(mut self, p: f64) -> Self {
        self.loss_probability = p;
        self
    }
}

/// Which end of the link a port is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSide {
    /// The "A" end (conventionally the NIC under test).
    A,
    /// The "B" end (conventionally the remote peer).
    B,
}

impl LinkSide {
    fn other(self) -> LinkSide {
        match self {
            LinkSide::A => LinkSide::B,
            LinkSide::B => LinkSide::A,
        }
    }
}

#[derive(Debug, Default)]
struct Direction {
    /// Frames in flight, with the virtual time at which they arrive.
    queue: VecDeque<(Duration, Bytes)>,
    /// Virtual time at which the transmitter finishes serialising the last
    /// accepted frame.
    busy_until: Duration,
    frames: u64,
    bytes: u64,
    drops: u64,
}

/// Per-direction traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames accepted for transmission.
    pub frames: u64,
    /// Bytes accepted for transmission.
    pub bytes: u64,
    /// Frames dropped (loss or queue overflow).
    pub drops: u64,
}

#[derive(Debug)]
struct LinkInner {
    config: LinkConfig,
    clock: SimClock,
    a_to_b: Mutex<Direction>,
    b_to_a: Mutex<Direction>,
    rng: Mutex<StdRng>,
    trace_a: Mutex<Option<TraceCapture>>,
    trace_b: Mutex<Option<TraceCapture>>,
}

impl LinkInner {
    fn direction(&self, from: LinkSide) -> &Mutex<Direction> {
        match from {
            LinkSide::A => &self.a_to_b,
            LinkSide::B => &self.b_to_a,
        }
    }

    fn trace_for_receiver(&self, side: LinkSide) -> &Mutex<Option<TraceCapture>> {
        match side {
            LinkSide::A => &self.trace_a,
            LinkSide::B => &self.trace_b,
        }
    }
}

/// A point-to-point link created by [`Link::new`].
#[derive(Debug, Clone)]
pub struct Link {
    inner: Arc<LinkInner>,
}

impl Link {
    /// Creates a link and returns it together with its two ports.
    pub fn new(config: LinkConfig, clock: SimClock) -> (Link, LinkPort, LinkPort) {
        let inner = Arc::new(LinkInner {
            config,
            clock,
            a_to_b: Mutex::new(Direction::default()),
            b_to_a: Mutex::new(Direction::default()),
            rng: Mutex::new(StdRng::seed_from_u64(0x6e6574)),
            trace_a: Mutex::new(None),
            trace_b: Mutex::new(None),
        });
        let link = Link {
            inner: Arc::clone(&inner),
        };
        let a = LinkPort {
            side: LinkSide::A,
            inner: Arc::clone(&inner),
        };
        let b = LinkPort {
            side: LinkSide::B,
            inner,
        };
        (link, a, b)
    }

    /// Attaches a trace capture recording every frame *delivered to* `side`.
    pub fn attach_trace(&self, side: LinkSide, trace: TraceCapture) {
        *self.inner.trace_for_receiver(side).lock() = Some(trace);
    }

    /// Returns the counters for the direction transmitting *from* `side`.
    pub fn stats_from(&self, side: LinkSide) -> LinkStats {
        let dir = self.inner.direction(side).lock();
        LinkStats {
            frames: dir.frames,
            bytes: dir.bytes,
            drops: dir.drops,
        }
    }
}

/// One end of a [`Link`].
#[derive(Debug)]
pub struct LinkPort {
    side: LinkSide,
    inner: Arc<LinkInner>,
}

impl LinkPort {
    /// Returns which side of the link this port is.
    pub fn side(&self) -> LinkSide {
        self.side
    }

    /// Submits a frame for transmission.  Returns `false` if the frame was
    /// dropped (random loss or queue overflow) — like a real wire, the link
    /// never blocks the sender.  Accepts anything convertible to [`Bytes`],
    /// so zero-copy views and owned buffers both work.
    pub fn transmit(&self, frame: impl Into<Bytes>) -> bool {
        let frame: Bytes = frame.into();
        let inner = &*self.inner;
        if inner.config.loss_probability > 0.0
            && inner.rng.lock().gen::<f64>() < inner.config.loss_probability
        {
            inner.direction(self.side).lock().drops += 1;
            return false;
        }
        let now = inner.clock.now();
        let mut dir = inner.direction(self.side).lock();
        if dir.queue.len() >= inner.config.queue_limit {
            dir.drops += 1;
            return false;
        }
        let serialisation = if inner.config.bandwidth_bps.is_finite() {
            Duration::from_secs_f64(frame.len() as f64 * 8.0 / inner.config.bandwidth_bps)
        } else {
            Duration::ZERO
        };
        let start = dir.busy_until.max(now);
        let done = start + serialisation;
        dir.busy_until = done;
        let arrival = done + inner.config.propagation;
        dir.frames += 1;
        dir.bytes += frame.len() as u64;
        dir.queue.push_back((arrival, frame));
        true
    }

    /// Returns the next frame that has fully arrived at this port, if any.
    pub fn poll_receive(&self) -> Option<Bytes> {
        let inner = &*self.inner;
        let now = inner.clock.now();
        let mut dir = inner.direction(self.side.other()).lock();
        match dir.queue.front() {
            Some((arrival, _)) if *arrival <= now => {
                let (at, frame) = dir.queue.pop_front().expect("front checked above");
                drop(dir);
                if let Some(trace) = inner.trace_for_receiver(self.side).lock().as_ref() {
                    trace.record(at, frame.len());
                }
                Some(frame)
            }
            _ => None,
        }
    }

    /// Drains every frame that has arrived at this port.
    pub fn drain_receive(&self) -> Vec<Bytes> {
        let mut out = Vec::new();
        while let Some(frame) = self.poll_receive() {
            out.push(frame);
        }
        out
    }

    /// Returns the number of frames currently in flight towards this port.
    pub fn in_flight(&self) -> usize {
        self.inner.direction(self.side.other()).lock().queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_cross_an_unshaped_link_immediately() {
        let clock = SimClock::realtime();
        let (_link, a, b) = Link::new(LinkConfig::unshaped(), clock);
        assert!(a.transmit(vec![1, 2, 3]));
        assert_eq!(b.poll_receive().as_deref(), Some(&[1u8, 2, 3][..]));
        assert_eq!(b.poll_receive(), None);
        // And in the other direction.
        assert!(b.transmit(vec![9]));
        assert_eq!(a.poll_receive().as_deref(), Some(&[9u8][..]));
    }

    #[test]
    fn bandwidth_paces_delivery() {
        // 1 Mbit/s: a 12500-byte frame takes 100 ms to serialise, which keeps
        // the assertion robust against scheduling jitter on loaded hosts.
        let clock = SimClock::realtime();
        let config = LinkConfig {
            bandwidth_bps: 1e6,
            propagation: Duration::ZERO,
            loss_probability: 0.0,
            queue_limit: 64,
        };
        let (_link, a, b) = Link::new(config, clock.clone());
        for _ in 0..3 {
            assert!(a.transmit(vec![0u8; 12_500]));
        }
        // Immediately, at most one frame can have arrived.
        let early = b.drain_receive().len();
        assert!(
            early <= 1,
            "delivery was not paced: {early} frames arrived instantly"
        );
        // After 300+ ms everything has arrived.
        clock.sleep(Duration::from_millis(400));
        let total = early + b.drain_receive().len();
        assert_eq!(total, 3);
    }

    #[test]
    fn queue_limit_causes_tail_drop() {
        let clock = SimClock::realtime();
        let config = LinkConfig {
            bandwidth_bps: 1e3,
            propagation: Duration::ZERO,
            loss_probability: 0.0,
            queue_limit: 4,
        };
        let (link, a, _b) = Link::new(config, clock);
        let mut accepted = 0;
        for _ in 0..10 {
            if a.transmit(vec![0u8; 100]) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4);
        assert_eq!(link.stats_from(LinkSide::A).drops, 6);
    }

    #[test]
    fn lossy_link_drops_some_frames() {
        let clock = SimClock::realtime();
        let config = LinkConfig::unshaped().loss_probability(0.5);
        let (link, a, b) = Link::new(config, clock);
        for _ in 0..200 {
            a.transmit(vec![0u8; 10]);
        }
        let delivered = b.drain_receive().len();
        let drops = link.stats_from(LinkSide::A).drops as usize;
        assert_eq!(delivered + drops, 200);
        assert!(
            drops > 20,
            "expected a substantial number of drops, got {drops}"
        );
        assert!(
            delivered > 20,
            "expected a substantial number of deliveries, got {delivered}"
        );
    }

    #[test]
    fn stats_count_bytes_and_frames() {
        let clock = SimClock::realtime();
        let (link, a, b) = Link::new(LinkConfig::unshaped(), clock);
        a.transmit(vec![0u8; 100]);
        a.transmit(vec![0u8; 200]);
        b.drain_receive();
        let stats = link.stats_from(LinkSide::A);
        assert_eq!(stats.frames, 2);
        assert_eq!(stats.bytes, 300);
        assert_eq!(stats.drops, 0);
    }

    #[test]
    fn in_flight_counts_undelivered_frames() {
        let clock = SimClock::realtime();
        let config = LinkConfig {
            bandwidth_bps: 1e3,
            propagation: Duration::from_secs(10),
            loss_probability: 0.0,
            queue_limit: 64,
        };
        let (_link, a, b) = Link::new(config, clock);
        a.transmit(vec![0u8; 10]);
        assert_eq!(b.in_flight(), 1);
        assert_eq!(b.poll_receive(), None);
    }
}
