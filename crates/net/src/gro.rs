//! GRO-style receive coalescing.
//!
//! The multiserver stack pays one fabric message per frame on the way up
//! (driver→ip, ip→pf, ip→tcp, tcp→ip free) — at MTU granularity a bulk
//! receiver burns four messages per 1460 bytes, exactly the per-packet cost
//! the paper's batching and offloads exist to amortise.  Generic receive
//! offload inverts that: the driver merges consecutive in-order TCP
//! segments of the same connection arriving in one poll batch into a single
//! oversized segment, so the upper layers pay the per-message cost **once
//! per burst**.
//!
//! Rules (a conservative subset of Linux GRO):
//!
//! * only IPv4 TCP without IP options/fragmentation and with plain
//!   ACK/PSH flags participates; everything else (ARP, UDP, SYN/FIN/RST,
//!   IP fragments) flushes the pending merge and passes through untouched;
//! * data segments merge only when the next segment continues exactly at
//!   `seq + len` (any gap or overlap flushes — the receiver must see the
//!   anomaly and answer with its duplicate ACK);
//! * pure ACKs of one flow collapse to the **latest** one while the
//!   acknowledgement number strictly advances (cumulative-ACK semantics);
//!   a *duplicate* ACK never merges, so dup-ACK counting — and with it fast
//!   retransmit — is preserved frame for frame;
//! * the merged segment carries the first frame's headers, the last
//!   frame's acknowledgement number and window, the OR of the PSH flags,
//!   and freshly computed IPv4 and TCP checksums.

use bytes::Bytes;

use crate::wire::{
    internet_checksum, pseudo_header_checksum, EtherType, IpProtocol, ETHERNET_HEADER_LEN,
};
use std::net::Ipv4Addr;

/// Counters describing a [`GroEngine`]'s activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroStats {
    /// Frames absorbed into a merge (each one saved a full trip through
    /// the stack).
    pub coalesced: u64,
    /// Merged super-segments emitted.
    pub merged_out: u64,
    /// Frames passed through untouched.
    pub passthrough: u64,
}

/// The parsed header fields GRO decides with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TcpInfo {
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    window: u16,
    psh: bool,
    /// Offset of the TCP payload within the frame.
    payload_at: usize,
    payload_len: usize,
    /// Offset of the IPv4 header within the frame.
    ip_at: usize,
    /// Offset of the TCP header within the frame.
    tcp_at: usize,
}

/// Parses just enough of a frame to decide mergeability.  Returns `None`
/// for anything that must pass through untouched.
fn parse(frame: &[u8]) -> Option<TcpInfo> {
    let ip = ETHERNET_HEADER_LEN;
    if frame.len() < ip + 20 {
        return None;
    }
    if u16::from_be_bytes([frame[12], frame[13]]) != EtherType::Ipv4.as_u16() {
        return None;
    }
    let ihl = ((frame[ip] & 0x0f) as usize) * 4;
    // IP options and fragments are rare and fiddly: pass them through.
    if ihl != 20 || (frame[ip] >> 4) != 4 {
        return None;
    }
    let frag = u16::from_be_bytes([frame[ip + 6], frame[ip + 7]]);
    if frag & 0x3fff != 0 {
        return None; // MF set or nonzero offset
    }
    if frame[ip + 9] != IpProtocol::Tcp.as_u8() {
        return None;
    }
    let total_len = u16::from_be_bytes([frame[ip + 2], frame[ip + 3]]) as usize;
    if frame.len() < ip + total_len || total_len < ihl + 20 {
        return None;
    }
    let tcp = ip + ihl;
    let data_off = ((frame[tcp + 12] >> 4) as usize) * 4;
    if data_off < 20 || total_len < ihl + data_off {
        return None;
    }
    let flags = frame[tcp + 13];
    // Anything beyond ACK (0x10) and PSH (0x08) — SYN, FIN, RST, URG,
    // ECN — must be seen by TCP exactly as it arrived.
    if flags & !0x18 != 0 {
        return None;
    }
    Some(TcpInfo {
        src: Ipv4Addr::new(
            frame[ip + 12],
            frame[ip + 13],
            frame[ip + 14],
            frame[ip + 15],
        ),
        dst: Ipv4Addr::new(
            frame[ip + 16],
            frame[ip + 17],
            frame[ip + 18],
            frame[ip + 19],
        ),
        src_port: u16::from_be_bytes([frame[tcp], frame[tcp + 1]]),
        dst_port: u16::from_be_bytes([frame[tcp + 2], frame[tcp + 3]]),
        seq: u32::from_be_bytes([
            frame[tcp + 4],
            frame[tcp + 5],
            frame[tcp + 6],
            frame[tcp + 7],
        ]),
        ack: u32::from_be_bytes([
            frame[tcp + 8],
            frame[tcp + 9],
            frame[tcp + 10],
            frame[tcp + 11],
        ]),
        window: u16::from_be_bytes([frame[tcp + 14], frame[tcp + 15]]),
        psh: flags & 0x08 != 0,
        payload_at: tcp + data_off,
        payload_len: total_len - ihl - data_off,
        ip_at: ip,
        tcp_at: tcp,
    })
}

/// `true` when `a` lies strictly after `b` in wrapping sequence space.
fn seq_gt(a: u32, b: u32) -> bool {
    a != b && a.wrapping_sub(b) & 0x8000_0000 == 0
}

/// A merge in progress.  The common case — a lone frame that nothing ever
/// merges with — keeps the original [`Bytes`] untouched and flushes it
/// zero-copy; bytes are materialized into an owned buffer only when a
/// second frame actually joins.
#[derive(Debug)]
struct Pending {
    info: TcpInfo,
    /// The first frame exactly as it arrived.
    first: Bytes,
    /// Accumulated merge (first frame's headers + payloads so far),
    /// created on the first successful merge.
    merged: Option<Vec<u8>>,
    /// Total payload length accumulated (first frame's included).
    payload_len: usize,
    /// Latest acknowledgement number / window seen.
    ack: u32,
    window: u16,
    psh: bool,
    /// Number of frames merged in (1 = just the first frame).
    frames: usize,
}

/// Coalesces one RX queue's poll batch.  Feed every received frame through
/// [`GroEngine::push`] and call [`GroEngine::flush`] at the end of the
/// batch; both append the frames to deliver (in arrival order) to `out`.
#[derive(Debug)]
pub struct GroEngine {
    pending: Option<Pending>,
    /// Upper bound on a merged segment's payload (keeps the super-frame
    /// within whatever buffer the receive path can hold).
    max_payload: usize,
    stats: GroStats,
}

impl GroEngine {
    /// Creates an engine merging at most `max_payload` bytes of TCP payload
    /// into one super-segment.
    pub fn new(max_payload: usize) -> Self {
        GroEngine {
            pending: None,
            max_payload,
            stats: GroStats::default(),
        }
    }

    /// Returns the engine's counters.
    pub fn stats(&self) -> GroStats {
        self.stats
    }

    /// Offers one received frame; frames ready for delivery (flushed
    /// pendings, passthroughs) are appended to `out` in arrival order.
    pub fn push(&mut self, frame: Bytes, out: &mut Vec<Bytes>) {
        let Some(info) = parse(&frame) else {
            self.flush(out);
            self.stats.passthrough += 1;
            out.push(frame);
            return;
        };
        let max_payload = self.max_payload;
        if let Some(pending) = self.pending.as_mut() {
            if Self::mergeable(pending, &info, max_payload) {
                // First merge: materialize the owned buffer from the first
                // frame (trimmed to its payload end).
                let merged = pending.merged.get_or_insert_with(|| {
                    pending.first[..pending.info.payload_at + pending.info.payload_len].to_vec()
                });
                if info.payload_len > 0 {
                    merged.extend_from_slice(
                        &frame[info.payload_at..info.payload_at + info.payload_len],
                    );
                    pending.payload_len += info.payload_len;
                } else {
                    // A newer pure ACK simply supersedes the pending one.
                    pending.info.seq = info.seq;
                }
                pending.ack = info.ack;
                pending.window = info.window;
                pending.psh |= info.psh;
                pending.frames += 1;
                self.stats.coalesced += 1;
                return;
            }
            self.flush(out);
        }
        self.pending = Some(Pending {
            first: frame,
            merged: None,
            payload_len: info.payload_len,
            ack: info.ack,
            window: info.window,
            psh: info.psh,
            frames: 1,
            info,
        });
    }

    fn mergeable(pending: &Pending, next: &TcpInfo, max_payload: usize) -> bool {
        let p = &pending.info;
        if (p.src, p.dst, p.src_port, p.dst_port)
            != (next.src, next.dst, next.src_port, next.dst_port)
        {
            return false;
        }
        // The cumulative acknowledgement must never move backwards inside
        // a merge.
        if seq_gt(pending.ack, next.ack) {
            return false;
        }
        if pending.payload_len > 0 && next.payload_len > 0 {
            // In-order continuation only; any gap, overlap or oversize
            // flushes so TCP sees the anomaly.
            next.seq == p.seq.wrapping_add(pending.payload_len as u32)
                && pending.payload_len + next.payload_len <= max_payload
        } else if pending.payload_len == 0 && next.payload_len == 0 {
            // Pure ACKs collapse only while the ACK *strictly* advances:
            // an equal ACK number is a duplicate ACK and must be delivered
            // frame for frame (fast retransmit counts them).
            seq_gt(next.ack, pending.ack) && next.seq == p.seq
        } else {
            false
        }
    }

    /// Emits the pending merge, patching lengths, ACK, window, flags and
    /// checksums when more than one frame was absorbed.
    pub fn flush(&mut self, out: &mut Vec<Bytes>) {
        let Some(pending) = self.pending.take() else {
            return;
        };
        if pending.frames == 1 {
            // Nothing merged: the original frame passes through zero-copy.
            self.stats.passthrough += 1;
            out.push(pending.first);
            return;
        }
        let info = pending.info;
        let ip = info.ip_at;
        let tcp = info.tcp_at;
        let mut merged = pending.merged.expect("frames > 1 implies a merge");
        let bytes = &mut merged;
        // IPv4 total length + header checksum.
        let total_len = (bytes.len() - ip) as u16;
        bytes[ip + 2..ip + 4].copy_from_slice(&total_len.to_be_bytes());
        bytes[ip + 10] = 0;
        bytes[ip + 11] = 0;
        let ip_csum = internet_checksum(&bytes[ip..tcp]);
        bytes[ip + 10..ip + 12].copy_from_slice(&ip_csum.to_be_bytes());
        // TCP ACK, window, PSH, checksum.
        bytes[tcp + 8..tcp + 12].copy_from_slice(&pending.ack.to_be_bytes());
        bytes[tcp + 14..tcp + 16].copy_from_slice(&pending.window.to_be_bytes());
        if pending.psh {
            bytes[tcp + 13] |= 0x08;
        }
        bytes[tcp + 16] = 0;
        bytes[tcp + 17] = 0;
        let tcp_csum =
            pseudo_header_checksum(info.src, info.dst, IpProtocol::Tcp.as_u8(), &bytes[tcp..]);
        bytes[tcp + 16..tcp + 18].copy_from_slice(&tcp_csum.to_be_bytes());
        self.stats.merged_out += 1;
        out.push(Bytes::from(merged));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{EthernetFrame, Ipv4Packet, MacAddr, TcpFlags, TcpSegment};

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

    fn tcp_frame(src_port: u16, seq: u32, ack: u32, payload: Vec<u8>, psh: bool) -> Bytes {
        let flags = if psh {
            TcpFlags::PSH_ACK
        } else {
            TcpFlags::ACK
        };
        let mut seg = TcpSegment::control(src_port, 80, seq, ack, flags);
        seg.window = 65_000;
        seg.payload = payload;
        let pkt = Ipv4Packet::new(SRC, DST, IpProtocol::Tcp, seg.build(SRC, DST));
        Bytes::from(
            EthernetFrame::new(
                MacAddr::from_index(0),
                MacAddr::from_index(200),
                EtherType::Ipv4,
                pkt.build(),
            )
            .build(),
        )
    }

    fn reparse(frame: &[u8]) -> (Ipv4Packet, TcpSegment) {
        let eth = EthernetFrame::parse(frame).expect("ethernet");
        let pkt = Ipv4Packet::parse(&eth.payload).expect("ipv4");
        let seg = TcpSegment::parse(&pkt.payload, pkt.src, pkt.dst).expect("tcp");
        (pkt, seg)
    }

    fn run(engine: &mut GroEngine, frames: Vec<Bytes>) -> Vec<Bytes> {
        let mut out = Vec::new();
        for frame in frames {
            engine.push(frame, &mut out);
        }
        engine.flush(&mut out);
        out
    }

    #[test]
    fn consecutive_in_order_data_merges_into_one_segment() {
        let mut engine = GroEngine::new(64 * 1024);
        let out = run(
            &mut engine,
            vec![
                tcp_frame(5000, 1000, 77, vec![1u8; 100], false),
                tcp_frame(5000, 1100, 77, vec![2u8; 200], false),
                tcp_frame(5000, 1300, 78, vec![3u8; 300], true),
            ],
        );
        assert_eq!(out.len(), 1);
        let (_, seg) = reparse(&out[0]);
        assert_eq!(seg.seq, 1000);
        assert_eq!(seg.payload.len(), 600);
        assert_eq!(&seg.payload[..100], &[1u8; 100][..]);
        assert_eq!(&seg.payload[100..300], &[2u8; 200][..]);
        assert_eq!(seg.ack, 78, "merged segment carries the last ACK");
        assert!(seg.flags.psh, "PSH is ORed over the burst");
        assert_eq!(engine.stats().coalesced, 2);
        assert_eq!(engine.stats().merged_out, 1);
    }

    #[test]
    fn a_gap_flushes_and_is_delivered_separately() {
        let mut engine = GroEngine::new(64 * 1024);
        let out = run(
            &mut engine,
            vec![
                tcp_frame(5000, 1000, 7, vec![1u8; 100], false),
                // 1100..1200 lost: this one must NOT merge.
                tcp_frame(5000, 1200, 7, vec![2u8; 100], false),
            ],
        );
        assert_eq!(out.len(), 2, "out-of-order data must reach TCP as-is");
        let (_, first) = reparse(&out[0]);
        let (_, second) = reparse(&out[1]);
        assert_eq!(first.seq, 1000);
        assert_eq!(second.seq, 1200);
        assert_eq!(engine.stats().coalesced, 0);
    }

    #[test]
    fn pure_acks_collapse_to_the_latest_but_duplicates_pass_through() {
        let mut engine = GroEngine::new(64 * 1024);
        // Advancing ACKs collapse...
        let out = run(
            &mut engine,
            vec![
                tcp_frame(5000, 900, 1000, Vec::new(), false),
                tcp_frame(5000, 900, 2500, Vec::new(), false),
                tcp_frame(5000, 900, 4000, Vec::new(), false),
            ],
        );
        assert_eq!(out.len(), 1);
        let (_, seg) = reparse(&out[0]);
        assert_eq!(seg.ack, 4000, "latest cumulative ACK wins");
        assert_eq!(engine.stats().coalesced, 2);

        // ...but duplicate ACKs are sacred (fast retransmit counts them).
        let mut engine = GroEngine::new(64 * 1024);
        let out = run(
            &mut engine,
            vec![
                tcp_frame(5000, 900, 1000, Vec::new(), false),
                tcp_frame(5000, 900, 1000, Vec::new(), false),
                tcp_frame(5000, 900, 1000, Vec::new(), false),
            ],
        );
        assert_eq!(out.len(), 3, "dup ACKs must be delivered frame for frame");
        assert_eq!(engine.stats().coalesced, 0);
    }

    #[test]
    fn different_flows_and_non_tcp_do_not_merge() {
        let mut engine = GroEngine::new(64 * 1024);
        let arp = Bytes::from(vec![0u8; 42]); // not IPv4/TCP: passthrough
        let out = run(
            &mut engine,
            vec![
                tcp_frame(5000, 1000, 7, vec![1u8; 100], false),
                tcp_frame(6000, 1100, 7, vec![2u8; 100], false), // other flow
                arp,
            ],
        );
        assert_eq!(out.len(), 3);
        assert_eq!(engine.stats().coalesced, 0);
    }

    #[test]
    fn control_flags_flush_and_pass_through() {
        let mut engine = GroEngine::new(64 * 1024);
        let mut syn = TcpSegment::control(5000, 80, 1, 0, TcpFlags::SYN);
        syn.mss = Some(1460);
        let pkt = Ipv4Packet::new(SRC, DST, IpProtocol::Tcp, syn.build(SRC, DST));
        let syn_frame = Bytes::from(
            EthernetFrame::new(
                MacAddr::from_index(0),
                MacAddr::from_index(200),
                EtherType::Ipv4,
                pkt.build(),
            )
            .build(),
        );
        let out = run(
            &mut engine,
            vec![
                tcp_frame(5000, 1000, 7, vec![1u8; 50], false),
                syn_frame.clone(),
                tcp_frame(5000, 1050, 7, vec![2u8; 50], false),
            ],
        );
        assert_eq!(out.len(), 3);
        assert_eq!(out[1], syn_frame, "control frames are byte-identical");
    }

    #[test]
    fn merge_respects_the_payload_cap() {
        let mut engine = GroEngine::new(150);
        let out = run(
            &mut engine,
            vec![
                tcp_frame(5000, 1000, 7, vec![1u8; 100], false),
                tcp_frame(5000, 1100, 7, vec![2u8; 100], false), // would exceed 150
            ],
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn merged_checksums_verify() {
        let mut engine = GroEngine::new(64 * 1024);
        let out = run(
            &mut engine,
            vec![
                tcp_frame(5000, 1, 7, vec![9u8; 1000], false),
                tcp_frame(5000, 1001, 7, vec![8u8; 1000], false),
            ],
        );
        assert_eq!(out.len(), 1);
        // reparse() verifies both the IPv4 and the TCP checksum.
        let (pkt, seg) = reparse(&out[0]);
        assert_eq!(pkt.wire_len(), 20 + 20 + 2000);
        assert_eq!(seg.payload.len(), 2000);
    }
}
