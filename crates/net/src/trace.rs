//! Frame capture and bitrate extraction — the tcpdump/Wireshark stand-in.
//!
//! The paper's Figures 4 and 5 are bitrate-versus-time plots of a single TCP
//! connection captured with tcpdump while faults are injected into the IP
//! server and the packet filter.  [`TraceCapture`] records the (virtual)
//! arrival time and length of every frame delivered to a link port;
//! [`TraceCapture::bitrate_series`] buckets them into a time series
//! comparable to the paper's plots.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// One captured frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time at which the frame arrived.
    pub at: Duration,
    /// Frame length in bytes.
    pub len: usize,
}

/// A point of a bitrate time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BitratePoint {
    /// Start of the bucket, in seconds since the start of the capture.
    pub time_s: f64,
    /// Average bitrate over the bucket, in megabits per second.
    pub mbps: f64,
}

/// A shareable frame capture.
///
/// Cloning is cheap; all clones append to the same capture.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use newt_net::trace::TraceCapture;
///
/// let trace = TraceCapture::new();
/// trace.record(Duration::from_millis(100), 1500);
/// trace.record(Duration::from_millis(150), 1500);
/// trace.record(Duration::from_millis(1100), 1500);
/// let series = trace.bitrate_series(Duration::from_secs(1));
/// assert_eq!(series.len(), 2);
/// assert!(series[0].mbps > series[1].mbps);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceCapture {
    records: Arc<Mutex<Vec<TraceRecord>>>,
}

impl TraceCapture {
    /// Creates an empty capture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a frame of `len` bytes arriving at virtual time `at`.
    pub fn record(&self, at: Duration, len: usize) {
        self.records.lock().push(TraceRecord { at, len });
    }

    /// Returns the number of captured frames.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Returns `true` if nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Returns the total number of captured bytes.
    pub fn total_bytes(&self) -> u64 {
        self.records.lock().iter().map(|r| r.len as u64).sum()
    }

    /// Returns a copy of the raw records, sorted by arrival time.
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut records = self.records.lock().clone();
        records.sort_by_key(|r| r.at);
        records
    }

    /// Buckets the capture into consecutive windows of `bucket` and returns
    /// the average bitrate per window, from time zero to the last captured
    /// frame.  Empty windows are reported as 0 Mbps — the "gap" visible in
    /// the paper's IP-crash figure.
    pub fn bitrate_series(&self, bucket: Duration) -> Vec<BitratePoint> {
        assert!(!bucket.is_zero(), "bucket duration must be non-zero");
        let records = self.records();
        let Some(last) = records.last() else {
            return Vec::new();
        };
        let bucket_s = bucket.as_secs_f64();
        let buckets = (last.at.as_secs_f64() / bucket_s).floor() as usize + 1;
        let mut bytes_per_bucket = vec![0u64; buckets];
        for record in &records {
            let idx = (record.at.as_secs_f64() / bucket_s).floor() as usize;
            bytes_per_bucket[idx] += record.len as u64;
        }
        bytes_per_bucket
            .iter()
            .enumerate()
            .map(|(i, &bytes)| BitratePoint {
                time_s: i as f64 * bucket_s,
                mbps: bytes as f64 * 8.0 / bucket_s / 1e6,
            })
            .collect()
    }

    /// Returns the average bitrate in Mbps over the span `from..to` (virtual
    /// seconds), or 0 if the span is empty.
    pub fn average_mbps(&self, from: Duration, to: Duration) -> f64 {
        if to <= from {
            return 0.0;
        }
        let bytes: u64 = self
            .records
            .lock()
            .iter()
            .filter(|r| r.at >= from && r.at < to)
            .map(|r| r.len as u64)
            .sum();
        bytes as f64 * 8.0 / (to - from).as_secs_f64() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_capture_has_no_series() {
        let trace = TraceCapture::new();
        assert!(trace.is_empty());
        assert!(trace.bitrate_series(Duration::from_secs(1)).is_empty());
        assert_eq!(trace.total_bytes(), 0);
        assert_eq!(
            trace.average_mbps(Duration::ZERO, Duration::from_secs(1)),
            0.0
        );
    }

    #[test]
    fn bitrate_buckets_are_computed_correctly() {
        let trace = TraceCapture::new();
        // 1 Mbit in the first second: 125_000 bytes.
        for i in 0..100 {
            trace.record(Duration::from_millis(i * 10), 1250);
        }
        // Nothing in the second second, a little in the third.
        trace.record(Duration::from_millis(2500), 1250);
        let series = trace.bitrate_series(Duration::from_secs(1));
        assert_eq!(series.len(), 3);
        assert!((series[0].mbps - 1.0).abs() < 1e-9);
        assert_eq!(series[1].mbps, 0.0);
        assert!(series[2].mbps > 0.0);
        assert_eq!(series[0].time_s, 0.0);
        assert_eq!(series[2].time_s, 2.0);
    }

    #[test]
    fn average_over_span() {
        let trace = TraceCapture::new();
        trace.record(Duration::from_millis(100), 125_000);
        trace.record(Duration::from_millis(1500), 125_000);
        // Only the first record falls into [0, 1s): 1 Mbit over 1 s.
        assert!((trace.average_mbps(Duration::ZERO, Duration::from_secs(1)) - 1.0).abs() < 1e-9);
        // Both fall into [0, 2s): 2 Mbit over 2 s = 1 Mbps.
        assert!((trace.average_mbps(Duration::ZERO, Duration::from_secs(2)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn records_are_sorted_by_time() {
        let trace = TraceCapture::new();
        trace.record(Duration::from_secs(2), 10);
        trace.record(Duration::from_secs(1), 20);
        let records = trace.records();
        assert_eq!(records[0].len, 20);
        assert_eq!(records[1].len, 10);
        assert_eq!(trace.total_bytes(), 30);
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn clones_share_the_capture() {
        let trace = TraceCapture::new();
        let clone = trace.clone();
        clone.record(Duration::from_secs(1), 42);
        assert_eq!(trace.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bucket_panics() {
        let trace = TraceCapture::new();
        trace.record(Duration::from_secs(1), 1);
        trace.bitrate_series(Duration::ZERO);
    }
}
