//! The simulated gigabit network adapter (Intel PRO/1000 style).
//!
//! The paper heavily modified the e1000 driver and relies on two hardware
//! features to reach multigigabit rates: **checksum offloading** and **TCP
//! segmentation offloading** (TSO — the NIC breaks one oversized TCP segment
//! into MTU-sized frames), both of which dramatically reduce the number of
//! per-packet traversals of the stack.  This module models such an adapter:
//!
//! * bounded RX/TX descriptor rings (frames are dropped when the driver does
//!   not keep up — the symptom a misbehaving driver shows);
//! * TSO: an oversized frame submitted for transmission is segmented in
//!   "hardware", adjusting IP/TCP headers, lengths and checksums;
//! * checksum offload: IP/TCP/UDP checksums of outgoing frames are filled in
//!   by the NIC so the stack never touches payload bytes;
//! * a link-reset quirk: the adapters "do not have a knob to invalidate
//!   \[their\] shadow copies of the RX and TX descriptors", so recovering from
//!   an IP-server crash requires a full device reset and the link takes a
//!   while to come up again — the gap visible in Figure 4.

use std::collections::VecDeque;
use std::net::Ipv4Addr;
use std::time::Duration;

use bytes::{Bytes, BytesMut};

use newt_kernel::clock::SimClock;

use crate::link::LinkPort;
use crate::rss::{RssKey, RssSteering, MAX_QUEUES};
use crate::wire::{
    internet_checksum, pseudo_header_checksum, EtherType, IpProtocol, MacAddr, ETHERNET_HEADER_LEN,
    IPV4_HEADER_LEN, MTU,
};

/// Errors returned by the NIC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NicError {
    /// The TX descriptor ring is full.
    TxRingFull,
    /// The link is down (the device is resetting).
    LinkDown,
    /// The frame exceeds the MTU and TSO is disabled (or it is not TCP).
    Oversized {
        /// Length of the rejected frame.
        len: usize,
    },
    /// The frame is too short or malformed to transmit.
    Malformed,
}

impl std::fmt::Display for NicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NicError::TxRingFull => write!(f, "transmit descriptor ring is full"),
            NicError::LinkDown => write!(f, "link is down"),
            NicError::Oversized { len } => write!(
                f,
                "frame of {len} bytes exceeds the mtu and cannot be segmented"
            ),
            NicError::Malformed => write!(f, "frame is malformed"),
        }
    }
}

impl std::error::Error for NicError {}

/// Configuration of a [`Nic`].
#[derive(Debug, Clone)]
pub struct NicConfig {
    /// MAC address of the adapter.
    pub mac: MacAddr,
    /// Whether TCP segmentation offload is enabled.
    pub tso: bool,
    /// Whether checksum offload is enabled.
    pub checksum_offload: bool,
    /// RX descriptor ring size (frames, per queue).
    pub rx_ring: usize,
    /// TX descriptor ring size (frames, per queue).
    pub tx_ring: usize,
    /// How long the link stays down after a device reset (virtual time).
    pub link_reset_latency: Duration,
    /// Number of RX/TX queue pairs (receive-side scaling), 1..=8.
    pub queues: usize,
    /// Toeplitz key used by the RSS hash.
    pub rss_key: RssKey,
}

impl NicConfig {
    /// Creates the default configuration for adapter `index`: offloads
    /// enabled, 256-entry rings, and a 1.8-second link-reset latency (the
    /// link-up delay that produces the gap in Figure 4).
    pub fn new(index: u8) -> Self {
        NicConfig {
            mac: MacAddr::from_index(index),
            tso: true,
            checksum_offload: true,
            rx_ring: 256,
            tx_ring: 256,
            link_reset_latency: Duration::from_millis(1800),
            queues: 1,
            rss_key: RssKey::default(),
        }
    }

    /// Disables TCP segmentation offload.
    #[must_use]
    pub fn without_tso(mut self) -> Self {
        self.tso = false;
        self
    }

    /// Sets the number of RSS queue pairs (clamped to 1..=8).
    #[must_use]
    pub fn with_queues(mut self, queues: usize) -> Self {
        self.queues = queues.clamp(1, MAX_QUEUES);
        self
    }

    /// Disables checksum offload.
    #[must_use]
    pub fn without_checksum_offload(mut self) -> Self {
        self.checksum_offload = false;
        self
    }
}

/// Traffic counters of a [`Nic`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Frames handed to the link.
    pub tx_frames: u64,
    /// Bytes handed to the link.
    pub tx_bytes: u64,
    /// Frames received from the link.
    pub rx_frames: u64,
    /// Bytes received from the link.
    pub rx_bytes: u64,
    /// Frames produced by TSO segmentation (in excess of the submitted
    /// oversized frames).
    pub tso_segments: u64,
    /// Total wire frames the TSO engine cut oversized submissions into
    /// (`tso_frames / (tso_segments + submissions)` is the amortisation
    /// factor the workload bench reports).
    pub tso_frames: u64,
    /// Frames dropped because the RX ring was full.
    pub rx_drops: u64,
    /// Device resets performed.
    pub resets: u64,
    /// Per-queue resets performed (a crashed stack shard being reincarnated
    /// without taking the link down).
    pub queue_resets: u64,
    /// Frames steered into each RX queue by RSS/flow-director.
    pub rx_steered: [u64; MAX_QUEUES],
    /// Inbound frames whose queue came from a flow-director exact match
    /// (rather than the Toeplitz fallback).
    pub fdir_hits: u64,
}

/// The simulated adapter.
#[derive(Debug)]
pub struct Nic {
    config: NicConfig,
    clock: SimClock,
    port: LinkPort,
    rx_rings: Vec<VecDeque<Bytes>>,
    tx_rings: Vec<VecDeque<Bytes>>,
    steering: RssSteering,
    link_up_at: Duration,
    stats: NicStats,
}

impl Nic {
    /// Creates an adapter attached to one end of a link.
    pub fn new(mut config: NicConfig, clock: SimClock, port: LinkPort) -> Self {
        config.queues = config.queues.clamp(1, MAX_QUEUES);
        let steering = RssSteering::new(config.rss_key, config.queues);
        let queues = config.queues;
        Nic {
            config,
            clock,
            port,
            rx_rings: (0..queues).map(|_| VecDeque::new()).collect(),
            tx_rings: (0..queues).map(|_| VecDeque::new()).collect(),
            steering,
            link_up_at: Duration::ZERO,
            stats: NicStats::default(),
        }
    }

    /// Returns the adapter's MAC address.
    pub fn mac(&self) -> MacAddr {
        self.config.mac
    }

    /// Returns `true` while the link is up (not resetting).
    pub fn is_link_up(&self) -> bool {
        self.clock.now() >= self.link_up_at
    }

    /// Returns the adapter configuration.
    pub fn config(&self) -> &NicConfig {
        &self.config
    }

    /// Returns the number of RX/TX queue pairs.
    pub fn queues(&self) -> usize {
        self.config.queues
    }

    /// Submits an Ethernet frame for transmission on queue 0 (single-queue
    /// compatibility wrapper around [`Nic::transmit_on`]).
    ///
    /// # Errors
    ///
    /// Returns [`NicError::LinkDown`], [`NicError::TxRingFull`],
    /// [`NicError::Oversized`] or [`NicError::Malformed`].
    pub fn transmit(&mut self, frame: impl Into<Bytes>) -> Result<(), NicError> {
        self.transmit_on(0, frame)
    }

    /// Submits an Ethernet frame for transmission on a specific TX queue.
    ///
    /// Oversized TCP frames are segmented when TSO is enabled; checksums are
    /// filled in when checksum offload is enabled.  Accepts anything
    /// convertible to [`Bytes`]; an in-MTU frame that needs no checksum
    /// patching rides the descriptor ring without being copied, and a
    /// uniquely owned buffer is patched in place.
    ///
    /// On multi-queue adapters the transmit is also *sampled* (flow
    /// director / ATR): inbound frames of the reverse flow are steered to
    /// the same queue index from then on, pinning a connection to the stack
    /// shard that owns it.
    ///
    /// # Errors
    ///
    /// Returns [`NicError::LinkDown`], [`NicError::TxRingFull`],
    /// [`NicError::Oversized`] or [`NicError::Malformed`].
    pub fn transmit_on(&mut self, queue: usize, frame: impl Into<Bytes>) -> Result<(), NicError> {
        let frame: Bytes = frame.into();
        let queue = queue.min(self.config.queues - 1);
        if !self.is_link_up() {
            return Err(NicError::LinkDown);
        }
        if frame.len() < ETHERNET_HEADER_LEN {
            return Err(NicError::Malformed);
        }
        let max_frame = ETHERNET_HEADER_LEN + MTU;
        if frame.len() <= max_frame {
            if self.tx_rings[queue].len() >= self.config.tx_ring {
                return Err(NicError::TxRingFull);
            }
            self.steering.note_transmit(&frame, queue);
            let out = if self.config.checksum_offload {
                patch_checksums(frame)
            } else {
                frame
            };
            self.tx_rings[queue].push_back(out);
        } else if self.config.tso {
            let segments = segment_tso(&frame).ok_or(NicError::Oversized { len: frame.len() })?;
            if self.tx_rings[queue].len() + segments.len() > self.config.tx_ring {
                return Err(NicError::TxRingFull);
            }
            self.stats.tso_segments += segments.len() as u64 - 1;
            self.stats.tso_frames += segments.len() as u64;
            self.steering.note_transmit(&frame, queue);
            // TSO segments are freshly built, so the checksum offload
            // (always on for TSO hardware) already ran in `segment_tso`.
            self.tx_rings[queue].extend(segments.into_iter().map(Bytes::from));
        } else {
            return Err(NicError::Oversized { len: frame.len() });
        }
        Ok(())
    }

    /// Submits a frame described by a scatter list of [`Bytes`] parts —
    /// the shape a zero-copy TX chain arrives in from the driver (header
    /// chunk + payload view).  A single-part list rides [`Nic::transmit_on`]
    /// untouched; multi-part lists are assembled here, modelling the
    /// adapter's gather-DMA engine reading the descriptors — the stack
    /// itself never flattens them.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`Nic::transmit_on`]; an empty parts
    /// list is [`NicError::Malformed`].
    pub fn transmit_scattered(&mut self, queue: usize, parts: &[Bytes]) -> Result<(), NicError> {
        match parts {
            [] => Err(NicError::Malformed),
            [single] => self.transmit_on(queue, single.clone()),
            many => {
                let mut frame = BytesMut::with_capacity(many.iter().map(Bytes::len).sum());
                for part in many {
                    frame.extend_from_slice(part);
                }
                self.transmit_on(queue, frame.freeze())
            }
        }
    }

    /// Services the descriptor rings: pushes queued TX frames onto the link
    /// and steers arrived frames into the RX rings (RSS hash or
    /// flow-director match).  Drivers call this from their event loop (it
    /// stands in for the DMA engine making progress).
    pub fn poll(&mut self) {
        if !self.is_link_up() {
            return;
        }
        for ring in self.tx_rings.iter_mut() {
            while let Some(frame) = ring.pop_front() {
                self.stats.tx_frames += 1;
                self.stats.tx_bytes += frame.len() as u64;
                self.port.transmit(frame);
            }
        }
        while let Some(frame) = self.port.poll_receive() {
            let (queue, fdir_hit) = self.steering.steer_frame(&frame);
            if self.rx_rings[queue].len() >= self.config.rx_ring {
                self.stats.rx_drops += 1;
                continue;
            }
            self.stats.rx_frames += 1;
            self.stats.rx_bytes += frame.len() as u64;
            self.stats.rx_steered[queue] += 1;
            if fdir_hit {
                self.stats.fdir_hits += 1;
            }
            self.rx_rings[queue].push_back(frame);
        }
    }

    /// Pops the next received frame from the lowest-numbered non-empty RX
    /// ring (single-queue compatibility wrapper; multi-queue drivers use
    /// [`Nic::receive_on`]).
    pub fn receive(&mut self) -> Option<Bytes> {
        self.rx_rings.iter_mut().find_map(|ring| ring.pop_front())
    }

    /// Pops the next received frame from a specific RX queue (a zero-copy
    /// handle to the buffer the link delivered).
    pub fn receive_on(&mut self, queue: usize) -> Option<Bytes> {
        self.rx_rings.get_mut(queue)?.pop_front()
    }

    /// Returns the number of frames waiting in an RX queue.
    pub fn rx_queue_depth(&self, queue: usize) -> usize {
        self.rx_rings.get(queue).map_or(0, VecDeque::len)
    }

    /// Returns the number of free TX descriptors on queue 0.
    pub fn tx_ring_free(&self) -> usize {
        self.config.tx_ring - self.tx_rings[0].len()
    }

    /// Resets the device: every ring is cleared (the shadow descriptors are
    /// lost), the flow-director table is forgotten, and the link stays down
    /// for the configured reset latency.
    pub fn reset(&mut self) {
        for ring in self.rx_rings.iter_mut().chain(self.tx_rings.iter_mut()) {
            ring.clear();
        }
        self.steering.forget_all();
        self.link_up_at = self.clock.now() + self.config.link_reset_latency;
        self.stats.resets += 1;
    }

    /// Resets a single queue pair: its rings are cleared and the
    /// flow-director entries pinned to it are dropped, but the link stays
    /// up and the other queues keep flowing.  This is how a crashed stack
    /// shard is reincarnated without disturbing its siblings — unlike a
    /// crash of a singleton IP server, which still requires [`Nic::reset`]
    /// and the multi-second link outage of Figure 4.
    pub fn reset_queue(&mut self, queue: usize) {
        if queue >= self.config.queues {
            return;
        }
        self.rx_rings[queue].clear();
        self.tx_rings[queue].clear();
        self.steering.forget_queue(queue);
        self.stats.queue_resets += 1;
    }

    /// Returns the traffic counters.
    pub fn stats(&self) -> NicStats {
        self.stats
    }
}

/// Applies checksum offload to a frame, mutating in place when the buffer
/// is uniquely owned (the common case for gathered multi-chunk frames) and
/// copying only when the buffer is shared, e.g. a zero-copy view of a pool
/// chunk that other holders may still read.
fn patch_checksums(frame: Bytes) -> Bytes {
    match frame.try_into_mut() {
        Ok(mut unique) => {
            offload_checksums(&mut unique);
            unique.freeze()
        }
        Err(shared) => {
            let mut copy = shared.to_vec();
            offload_checksums(&mut copy);
            Bytes::from(copy)
        }
    }
}

/// Fills in the IPv4 header checksum and the TCP/UDP checksum of an outgoing
/// frame in place (checksum offload).
fn offload_checksums(frame: &mut [u8]) {
    if frame.len() < ETHERNET_HEADER_LEN + IPV4_HEADER_LEN {
        return;
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != EtherType::Ipv4.as_u16() {
        return;
    }
    let ip = ETHERNET_HEADER_LEN;
    let ihl = ((frame[ip] & 0x0f) as usize) * 4;
    if frame.len() < ip + ihl {
        return;
    }
    // IPv4 header checksum.
    frame[ip + 10] = 0;
    frame[ip + 11] = 0;
    let ip_csum = internet_checksum(&frame[ip..ip + ihl]);
    frame[ip + 10..ip + 12].copy_from_slice(&ip_csum.to_be_bytes());

    let src = Ipv4Addr::new(
        frame[ip + 12],
        frame[ip + 13],
        frame[ip + 14],
        frame[ip + 15],
    );
    let dst = Ipv4Addr::new(
        frame[ip + 16],
        frame[ip + 17],
        frame[ip + 18],
        frame[ip + 19],
    );
    let protocol = frame[ip + 9];
    let total_len = u16::from_be_bytes([frame[ip + 2], frame[ip + 3]]) as usize;
    if frame.len() < ip + total_len {
        return;
    }
    let transport = ip + ihl;
    let transport_len = total_len - ihl;
    let csum_offset = match protocol {
        p if p == IpProtocol::Tcp.as_u8() => 16,
        p if p == IpProtocol::Udp.as_u8() => 6,
        _ => return,
    };
    if transport_len < csum_offset + 2 {
        return;
    }
    frame[transport + csum_offset] = 0;
    frame[transport + csum_offset + 1] = 0;
    let csum = pseudo_header_checksum(
        src,
        dst,
        protocol,
        &frame[transport..transport + transport_len],
    );
    frame[transport + csum_offset..transport + csum_offset + 2]
        .copy_from_slice(&csum.to_be_bytes());
}

/// Segments an oversized Ethernet+IPv4+TCP frame into MTU-sized frames,
/// adjusting sequence numbers, lengths and flags (TSO).  Returns `None` if
/// the frame is not segmentable TCP.
fn segment_tso(frame: &[u8]) -> Option<Vec<Vec<u8>>> {
    if frame.len() < ETHERNET_HEADER_LEN + IPV4_HEADER_LEN {
        return None;
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != EtherType::Ipv4.as_u16() {
        return None;
    }
    let ip = ETHERNET_HEADER_LEN;
    let ihl = ((frame[ip] & 0x0f) as usize) * 4;
    if frame[ip + 9] != IpProtocol::Tcp.as_u8() {
        return None;
    }
    let total_len = u16::from_be_bytes([frame[ip + 2], frame[ip + 3]]) as usize;
    if frame.len() < ip + total_len {
        return None;
    }
    let transport = ip + ihl;
    let tcp_header_len = ((frame[transport + 12] >> 4) as usize) * 4;
    let payload_start = transport + tcp_header_len;
    let payload_end = ip + total_len;
    let payload = &frame[payload_start..payload_end];
    let mss = MTU - ihl - tcp_header_len;
    if payload.len() <= mss {
        return Some(vec![frame.to_vec()]);
    }
    let base_seq = u32::from_be_bytes([
        frame[transport + 4],
        frame[transport + 5],
        frame[transport + 6],
        frame[transport + 7],
    ]);
    let orig_flags = frame[transport + 13];
    let mut segments = Vec::new();
    let mut offset = 0usize;
    while offset < payload.len() {
        let chunk = &payload[offset..payload.len().min(offset + mss)];
        let last = offset + chunk.len() >= payload.len();
        let mut seg = Vec::with_capacity(payload_start - ip + chunk.len() + ETHERNET_HEADER_LEN);
        seg.extend_from_slice(&frame[..payload_start]);
        seg.extend_from_slice(chunk);
        // Patch IP total length.
        let new_total = (ihl + tcp_header_len + chunk.len()) as u16;
        seg[ip + 2..ip + 4].copy_from_slice(&new_total.to_be_bytes());
        // Patch TCP sequence number.
        let seq = base_seq.wrapping_add(offset as u32);
        seg[transport + 4..transport + 8].copy_from_slice(&seq.to_be_bytes());
        // FIN/PSH only on the last segment.
        if !last {
            seg[transport + 13] = orig_flags & !0x09; // clear FIN and PSH
        }
        // Checksums are recomputed by checksum offload (always on for TSO
        // hardware).
        offload_checksums(&mut seg);
        segments.push(seg);
        offset += chunk.len();
    }
    Some(segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{Link, LinkConfig};
    use crate::wire::{EthernetFrame, Ipv4Packet, TcpFlags, TcpSegment};

    fn setup(config: NicConfig) -> (Nic, LinkPort, SimClock) {
        let clock = SimClock::with_speedup(100.0);
        let (_link, a, b) = Link::new(LinkConfig::unshaped(), clock.clone());
        (Nic::new(config, clock.clone(), a), b, clock)
    }

    fn tcp_frame(payload_len: usize) -> Vec<u8> {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let mut seg = TcpSegment::control(40000, 5001, 1_000, 500, TcpFlags::PSH_ACK);
        seg.payload = (0..payload_len).map(|i| (i % 251) as u8).collect();
        let ip = Ipv4Packet::new(src, dst, IpProtocol::Tcp, seg.build(src, dst));
        EthernetFrame::new(
            MacAddr::from_index(2),
            MacAddr::from_index(1),
            EtherType::Ipv4,
            ip.build(),
        )
        .build()
    }

    #[test]
    fn transmit_and_receive_small_frame() {
        let (mut nic, peer, _clock) = setup(NicConfig::new(0));
        let frame = tcp_frame(100);
        nic.transmit(frame.clone()).unwrap();
        nic.poll();
        let got = peer.poll_receive().unwrap();
        assert_eq!(got.len(), frame.len());
        assert_eq!(nic.stats().tx_frames, 1);
    }

    #[test]
    fn rx_path_delivers_frames() {
        let (mut nic, peer, _clock) = setup(NicConfig::new(0));
        peer.transmit(tcp_frame(64));
        nic.poll();
        assert!(nic.receive().is_some());
        assert!(nic.receive().is_none());
        assert_eq!(nic.stats().rx_frames, 1);
    }

    #[test]
    fn tso_segments_oversized_tcp_frames() {
        let (mut nic, peer, _clock) = setup(NicConfig::new(0));
        // 16000 bytes of TCP payload in one oversized frame.
        let frame = tcp_frame(16_000);
        nic.transmit(frame).unwrap();
        nic.poll();
        let frames = peer.drain_receive();
        assert!(
            frames.len() > 10,
            "expected many MTU-sized segments, got {}",
            frames.len()
        );
        // Every segment must be parseable and within the MTU, and the
        // payloads must reassemble to the original data.
        let mut reassembled: Vec<(u32, Vec<u8>)> = Vec::new();
        for bytes in &frames {
            assert!(bytes.len() <= ETHERNET_HEADER_LEN + MTU);
            let eth = EthernetFrame::parse(bytes).unwrap();
            let ip = Ipv4Packet::parse(&eth.payload).unwrap();
            let tcp = TcpSegment::parse(&ip.payload, ip.src, ip.dst).unwrap();
            reassembled.push((tcp.seq, tcp.payload));
        }
        reassembled.sort_by_key(|(seq, _)| *seq);
        let total: Vec<u8> = reassembled.into_iter().flat_map(|(_, p)| p).collect();
        assert_eq!(total.len(), 16_000);
        assert_eq!(
            total,
            (0..16_000).map(|i| (i % 251) as u8).collect::<Vec<u8>>()
        );
        assert!(nic.stats().tso_segments > 0);
    }

    #[test]
    fn tso_preserves_fin_only_on_last_segment() {
        let (mut nic, peer, _clock) = setup(NicConfig::new(0));
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let mut seg = TcpSegment::control(1, 2, 0, 0, TcpFlags::FIN_ACK);
        seg.payload = vec![1u8; 4000];
        let ip = Ipv4Packet::new(src, dst, IpProtocol::Tcp, seg.build(src, dst));
        let frame = EthernetFrame::new(
            MacAddr::from_index(2),
            MacAddr::from_index(1),
            EtherType::Ipv4,
            ip.build(),
        )
        .build();
        nic.transmit(frame).unwrap();
        nic.poll();
        let frames = peer.drain_receive();
        let fins: Vec<bool> = frames
            .iter()
            .map(|bytes| {
                let eth = EthernetFrame::parse(bytes).unwrap();
                let ip = Ipv4Packet::parse(&eth.payload).unwrap();
                TcpSegment::parse(&ip.payload, ip.src, ip.dst)
                    .unwrap()
                    .flags
                    .fin
            })
            .collect();
        assert!(!fins[..fins.len() - 1].iter().any(|&f| f));
        assert!(fins[fins.len() - 1]);
    }

    /// Property test for the TSO segmenter: across randomized payload
    /// lengths, header shapes (with/without the MSS option) and flag
    /// combinations, every emitted frame must fit the MTU, parse with
    /// valid IP and TCP checksums, carry contiguous sequence numbers, and
    /// show PSH/FIN only on the final frame, with the payloads
    /// reassembling byte-identically.
    #[test]
    fn segment_tso_properties_hold_across_randomized_inputs() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        // Deterministic LCG so failures reproduce.
        let mut state: u64 = 0x5eed_cafe_f00d_1234;
        let mut rand = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for case in 0..64u64 {
            let payload_len = 1 + (rand() as usize % 40_000);
            let flags = match rand() % 3 {
                0 => TcpFlags::PSH_ACK,
                1 => TcpFlags::FIN_ACK,
                _ => TcpFlags::ACK,
            };
            // Include sequence numbers that wrap mid-segment.
            let base_seq = if rand() % 4 == 0 {
                u32::MAX - (rand() as u32 % 20_000)
            } else {
                rand() as u32
            };
            let mut seg = TcpSegment::control(40_000, 5_001, base_seq, 500, flags);
            if rand() % 2 == 0 {
                // The MSS option changes the TCP header length, moving the
                // split point.
                seg.mss = Some(1_460);
            }
            seg.payload = (0..payload_len).map(|i| (i % 251) as u8).collect();
            let ip_pkt = Ipv4Packet::new(src, dst, IpProtocol::Tcp, seg.build(src, dst));
            let frame = EthernetFrame::new(
                MacAddr::from_index(2),
                MacAddr::from_index(1),
                EtherType::Ipv4,
                ip_pkt.build(),
            )
            .build();

            let segments = segment_tso(&frame).expect("segmentable TCP frame");
            assert!(!segments.is_empty(), "case {case}: no frames");
            let mut expected_seq = base_seq;
            let mut reassembled = Vec::new();
            for (i, bytes) in segments.iter().enumerate() {
                let last = i == segments.len() - 1;
                assert!(
                    bytes.len() <= ETHERNET_HEADER_LEN + MTU,
                    "case {case}: frame {i} exceeds the MTU"
                );
                let eth = EthernetFrame::parse(bytes).expect("ethernet parses");
                // `Ipv4Packet::parse` verifies the IP header checksum and
                // `TcpSegment::parse` the TCP pseudo-header checksum — a
                // parse failure means the offload engine got one wrong.
                let ip = Ipv4Packet::parse(&eth.payload)
                    .unwrap_or_else(|e| panic!("case {case}: frame {i} ip: {e:?}"));
                let tcp = TcpSegment::parse(&ip.payload, ip.src, ip.dst)
                    .unwrap_or_else(|e| panic!("case {case}: frame {i} tcp: {e:?}"));
                assert_eq!(
                    tcp.seq, expected_seq,
                    "case {case}: frame {i} breaks sequence continuity"
                );
                expected_seq = expected_seq.wrapping_add(tcp.payload.len() as u32);
                if last {
                    assert_eq!(tcp.flags.psh, flags.psh, "case {case}: last frame psh");
                    assert_eq!(tcp.flags.fin, flags.fin, "case {case}: last frame fin");
                } else {
                    assert!(!tcp.flags.psh, "case {case}: frame {i} leaks PSH");
                    assert!(!tcp.flags.fin, "case {case}: frame {i} leaks FIN");
                }
                assert_eq!(tcp.flags.ack, flags.ack, "case {case}: frame {i} ack bit");
                reassembled.extend_from_slice(&tcp.payload);
            }
            assert_eq!(
                reassembled,
                (0..payload_len)
                    .map(|i| (i % 251) as u8)
                    .collect::<Vec<u8>>(),
                "case {case}: reassembly differs"
            );
        }
    }

    #[test]
    fn transmit_scattered_assembles_multi_part_frames() {
        let (mut nic, peer, _clock) = setup(NicConfig::new(0));
        let frame = tcp_frame(300);
        let (head, tail) = frame.split_at(40);
        let parts = [Bytes::copy_from_slice(head), Bytes::copy_from_slice(tail)];
        nic.transmit_scattered(0, &parts).unwrap();
        nic.poll();
        let got = peer.poll_receive().unwrap();
        assert_eq!(got.len(), frame.len());
        assert_eq!(
            nic.transmit_scattered(0, &[]).unwrap_err(),
            NicError::Malformed
        );
    }

    #[test]
    fn oversized_frame_rejected_without_tso() {
        let (mut nic, _peer, _clock) = setup(NicConfig::new(0).without_tso());
        let err = nic.transmit(tcp_frame(5000)).unwrap_err();
        assert!(matches!(err, NicError::Oversized { .. }));
        // A normal-sized frame still goes through.
        assert!(nic.transmit(tcp_frame(1000)).is_ok());
    }

    #[test]
    fn checksum_offload_fills_in_checksums() {
        let (mut nic, peer, _clock) = setup(NicConfig::new(0));
        // Build a frame with deliberately zeroed checksums (what the stack
        // produces when offload is enabled).
        let mut frame = tcp_frame(200);
        let ip = ETHERNET_HEADER_LEN;
        frame[ip + 10] = 0;
        frame[ip + 11] = 0;
        let transport = ip + IPV4_HEADER_LEN;
        frame[transport + 16] = 0;
        frame[transport + 17] = 0;
        nic.transmit(frame).unwrap();
        nic.poll();
        let bytes = peer.poll_receive().unwrap();
        let eth = EthernetFrame::parse(&bytes).unwrap();
        let ip = Ipv4Packet::parse(&eth.payload).unwrap();
        assert!(TcpSegment::parse(&ip.payload, ip.src, ip.dst).is_ok());
    }

    #[test]
    fn reset_takes_the_link_down_then_up() {
        let (mut nic, _peer, clock) = setup(NicConfig::new(0));
        assert!(nic.is_link_up());
        nic.transmit(tcp_frame(10)).unwrap();
        nic.reset();
        assert!(!nic.is_link_up());
        assert_eq!(nic.transmit(tcp_frame(10)).unwrap_err(), NicError::LinkDown);
        assert_eq!(nic.stats().resets, 1);
        // After the reset latency the link comes back.
        clock.sleep(Duration::from_millis(1900));
        assert!(nic.is_link_up());
        assert!(nic.transmit(tcp_frame(10)).is_ok());
    }

    #[test]
    fn rx_ring_overflow_drops_frames() {
        let mut config = NicConfig::new(0);
        config.rx_ring = 4;
        let (mut nic, peer, _clock) = setup(config);
        for _ in 0..10 {
            peer.transmit(tcp_frame(10));
        }
        nic.poll();
        assert_eq!(nic.stats().rx_frames, 4);
        assert_eq!(nic.stats().rx_drops, 6);
    }

    #[test]
    fn tx_ring_overflow_reported() {
        let mut config = NicConfig::new(0);
        config.tx_ring = 2;
        let (mut nic, _peer, _clock) = setup(config);
        nic.transmit(tcp_frame(10)).unwrap();
        nic.transmit(tcp_frame(10)).unwrap();
        assert_eq!(
            nic.transmit(tcp_frame(10)).unwrap_err(),
            NicError::TxRingFull
        );
        assert_eq!(nic.tx_ring_free(), 0);
        nic.poll();
        assert_eq!(nic.tx_ring_free(), 2);
    }

    #[test]
    fn malformed_frame_rejected() {
        let (mut nic, _peer, _clock) = setup(NicConfig::new(0));
        assert_eq!(
            nic.transmit(vec![1, 2, 3]).unwrap_err(),
            NicError::Malformed
        );
    }

    /// Builds the frame the peer would send back for `tcp_frame(..)` traffic
    /// (source/destination tuple reversed).
    fn reply_frame(payload_len: usize) -> Vec<u8> {
        let src = Ipv4Addr::new(10, 0, 0, 2);
        let dst = Ipv4Addr::new(10, 0, 0, 1);
        let mut seg = TcpSegment::control(5001, 40000, 500, 1_000, TcpFlags::PSH_ACK);
        seg.payload = vec![7u8; payload_len];
        let ip = Ipv4Packet::new(src, dst, IpProtocol::Tcp, seg.build(src, dst));
        EthernetFrame::new(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            EtherType::Ipv4,
            ip.build(),
        )
        .build()
    }

    #[test]
    fn transmit_pins_the_reverse_flow_to_the_same_queue() {
        let (mut nic, peer, _clock) = setup(NicConfig::new(0).with_queues(4));
        // Transmit the flow on queue 2; the adapter samples it (ATR).
        nic.transmit_on(2, tcp_frame(100)).unwrap();
        nic.poll();
        assert!(peer.poll_receive().is_some());
        // The reply is steered to queue 2 by the flow director, wherever
        // the Toeplitz hash would have put it.
        peer.transmit(reply_frame(64));
        nic.poll();
        assert!(nic.receive_on(2).is_some());
        assert_eq!(nic.stats().rx_steered[2], 1);
        assert_eq!(nic.stats().fdir_hits, 1);
    }

    #[test]
    fn queue_reset_keeps_the_link_up_and_other_queues_intact() {
        let (mut nic, peer, _clock) = setup(NicConfig::new(0).with_queues(2));
        nic.transmit_on(1, tcp_frame(100)).unwrap();
        nic.poll();
        peer.transmit(reply_frame(10));
        nic.poll();
        assert_eq!(nic.rx_queue_depth(1), 1);
        // Resetting queue 0 clears nothing that queue 1 holds and the link
        // never goes down.
        nic.reset_queue(0);
        assert!(nic.is_link_up());
        assert_eq!(nic.rx_queue_depth(1), 1);
        assert_eq!(nic.stats().queue_resets, 1);
        assert_eq!(nic.stats().resets, 0);
        // Resetting queue 1 drops its frames and its flow pins.
        nic.reset_queue(1);
        assert_eq!(nic.rx_queue_depth(1), 0);
        peer.transmit(reply_frame(10));
        nic.poll();
        assert_eq!(nic.stats().fdir_hits, 1, "pin was forgotten by the reset");
    }

    #[test]
    fn deterministic_steering_without_flow_director() {
        // The same inbound tuple lands on the same queue across adapter
        // instances and shard counts (RSS determinism).
        for queues in 1..=4usize {
            let (mut a, peer_a, _clock_a) = setup(NicConfig::new(0).with_queues(queues));
            let (mut b, peer_b, _clock_b) = setup(NicConfig::new(1).with_queues(queues));
            peer_a.transmit(reply_frame(32));
            peer_b.transmit(reply_frame(32));
            a.poll();
            b.poll();
            let qa = (0..queues).find(|&q| a.rx_queue_depth(q) > 0).unwrap();
            let qb = (0..queues).find(|&q| b.rx_queue_depth(q) > 0).unwrap();
            assert_eq!(qa, qb, "steering differed at {queues} queues");
        }
    }
}
