//! The remote peer host.
//!
//! The paper's evaluation always involves a second machine: the Linux box
//! running `iperf` that sinks the outgoing TCP stream, the SSH client that
//! reconnects after every injected fault, the remote DNS server answering the
//! resolver's UDP queries.  [`RemotePeer`] is that machine: a small but
//! protocol-correct host attached to the other end of a link that
//!
//! * answers ARP requests and ICMP echo requests,
//! * accepts TCP connections on configured ports and acknowledges (and
//!   counts) everything it receives — the iperf sink,
//! * optionally echoes received TCP data back — the SSH-session stand-in,
//! * answers UDP "DNS" queries on port 53 and echoes UDP on port 7.
//!
//! It deliberately acknowledges cumulatively and immediately, and re-ACKs
//! out-of-order data, so the stack's retransmission logic is exercised the
//! same way a real receiver would.
//!
//! # Client flows
//!
//! The peer can also *originate* TCP connections towards the stack — the
//! wire half of the HTTP load generator (`newt-apps`).  A client flow is
//! opened with [`RemotePeer::client_connect`], written to with
//! [`RemotePeer::client_send`] and read with [`RemotePeer::client_take`];
//! the peer resolves the stack's MAC over ARP, performs the three-way
//! handshake, retransmits unacknowledged data on a doubling virtual-time
//! RTO (so client flows survive lossy and bursty links), acknowledges and
//! re-ACKs response data, and reports dead flows as
//! [`ClientStatus::Failed`] so a harness can reconnect — the behaviour of
//! the paper's SSH client that reconnects after every injected fault.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use newt_kernel::clock::SimClock;

use crate::link::LinkPort;
use crate::wire::{
    ArpOperation, ArpPacket, EtherType, EthernetFrame, IcmpMessage, IcmpType, IpProtocol,
    Ipv4Packet, MacAddr, TcpFlags, TcpSegment, UdpDatagram, MTU,
};

/// Well-known port of the iperf-like bulk sink.
pub const IPERF_PORT: u16 = 5001;
/// Well-known port of the SSH-like echo service.
pub const SSH_PORT: u16 = 22;
/// Well-known port of the DNS-like UDP responder.
pub const DNS_PORT: u16 = 53;
/// Well-known port of the UDP echo service.
pub const UDP_ECHO_PORT: u16 = 7;

/// Configuration of a [`RemotePeer`].
#[derive(Debug, Clone)]
pub struct PeerConfig {
    /// The peer's MAC address.
    pub mac: MacAddr,
    /// The peer's IPv4 address.
    pub ip: Ipv4Addr,
    /// Receive window advertised on TCP connections.
    pub tcp_window: u16,
    /// TCP ports the peer listens on, with `true` marking echo services.
    pub tcp_services: Vec<(u16, bool)>,
}

impl Default for PeerConfig {
    fn default() -> Self {
        PeerConfig {
            mac: MacAddr::from_index(200),
            ip: Ipv4Addr::new(10, 0, 0, 2),
            tcp_window: u16::MAX,
            tcp_services: vec![(IPERF_PORT, false), (SSH_PORT, true)],
        }
    }
}

/// Counters describing the traffic the peer has seen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerStats {
    /// Frames processed.
    pub frames: u64,
    /// TCP payload bytes received in order (goodput).
    pub tcp_bytes_received: u64,
    /// Duplicate or out-of-order TCP segments observed.
    pub tcp_out_of_order: u64,
    /// TCP connections accepted.
    pub tcp_accepted: u64,
    /// ICMP echo requests answered.
    pub pings_answered: u64,
    /// DNS queries answered.
    pub dns_answered: u64,
    /// Frames that failed to parse (corrupted).
    pub parse_errors: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FlowKey {
    remote_ip: Ipv4Addr,
    remote_port: u16,
    local_port: u16,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    SynReceived,
    Established,
    Closed,
}

#[derive(Debug)]
struct PeerConn {
    state: ConnState,
    rcv_nxt: u32,
    snd_nxt: u32,
    bytes_received: u64,
    echo: bool,
    echo_backlog: Vec<u8>,
}

/// Externally visible state of a peer-originated client flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientStatus {
    /// Waiting for the stack's MAC address (ARP in flight).
    Resolving,
    /// SYN sent, waiting for the SYN-ACK.
    Connecting,
    /// Handshake complete; data can flow.
    Established,
    /// The remote side closed the connection (FIN received).
    Closed,
    /// The flow is dead: the remote reset it, or retransmissions were
    /// exhausted (e.g. the owning TCP server crashed and lost the socket).
    Failed,
}

/// Maximum retransmissions (SYN, data or ARP) before a client flow is
/// declared [`ClientStatus::Failed`].
const CLIENT_MAX_RETRIES: u32 = 12;
/// Initial client retransmission timeout (virtual time).
const CLIENT_RTO_INITIAL: Duration = Duration::from_millis(200);
/// Maximum client retransmission timeout (virtual time).
const CLIENT_RTO_MAX: Duration = Duration::from_secs(2);
/// Bytes a client flow keeps in flight at most.
const CLIENT_WINDOW: usize = 64 * 1024;
/// MSS used by client flows (Ethernet MTU minus IP + TCP headers).
const CLIENT_MSS: usize = MTU - 40;

/// A peer-originated TCP connection (see the module docs, "Client flows").
#[derive(Debug)]
struct ClientConn {
    dst_ip: Ipv4Addr,
    dst_port: u16,
    src_port: u16,
    dst_mac: Option<MacAddr>,
    status: ClientStatus,
    isn: u32,
    snd_una: u32,
    /// Bytes written but not yet transmitted.
    tx_backlog: Vec<u8>,
    /// Bytes transmitted but unacknowledged (contiguous from `snd_una`).
    unacked: Vec<u8>,
    rcv_nxt: u32,
    peer_window: u32,
    /// Response bytes waiting for the harness to take.
    received: Vec<u8>,
    rto: Duration,
    rto_deadline: Option<Duration>,
    retries: u32,
}

impl ClientConn {
    fn snd_nxt(&self) -> u32 {
        self.snd_una.wrapping_add(self.unacked.len() as u32)
    }
}

#[derive(Debug)]
struct PeerState {
    conns: HashMap<FlowKey, PeerConn>,
    /// Client flows keyed by the local (peer-side) source port.
    clients: HashMap<u16, ClientConn>,
    /// MAC addresses learned from ARP traffic.
    arp_cache: HashMap<Ipv4Addr, MacAddr>,
    /// Earliest armed client RTO deadline, or `None` when no client
    /// timer is armed.  Lets [`RemotePeer::tick`] skip the full client
    /// scan while nothing is due — with 100k held keep-alive
    /// connections the scan would otherwise run on every poll and
    /// serialise against the load generator on the state mutex.  May
    /// run early after a timer is cancelled (stale minimum); never
    /// late.
    next_client_timer: Option<Duration>,
    stats: PeerStats,
}

impl PeerState {
    /// Folds a freshly armed client RTO deadline into the
    /// earliest-deadline gate consulted by [`RemotePeer::tick`].
    fn note_client_timer(&mut self, due: Duration) {
        self.next_client_timer = Some(self.next_client_timer.map_or(due, |n| n.min(due)));
    }
}

/// The simulated remote host.  See the module documentation.
#[derive(Debug)]
pub struct RemotePeer {
    config: PeerConfig,
    clock: SimClock,
    port: LinkPort,
    state: Mutex<PeerState>,
}

impl RemotePeer {
    /// Creates a peer attached to one end of a link.
    pub fn new(config: PeerConfig, clock: SimClock, port: LinkPort) -> Self {
        RemotePeer {
            config,
            clock,
            port,
            state: Mutex::new(PeerState {
                conns: HashMap::new(),
                clients: HashMap::new(),
                arp_cache: HashMap::new(),
                next_client_timer: None,
                stats: PeerStats::default(),
            }),
        }
    }

    /// Returns the peer's IPv4 address.
    pub fn ip(&self) -> Ipv4Addr {
        self.config.ip
    }

    /// Returns the peer's MAC address.
    pub fn mac(&self) -> MacAddr {
        self.config.mac
    }

    /// Returns traffic counters.
    pub fn stats(&self) -> PeerStats {
        self.state.lock().stats
    }

    /// Returns the total TCP payload bytes received in order on `port`.
    pub fn bytes_received_on(&self, port: u16) -> u64 {
        self.state
            .lock()
            .conns
            .iter()
            .filter(|(k, _)| k.local_port == port)
            .map(|(_, c)| c.bytes_received)
            .sum()
    }

    /// Returns the number of currently established connections to `port`.
    pub fn established_connections(&self, port: u16) -> usize {
        self.state
            .lock()
            .conns
            .iter()
            .filter(|(k, c)| k.local_port == port && c.state == ConnState::Established)
            .count()
    }

    /// Processes every frame currently waiting at the peer's link port and
    /// runs the client-flow timers.  Returns the amount of work done.
    pub fn poll_once(&self) -> usize {
        let mut handled = 0;
        while let Some(frame) = self.port.poll_receive() {
            handled += 1;
            self.handle_frame(&frame);
        }
        handled + self.tick()
    }

    /// Runs the peer in a background thread until the returned handle is
    /// stopped.
    pub fn spawn(self: Arc<Self>) -> PeerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = Arc::clone(&stop);
        let peer = Arc::clone(&self);
        let thread = std::thread::Builder::new()
            .name("newtos-remote-peer".to_string())
            .spawn(move || {
                while !stop_thread.load(Ordering::Acquire) {
                    if peer.poll_once() == 0 {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
            })
            .expect("spawning the remote peer thread");
        PeerHandle {
            stop,
            thread: Some(thread),
        }
    }

    fn send_frame(&self, dst_mac: MacAddr, ethertype: EtherType, payload: Vec<u8>) {
        let frame = EthernetFrame::new(dst_mac, self.config.mac, ethertype, payload);
        self.port.transmit(frame.build());
    }

    fn send_ipv4(
        &self,
        dst_mac: MacAddr,
        dst_ip: Ipv4Addr,
        protocol: IpProtocol,
        payload: Vec<u8>,
    ) {
        let packet = Ipv4Packet::new(self.config.ip, dst_ip, protocol, payload);
        self.send_frame(dst_mac, EtherType::Ipv4, packet.build());
    }

    fn handle_frame(&self, bytes: &[u8]) {
        {
            self.state.lock().stats.frames += 1;
        }
        let Ok(frame) = EthernetFrame::parse(bytes) else {
            self.state.lock().stats.parse_errors += 1;
            return;
        };
        match frame.ethertype {
            EtherType::Arp => self.handle_arp(&frame),
            EtherType::Ipv4 => self.handle_ipv4(&frame),
        }
    }

    fn handle_arp(&self, frame: &EthernetFrame) {
        let Ok(arp) = ArpPacket::parse(&frame.payload) else {
            self.state.lock().stats.parse_errors += 1;
            return;
        };
        if arp.operation == ArpOperation::Request && arp.target_ip == self.config.ip {
            let reply = ArpPacket::reply_to(&arp, self.config.mac, self.config.ip);
            self.send_frame(arp.sender_mac, EtherType::Arp, reply.build());
        }
        // Learn the sender's mapping from requests and replies alike, and
        // kick any client flows that were waiting for it.
        let resolved = {
            let mut state = self.state.lock();
            state.arp_cache.insert(arp.sender_ip, arp.sender_mac);
            let mut syns = Vec::new();
            for conn in state.clients.values_mut() {
                if conn.status == ClientStatus::Resolving && conn.dst_ip == arp.sender_ip {
                    conn.dst_mac = Some(arp.sender_mac);
                    conn.status = ClientStatus::Connecting;
                    conn.retries = 0;
                    conn.rto = CLIENT_RTO_INITIAL;
                    conn.rto_deadline = Some(self.clock.now() + conn.rto);
                    syns.push((arp.sender_mac, conn.dst_ip, Self::client_syn(conn)));
                }
            }
            if !syns.is_empty() {
                let due = self.clock.now() + CLIENT_RTO_INITIAL;
                state.note_client_timer(due);
            }
            syns
        };
        for (mac, ip, syn) in resolved {
            self.send_tcp(mac, ip, syn);
        }
    }

    fn handle_ipv4(&self, frame: &EthernetFrame) {
        let Ok(packet) = Ipv4Packet::parse(&frame.payload) else {
            self.state.lock().stats.parse_errors += 1;
            return;
        };
        if packet.dst != self.config.ip {
            return;
        }
        match packet.protocol {
            IpProtocol::Icmp => self.handle_icmp(frame, &packet),
            IpProtocol::Udp => self.handle_udp(frame, &packet),
            IpProtocol::Tcp => self.handle_tcp(frame, &packet),
        }
    }

    fn handle_icmp(&self, frame: &EthernetFrame, packet: &Ipv4Packet) {
        let Ok(icmp) = IcmpMessage::parse(&packet.payload) else {
            self.state.lock().stats.parse_errors += 1;
            return;
        };
        if icmp.icmp_type == IcmpType::EchoRequest {
            self.state.lock().stats.pings_answered += 1;
            let reply = IcmpMessage::reply_to(&icmp);
            self.send_ipv4(frame.src, packet.src, IpProtocol::Icmp, reply.build());
        }
    }

    fn handle_udp(&self, frame: &EthernetFrame, packet: &Ipv4Packet) {
        let Ok(dgram) = UdpDatagram::parse(&packet.payload, packet.src, packet.dst) else {
            self.state.lock().stats.parse_errors += 1;
            return;
        };
        let reply_payload = match dgram.dst_port {
            DNS_PORT => {
                self.state.lock().stats.dns_answered += 1;
                let mut answer = b"answer:".to_vec();
                answer.extend_from_slice(&dgram.payload);
                Some(answer)
            }
            UDP_ECHO_PORT => Some(dgram.payload.clone()),
            _ => None,
        };
        if let Some(payload) = reply_payload {
            let reply = UdpDatagram::new(dgram.dst_port, dgram.src_port, payload);
            self.send_ipv4(
                frame.src,
                packet.src,
                IpProtocol::Udp,
                reply.build(self.config.ip, packet.src),
            );
        }
    }

    fn handle_tcp(&self, frame: &EthernetFrame, packet: &Ipv4Packet) {
        let Ok(seg) = TcpSegment::parse(&packet.payload, packet.src, packet.dst) else {
            self.state.lock().stats.parse_errors += 1;
            return;
        };
        // A segment addressed to a client flow's source port belongs to the
        // client state machine, not to the listening services.
        let is_client = {
            let state = self.state.lock();
            state
                .clients
                .get(&seg.dst_port)
                .is_some_and(|c| c.dst_port == seg.src_port && c.dst_ip == packet.src)
        };
        if is_client {
            self.handle_client_segment(frame, packet, &seg);
            return;
        }
        let key = FlowKey {
            remote_ip: packet.src,
            remote_port: seg.src_port,
            local_port: seg.dst_port,
        };
        let listening = self
            .config
            .tcp_services
            .iter()
            .find(|(p, _)| *p == seg.dst_port)
            .copied();

        let mut replies: Vec<TcpSegment> = Vec::new();
        {
            let mut state = self.state.lock();
            let PeerState { conns, stats, .. } = &mut *state;
            if seg.flags.rst {
                conns.remove(&key);
                return;
            }
            if seg.flags.syn && !seg.flags.ack {
                let Some((_, echo)) = listening else {
                    // Not listening: reset.
                    let mut rst = TcpSegment::control(
                        seg.dst_port,
                        seg.src_port,
                        0,
                        seg.seq.wrapping_add(1),
                        TcpFlags::RST,
                    );
                    rst.window = 0;
                    replies.push(rst);
                    drop(state);
                    for r in replies {
                        self.send_tcp(frame.src, packet.src, r);
                    }
                    return;
                };
                let isn = 0x7000_0000u32.wrapping_add(seg.seq);
                let conn = PeerConn {
                    state: ConnState::SynReceived,
                    rcv_nxt: seg.seq.wrapping_add(1),
                    snd_nxt: isn.wrapping_add(1),
                    bytes_received: 0,
                    echo,
                    echo_backlog: Vec::new(),
                };
                stats.tcp_accepted += 1;
                let mut syn_ack = TcpSegment::control(
                    seg.dst_port,
                    seg.src_port,
                    isn,
                    conn.rcv_nxt,
                    TcpFlags::SYN_ACK,
                );
                syn_ack.window = self.config.tcp_window;
                syn_ack.mss = Some((MTU - 40) as u16);
                conns.insert(key, conn);
                replies.push(syn_ack);
            } else if let Some(conn) = conns.get_mut(&key) {
                if conn.state == ConnState::SynReceived && seg.flags.ack {
                    conn.state = ConnState::Established;
                }
                let mut ack_due = false;
                if !seg.payload.is_empty() {
                    if seg.seq == conn.rcv_nxt {
                        conn.rcv_nxt = conn.rcv_nxt.wrapping_add(seg.payload.len() as u32);
                        conn.bytes_received += seg.payload.len() as u64;
                        stats.tcp_bytes_received += seg.payload.len() as u64;
                        if conn.echo {
                            conn.echo_backlog.extend_from_slice(&seg.payload);
                        }
                    } else {
                        stats.tcp_out_of_order += 1;
                    }
                    ack_due = true;
                }
                if seg.flags.fin && seg.seq == conns.get(&key).expect("present").rcv_nxt {
                    let conn = conns.get_mut(&key).expect("present");
                    conn.rcv_nxt = conn.rcv_nxt.wrapping_add(1);
                    conn.state = ConnState::Closed;
                    let mut fin_ack = TcpSegment::control(
                        seg.dst_port,
                        seg.src_port,
                        conn.snd_nxt,
                        conn.rcv_nxt,
                        TcpFlags::FIN_ACK,
                    );
                    fin_ack.window = self.config.tcp_window;
                    conn.snd_nxt = conn.snd_nxt.wrapping_add(1);
                    replies.push(fin_ack);
                    ack_due = false;
                }
                if ack_due {
                    let conn = conns.get(&key).expect("present");
                    let mut ack = TcpSegment::control(
                        seg.dst_port,
                        seg.src_port,
                        conn.snd_nxt,
                        conn.rcv_nxt,
                        TcpFlags::ACK,
                    );
                    ack.window = self.config.tcp_window;
                    replies.push(ack);
                }
                // Flush echo data (the SSH-like service answering the client).
                let conn = conns.get_mut(&key).expect("present");
                if conn.state == ConnState::Established && !conn.echo_backlog.is_empty() {
                    let data: Vec<u8> = conn.echo_backlog.drain(..).collect();
                    for chunk in data.chunks(MTU - 40) {
                        let mut reply = TcpSegment::control(
                            seg.dst_port,
                            seg.src_port,
                            conn.snd_nxt,
                            conn.rcv_nxt,
                            TcpFlags::PSH_ACK,
                        );
                        reply.window = self.config.tcp_window;
                        reply.payload = chunk.to_vec();
                        conn.snd_nxt = conn.snd_nxt.wrapping_add(chunk.len() as u32);
                        replies.push(reply);
                    }
                }
            } else if seg.flags.ack && !seg.flags.syn {
                // Segment for a connection we do not know (e.g. the stack
                // kept a connection across our restart) — reset it.
                let rst =
                    TcpSegment::control(seg.dst_port, seg.src_port, seg.ack, 0, TcpFlags::RST);
                replies.push(rst);
            }
        }
        for reply in replies {
            self.send_tcp(frame.src, packet.src, reply);
        }
    }

    fn send_tcp(&self, dst_mac: MacAddr, dst_ip: Ipv4Addr, segment: TcpSegment) {
        let bytes = segment.build(self.config.ip, dst_ip);
        self.send_ipv4(dst_mac, dst_ip, IpProtocol::Tcp, bytes);
    }

    // ---- client flows (the load generator's wire side) ----------------------

    /// Opens a TCP connection from local `src_port` towards `dst_ip:dst_port`
    /// on the far side of the link.  Resolution (ARP), the handshake and
    /// retransmissions run asynchronously in the peer's poll loop; track
    /// progress with [`RemotePeer::client_status`].  An existing flow on the
    /// same source port is replaced.
    pub fn client_connect(&self, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) {
        let now = self.clock.now();
        let isn = 0x4000_0000u32
            .wrapping_add((src_port as u32) << 12)
            .wrapping_add(now.subsec_nanos());
        let mut conn = ClientConn {
            dst_ip,
            dst_port,
            src_port,
            dst_mac: None,
            status: ClientStatus::Resolving,
            isn,
            snd_una: isn.wrapping_add(1),
            tx_backlog: Vec::new(),
            unacked: Vec::new(),
            rcv_nxt: 0,
            peer_window: CLIENT_WINDOW as u32,
            received: Vec::new(),
            rto: CLIENT_RTO_INITIAL,
            rto_deadline: Some(now + CLIENT_RTO_INITIAL),
            retries: 0,
        };
        let cached_mac = self.state.lock().arp_cache.get(&dst_ip).copied();
        let action = match cached_mac {
            Some(mac) => {
                conn.dst_mac = Some(mac);
                conn.status = ClientStatus::Connecting;
                Some((mac, dst_ip, Self::client_syn(&conn)))
            }
            None => None,
        };
        {
            let mut state = self.state.lock();
            state.note_client_timer(now + CLIENT_RTO_INITIAL);
            state.clients.insert(src_port, conn);
        }
        match action {
            Some((mac, ip, syn)) => self.send_tcp(mac, ip, syn),
            None => self.send_arp_request(dst_ip),
        }
    }

    /// Queues `data` for transmission on the client flow bound to
    /// `src_port` and flushes as much as the window allows.  Returns `false`
    /// if no such flow exists or it has failed.
    pub fn client_send(&self, src_port: u16, data: &[u8]) -> bool {
        let ok = {
            let mut state = self.state.lock();
            match state.clients.get_mut(&src_port) {
                Some(conn) if conn.status != ClientStatus::Failed => {
                    conn.tx_backlog.extend_from_slice(data);
                    true
                }
                _ => false,
            }
        };
        if ok {
            self.flush_client(src_port);
        }
        ok
    }

    /// Takes every response byte the client flow has received so far.
    pub fn client_take(&self, src_port: u16) -> Vec<u8> {
        let mut state = self.state.lock();
        match state.clients.get_mut(&src_port) {
            Some(conn) => std::mem::take(&mut conn.received),
            None => Vec::new(),
        }
    }

    /// Returns the status of the client flow bound to `src_port`.
    pub fn client_status(&self, src_port: u16) -> Option<ClientStatus> {
        self.state.lock().clients.get(&src_port).map(|c| c.status)
    }

    /// Abortively closes a client flow (RST, like `SO_LINGER` 0) and forgets
    /// it.  Load generators use this to recycle connections; an orderly FIN
    /// exchange is not needed for the workloads the peer drives.
    pub fn client_close(&self, src_port: u16) {
        let rst = {
            let mut state = self.state.lock();
            let Some(conn) = state.clients.remove(&src_port) else {
                return;
            };
            match (conn.dst_mac, conn.status) {
                (Some(mac), ClientStatus::Established | ClientStatus::Connecting) => {
                    let mut rst = TcpSegment::control(
                        conn.src_port,
                        conn.dst_port,
                        conn.snd_nxt(),
                        conn.rcv_nxt,
                        TcpFlags::RST,
                    );
                    rst.window = 0;
                    Some((mac, conn.dst_ip, rst))
                }
                _ => None,
            }
        };
        if let Some((mac, ip, rst)) = rst {
            self.send_tcp(mac, ip, rst);
        }
    }

    /// Number of client flows currently established.
    pub fn client_established_count(&self) -> usize {
        self.state
            .lock()
            .clients
            .values()
            .filter(|c| c.status == ClientStatus::Established)
            .count()
    }

    fn client_syn(conn: &ClientConn) -> TcpSegment {
        let mut syn = TcpSegment::control(conn.src_port, conn.dst_port, conn.isn, 0, TcpFlags::SYN);
        syn.mss = Some(CLIENT_MSS as u16);
        syn.window = u16::MAX;
        syn
    }

    // ---- attack generators (adversarial campaigns) ---------------------------

    /// The target's resolved MAC, or broadcast while ARP is still cold.
    fn target_mac(&self, dst_ip: Ipv4Addr) -> MacAddr {
        self.state
            .lock()
            .arp_cache
            .get(&dst_ip)
            .copied()
            .unwrap_or(MacAddr::BROADCAST)
    }

    /// Fires `count` TCP SYNs at `dst_ip:dst_port` with source addresses
    /// spoofed into 198.18.0.0/16 (the RFC 2544 benchmarking range) and
    /// randomized ports and sequence numbers.  The sources do not exist,
    /// so no handshake ever completes and the target's SYN-ACKs go
    /// nowhere — the classic resource-exhaustion SYN flood.  Returns the
    /// number of frames transmitted.  Deterministic per `seed`.
    pub fn syn_flood(&self, dst_ip: Ipv4Addr, dst_port: u16, count: usize, seed: u64) -> usize {
        let mac = self.target_mac(dst_ip);
        let mut rng = seed | 1;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..count {
            let r = next();
            let src = Ipv4Addr::new(198, 18, (r >> 8) as u8, r as u8);
            let src_port = 1024u16.wrapping_add((next() % 60_000) as u16);
            let mut syn = TcpSegment::control(src_port, dst_port, next() as u32, 0, TcpFlags::SYN);
            syn.mss = Some(1460);
            syn.window = u16::MAX;
            let packet = Ipv4Packet::new(src, dst_ip, IpProtocol::Tcp, syn.build(src, dst_ip));
            self.send_frame(mac, EtherType::Ipv4, packet.build());
        }
        count
    }

    /// Transmits `count` malformed/truncated/bit-flipped frames from the
    /// [`crate::pktgen::FrameFuzzer`] towards `dst_ip`.  A robust stack
    /// counts and drops every one of them.  Returns the frames sent.
    pub fn malformed_flood(&self, dst_ip: Ipv4Addr, count: usize, seed: u64) -> usize {
        let mac = self.target_mac(dst_ip);
        let mut fuzzer = crate::pktgen::FrameFuzzer::new(seed);
        for _ in 0..count {
            let frame = fuzzer.next_frame(
                self.config.mac.octets(),
                mac.octets(),
                self.config.ip.octets(),
                dst_ip.octets(),
            );
            self.port.transmit(frame);
        }
        count
    }

    /// Drips one more byte of an endless, never-completing HTTP request
    /// header on the client flow bound to `src_port` — the slow-loris
    /// attack.  The header never contains the terminating blank line, so
    /// the server's parser sits on a partial request for as long as the
    /// flow is allowed to live.  Returns `false` once the flow is dead
    /// (e.g. the server's header deadline killed it — the defense win).
    pub fn loris_drip(&self, src_port: u16, cursor: usize) -> bool {
        const DRIP: &[u8] = b"GET /bytes/64 HTTP/1.1\r\nX-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
        self.client_send(src_port, &[DRIP[cursor % DRIP.len()]])
    }

    /// Opens a wave of client flows (`flows` consecutive source ports
    /// starting at `base_port`) — one half of a connection-churn storm.
    /// Pair with [`RemotePeer::abort_wave`] to slam them shut again.
    pub fn churn_wave(&self, base_port: u16, flows: usize, dst_ip: Ipv4Addr, dst_port: u16) {
        for i in 0..flows {
            self.client_connect(base_port.wrapping_add(i as u16), dst_ip, dst_port);
        }
    }

    /// Abortively closes a wave of client flows opened by
    /// [`RemotePeer::churn_wave`].
    pub fn abort_wave(&self, base_port: u16, flows: usize) {
        for i in 0..flows {
            self.client_close(base_port.wrapping_add(i as u16));
        }
    }

    fn send_arp_request(&self, target: Ipv4Addr) {
        let req = ArpPacket::request(self.config.mac, self.config.ip, target);
        self.send_frame(MacAddr::BROADCAST, EtherType::Arp, req.build());
    }

    /// Moves backlog bytes into the window and transmits them.
    fn flush_client(&self, src_port: u16) {
        let now = self.clock.now();
        let mut out = Vec::new();
        {
            let mut state = self.state.lock();
            let Some(conn) = state.clients.get_mut(&src_port) else {
                return;
            };
            if conn.status != ClientStatus::Established {
                return;
            }
            let Some(mac) = conn.dst_mac else { return };
            let window = (conn.peer_window as usize).min(CLIENT_WINDOW);
            while !conn.tx_backlog.is_empty() && conn.unacked.len() < window {
                let take = conn
                    .tx_backlog
                    .len()
                    .min(CLIENT_MSS)
                    .min(window - conn.unacked.len());
                let seq = conn.snd_nxt();
                let chunk: Vec<u8> = conn.tx_backlog.drain(..take).collect();
                conn.unacked.extend_from_slice(&chunk);
                let mut seg = TcpSegment::control(
                    conn.src_port,
                    conn.dst_port,
                    seq,
                    conn.rcv_nxt,
                    TcpFlags::PSH_ACK,
                );
                seg.window = u16::MAX;
                seg.payload = chunk;
                out.push((mac, conn.dst_ip, seg));
            }
            let armed = if !out.is_empty() && conn.rto_deadline.is_none() {
                let due = now + conn.rto;
                conn.rto_deadline = Some(due);
                Some(due)
            } else {
                None
            };
            if let Some(due) = armed {
                state.note_client_timer(due);
            }
        }
        for (mac, ip, seg) in out {
            self.send_tcp(mac, ip, seg);
        }
    }

    /// Handles an inbound segment belonging to a client flow.
    fn handle_client_segment(&self, frame: &EthernetFrame, packet: &Ipv4Packet, seg: &TcpSegment) {
        let mut replies: Vec<(MacAddr, Ipv4Addr, TcpSegment)> = Vec::new();
        let mut flush = false;
        {
            let mut state = self.state.lock();
            let PeerState { clients, stats, .. } = &mut *state;
            let Some(conn) = clients.get_mut(&seg.dst_port) else {
                return;
            };
            // Refresh the MAC from live traffic (gratuitous resolution).
            conn.dst_mac = Some(frame.src);
            conn.peer_window = (seg.window as u32).max(1);
            if seg.flags.rst {
                conn.status = ClientStatus::Failed;
                return;
            }
            match conn.status {
                ClientStatus::Connecting if seg.flags.syn && seg.flags.ack => {
                    if seg.ack != conn.isn.wrapping_add(1) {
                        return; // stale SYN-ACK of a dead incarnation
                    }
                    conn.rcv_nxt = seg.seq.wrapping_add(1);
                    conn.status = ClientStatus::Established;
                    conn.retries = 0;
                    conn.rto = CLIENT_RTO_INITIAL;
                    conn.rto_deadline = None;
                    let mut ack = TcpSegment::control(
                        conn.src_port,
                        conn.dst_port,
                        conn.snd_nxt(),
                        conn.rcv_nxt,
                        TcpFlags::ACK,
                    );
                    ack.window = u16::MAX;
                    replies.push((frame.src, packet.src, ack));
                    flush = true;
                }
                ClientStatus::Established | ClientStatus::Closed => {
                    let mut ack_due = false;
                    // ACK processing for our outstanding request data.
                    if seg.flags.ack {
                        let acked = seg.ack.wrapping_sub(conn.snd_una);
                        if acked > 0 && acked as usize <= conn.unacked.len() {
                            conn.unacked.drain(..acked as usize);
                            conn.snd_una = seg.ack;
                            conn.retries = 0;
                            conn.rto = CLIENT_RTO_INITIAL;
                            conn.rto_deadline = if conn.unacked.is_empty() {
                                None
                            } else {
                                Some(self.clock.now() + conn.rto)
                            };
                            flush = true;
                        }
                    }
                    // In-order response data is accumulated; anything else
                    // is re-ACKed so the stack fast-retransmits.
                    if !seg.payload.is_empty() {
                        if seg.seq == conn.rcv_nxt {
                            conn.rcv_nxt = conn.rcv_nxt.wrapping_add(seg.payload.len() as u32);
                            conn.received.extend_from_slice(&seg.payload);
                            stats.tcp_bytes_received += seg.payload.len() as u64;
                        } else {
                            stats.tcp_out_of_order += 1;
                        }
                        ack_due = true;
                    }
                    if seg.flags.fin
                        && seg.seq.wrapping_add(seg.payload.len() as u32) == conn.rcv_nxt
                    {
                        conn.rcv_nxt = conn.rcv_nxt.wrapping_add(1);
                        conn.status = ClientStatus::Closed;
                        ack_due = true;
                    }
                    if ack_due {
                        let mut ack = TcpSegment::control(
                            conn.src_port,
                            conn.dst_port,
                            conn.snd_nxt(),
                            conn.rcv_nxt,
                            TcpFlags::ACK,
                        );
                        ack.window = u16::MAX;
                        replies.push((frame.src, packet.src, ack));
                    }
                }
                _ => {}
            }
        }
        for (mac, ip, reply) in replies {
            self.send_tcp(mac, ip, reply);
        }
        if flush {
            self.flush_client(seg.dst_port);
        }
    }

    /// Runs the client-flow timers: ARP and SYN retries plus data
    /// retransmission on a doubling RTO.  Returns the amount of work done.
    pub fn tick(&self) -> usize {
        let now = self.clock.now();
        let mut arps: Vec<Ipv4Addr> = Vec::new();
        let mut segs: Vec<(MacAddr, Ipv4Addr, TcpSegment)> = Vec::new();
        {
            let mut state = self.state.lock();
            // Earliest-deadline gate: skip the O(clients) scan unless some
            // armed timer is actually due.  With a large idle keep-alive
            // population this makes the common tick O(1).
            match state.next_client_timer {
                Some(due) if now >= due => {}
                _ => return 0,
            }
            let mut next: Option<Duration> = None;
            for conn in state.clients.values_mut() {
                let Some(deadline) = conn.rto_deadline else {
                    continue;
                };
                if now < deadline {
                    next = Some(next.map_or(deadline, |n| n.min(deadline)));
                    continue;
                }
                conn.retries += 1;
                if conn.retries > CLIENT_MAX_RETRIES {
                    conn.status = ClientStatus::Failed;
                    conn.rto_deadline = None;
                    continue;
                }
                conn.rto = (conn.rto * 2).min(CLIENT_RTO_MAX);
                conn.rto_deadline = Some(now + conn.rto);
                match conn.status {
                    ClientStatus::Resolving => arps.push(conn.dst_ip),
                    ClientStatus::Connecting => {
                        if let Some(mac) = conn.dst_mac {
                            segs.push((mac, conn.dst_ip, Self::client_syn(conn)));
                        }
                    }
                    ClientStatus::Established if !conn.unacked.is_empty() => {
                        if let Some(mac) = conn.dst_mac {
                            let len = conn.unacked.len().min(CLIENT_MSS);
                            let mut seg = TcpSegment::control(
                                conn.src_port,
                                conn.dst_port,
                                conn.snd_una,
                                conn.rcv_nxt,
                                TcpFlags::PSH_ACK,
                            );
                            seg.window = u16::MAX;
                            seg.payload = conn.unacked[..len].to_vec();
                            segs.push((mac, conn.dst_ip, seg));
                        }
                    }
                    _ => {
                        conn.rto_deadline = None;
                    }
                }
                if let Some(deadline) = conn.rto_deadline {
                    next = Some(next.map_or(deadline, |n| n.min(deadline)));
                }
            }
            state.next_client_timer = next;
        }
        let work = arps.len() + segs.len();
        for target in arps {
            self.send_arp_request(target);
        }
        for (mac, ip, seg) in segs {
            self.send_tcp(mac, ip, seg);
        }
        work
    }

    /// Returns the virtual time according to the peer's clock (useful for
    /// harnesses correlating peer counters with trace timestamps).
    pub fn now(&self) -> Duration {
        self.clock.now()
    }
}

/// Handle to a peer running in a background thread.
#[derive(Debug)]
pub struct PeerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl PeerHandle {
    /// Stops the peer thread and waits for it to finish.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for PeerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{Link, LinkConfig};

    struct Harness {
        peer: RemotePeer,
        port: LinkPort,
        local_mac: MacAddr,
        local_ip: Ipv4Addr,
    }

    fn setup() -> Harness {
        let clock = SimClock::realtime();
        let (_link, a, b) = Link::new(LinkConfig::unshaped(), clock.clone());
        let peer = RemotePeer::new(PeerConfig::default(), clock, b);
        Harness {
            peer,
            port: a,
            local_mac: MacAddr::from_index(1),
            local_ip: Ipv4Addr::new(10, 0, 0, 1),
        }
    }

    impl Harness {
        fn send_ipv4(&self, protocol: IpProtocol, payload: Vec<u8>) {
            let packet = Ipv4Packet::new(self.local_ip, self.peer.ip(), protocol, payload);
            let frame = EthernetFrame::new(
                self.peer.mac(),
                self.local_mac,
                EtherType::Ipv4,
                packet.build(),
            );
            self.port.transmit(frame.build());
        }

        fn recv_tcp(&self) -> Option<TcpSegment> {
            let bytes = self.port.poll_receive()?;
            let eth = EthernetFrame::parse(&bytes).ok()?;
            let ip = Ipv4Packet::parse(&eth.payload).ok()?;
            TcpSegment::parse(&ip.payload, ip.src, ip.dst).ok()
        }
    }

    #[test]
    fn answers_arp_requests() {
        let h = setup();
        let req = ArpPacket::request(h.local_mac, h.local_ip, h.peer.ip());
        let frame =
            EthernetFrame::new(MacAddr::BROADCAST, h.local_mac, EtherType::Arp, req.build());
        h.port.transmit(frame.build());
        h.peer.poll_once();
        let reply_bytes = h.port.poll_receive().expect("arp reply expected");
        let reply_frame = EthernetFrame::parse(&reply_bytes).unwrap();
        let reply = ArpPacket::parse(&reply_frame.payload).unwrap();
        assert_eq!(reply.operation, ArpOperation::Reply);
        assert_eq!(reply.sender_ip, h.peer.ip());
        assert_eq!(reply.target_ip, h.local_ip);
    }

    #[test]
    fn answers_pings() {
        let h = setup();
        let ping = IcmpMessage::echo_request(7, 1, b"hello".to_vec());
        h.send_ipv4(IpProtocol::Icmp, ping.build());
        h.peer.poll_once();
        let bytes = h.port.poll_receive().expect("echo reply expected");
        let eth = EthernetFrame::parse(&bytes).unwrap();
        let ip = Ipv4Packet::parse(&eth.payload).unwrap();
        let reply = IcmpMessage::parse(&ip.payload).unwrap();
        assert_eq!(reply.icmp_type, IcmpType::EchoReply);
        assert_eq!(reply.payload, b"hello");
        assert_eq!(h.peer.stats().pings_answered, 1);
    }

    #[test]
    fn answers_dns_queries() {
        let h = setup();
        let query = UdpDatagram::new(5353, DNS_PORT, b"www.example.org".to_vec());
        h.send_ipv4(IpProtocol::Udp, query.build(h.local_ip, h.peer.ip()));
        h.peer.poll_once();
        let bytes = h.port.poll_receive().expect("dns answer expected");
        let eth = EthernetFrame::parse(&bytes).unwrap();
        let ip = Ipv4Packet::parse(&eth.payload).unwrap();
        let reply = UdpDatagram::parse(&ip.payload, ip.src, ip.dst).unwrap();
        assert_eq!(reply.src_port, DNS_PORT);
        assert_eq!(reply.dst_port, 5353);
        assert_eq!(reply.payload, b"answer:www.example.org");
        assert_eq!(h.peer.stats().dns_answered, 1);
    }

    #[test]
    fn tcp_handshake_data_and_teardown() {
        let h = setup();
        // SYN.
        let mut syn = TcpSegment::control(40000, IPERF_PORT, 100, 0, TcpFlags::SYN);
        syn.mss = Some(1460);
        h.send_ipv4(IpProtocol::Tcp, syn.build(h.local_ip, h.peer.ip()));
        h.peer.poll_once();
        let syn_ack = h.recv_tcp().expect("syn-ack expected");
        assert!(syn_ack.flags.syn && syn_ack.flags.ack);
        assert_eq!(syn_ack.ack, 101);

        // ACK + data.
        let ack = TcpSegment::control(
            40000,
            IPERF_PORT,
            101,
            syn_ack.seq.wrapping_add(1),
            TcpFlags::ACK,
        );
        h.send_ipv4(IpProtocol::Tcp, ack.build(h.local_ip, h.peer.ip()));
        let mut data = TcpSegment::control(
            40000,
            IPERF_PORT,
            101,
            syn_ack.seq.wrapping_add(1),
            TcpFlags::PSH_ACK,
        );
        data.payload = vec![0xab; 1000];
        h.send_ipv4(IpProtocol::Tcp, data.build(h.local_ip, h.peer.ip()));
        h.peer.poll_once();
        // Collect the data ACK (the pure ACK generates no reply).
        let data_ack = h.recv_tcp().expect("data ack expected");
        assert_eq!(data_ack.ack, 1101);
        assert_eq!(h.peer.bytes_received_on(IPERF_PORT), 1000);
        assert_eq!(h.peer.established_connections(IPERF_PORT), 1);

        // Retransmission of the same data is not double counted.
        let mut dup = TcpSegment::control(
            40000,
            IPERF_PORT,
            101,
            syn_ack.seq.wrapping_add(1),
            TcpFlags::PSH_ACK,
        );
        dup.payload = vec![0xab; 1000];
        h.send_ipv4(IpProtocol::Tcp, dup.build(h.local_ip, h.peer.ip()));
        h.peer.poll_once();
        let dup_ack = h.recv_tcp().expect("duplicate ack expected");
        assert_eq!(dup_ack.ack, 1101);
        assert_eq!(h.peer.bytes_received_on(IPERF_PORT), 1000);
        assert_eq!(h.peer.stats().tcp_out_of_order, 1);

        // FIN.
        let fin = TcpSegment::control(40000, IPERF_PORT, 1101, dup_ack.seq, TcpFlags::FIN_ACK);
        h.send_ipv4(IpProtocol::Tcp, fin.build(h.local_ip, h.peer.ip()));
        h.peer.poll_once();
        let fin_ack = h.recv_tcp().expect("fin-ack expected");
        assert!(fin_ack.flags.fin && fin_ack.flags.ack);
        assert_eq!(fin_ack.ack, 1102);
        assert_eq!(h.peer.established_connections(IPERF_PORT), 0);
    }

    #[test]
    fn ssh_service_echoes_data() {
        let h = setup();
        let mut syn = TcpSegment::control(50000, SSH_PORT, 0, 0, TcpFlags::SYN);
        syn.mss = Some(1460);
        h.send_ipv4(IpProtocol::Tcp, syn.build(h.local_ip, h.peer.ip()));
        h.peer.poll_once();
        let syn_ack = h.recv_tcp().unwrap();
        let mut data = TcpSegment::control(
            50000,
            SSH_PORT,
            1,
            syn_ack.seq.wrapping_add(1),
            TcpFlags::PSH_ACK,
        );
        data.payload = b"uname -a\n".to_vec();
        h.send_ipv4(IpProtocol::Tcp, data.build(h.local_ip, h.peer.ip()));
        h.peer.poll_once();
        // Expect an ACK and an echoed data segment.
        let mut got_echo = false;
        while let Some(seg) = h.recv_tcp() {
            if seg.payload == b"uname -a\n" {
                got_echo = true;
            }
        }
        assert!(got_echo, "ssh-like service did not echo the request");
    }

    #[test]
    fn syn_to_closed_port_is_reset() {
        let h = setup();
        let syn = TcpSegment::control(40000, 9999, 5, 0, TcpFlags::SYN);
        h.send_ipv4(IpProtocol::Tcp, syn.build(h.local_ip, h.peer.ip()));
        h.peer.poll_once();
        let rst = h.recv_tcp().expect("rst expected");
        assert!(rst.flags.rst);
    }

    #[test]
    fn corrupted_frames_are_counted_not_crashing() {
        let h = setup();
        let mut seg = TcpSegment::control(1, IPERF_PORT, 0, 0, TcpFlags::SYN);
        seg.payload = vec![0u8; 20];
        let mut bytes = seg.build(h.local_ip, h.peer.ip());
        bytes[30] ^= 0xff; // corrupt
        let packet = Ipv4Packet::new(h.local_ip, h.peer.ip(), IpProtocol::Tcp, bytes);
        let frame = EthernetFrame::new(h.peer.mac(), h.local_mac, EtherType::Ipv4, packet.build());
        h.port.transmit(frame.build());
        h.peer.poll_once();
        assert_eq!(h.peer.stats().parse_errors, 1);
        assert!(h.port.poll_receive().is_none());
    }

    /// Two peers on one link: `a` originates client flows towards `b`'s
    /// services, which exercises ARP resolution, the client handshake,
    /// data transfer and retransmission without booting a whole stack.
    fn peer_pair(config: LinkConfig) -> (SimClock, RemotePeer, RemotePeer) {
        let clock = SimClock::with_speedup(50.0);
        let (_link, a_port, b_port) = Link::new(config, clock.clone());
        let a = RemotePeer::new(
            PeerConfig {
                mac: MacAddr::from_index(7),
                ip: Ipv4Addr::new(10, 0, 0, 7),
                tcp_window: u16::MAX,
                tcp_services: vec![],
            },
            clock.clone(),
            a_port,
        );
        let b = RemotePeer::new(PeerConfig::default(), clock.clone(), b_port);
        (clock, a, b)
    }

    /// Polls both peers until `done` holds or the real-time deadline hits.
    fn pump(a: &RemotePeer, b: &RemotePeer, mut done: impl FnMut() -> bool) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while std::time::Instant::now() < deadline {
            if done() {
                return true;
            }
            a.poll_once();
            b.poll_once();
            std::thread::sleep(Duration::from_micros(200));
        }
        false
    }

    #[test]
    fn client_flow_connects_sends_and_receives_the_echo() {
        let (_clock, a, b) = peer_pair(LinkConfig::unshaped());
        a.client_connect(49_000, b.ip(), SSH_PORT);
        assert!(
            pump(&a, &b, || a.client_status(49_000)
                == Some(ClientStatus::Established)),
            "client flow never established"
        );
        assert_eq!(a.client_established_count(), 1);
        assert!(a.client_send(49_000, b"ls -l\n"));
        let mut got = Vec::new();
        assert!(
            pump(&a, &b, || {
                got.extend(a.client_take(49_000));
                got == b"ls -l\n"
            }),
            "echo never arrived, got {got:?}"
        );
        a.client_close(49_000);
        assert_eq!(a.client_status(49_000), None);
    }

    #[test]
    fn client_flow_survives_a_lossy_link_via_retransmission() {
        let (_clock, a, b) = peer_pair(LinkConfig::unshaped().loss_probability(0.3));
        a.client_connect(49_100, b.ip(), IPERF_PORT);
        assert!(
            pump(&a, &b, || a.client_status(49_100)
                == Some(ClientStatus::Established)),
            "handshake never completed over the lossy link"
        );
        let payload = vec![0x5a; 40_000];
        assert!(a.client_send(49_100, &payload));
        assert!(
            pump(&a, &b, || b.bytes_received_on(IPERF_PORT)
                >= payload.len() as u64),
            "bulk data never fully arrived over the lossy link: {} / {}",
            b.bytes_received_on(IPERF_PORT),
            payload.len()
        );
    }

    #[test]
    fn client_flow_to_a_closed_port_fails() {
        let (_clock, a, b) = peer_pair(LinkConfig::unshaped());
        a.client_connect(49_200, b.ip(), 9_999);
        assert!(
            pump(&a, &b, || a.client_status(49_200)
                == Some(ClientStatus::Failed)),
            "RST should fail the flow"
        );
        // Sending on a failed flow is rejected.
        assert!(!a.client_send(49_200, b"nope"));
    }

    #[test]
    fn client_flow_fails_after_retry_exhaustion_when_peer_is_gone() {
        // No listener ever answers (b never polls): the SYN retries back
        // off and the flow eventually fails.
        let (clock, a, b) = peer_pair(LinkConfig::unshaped());
        a.client_connect(49_300, b.ip(), IPERF_PORT);
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while a.client_status(49_300) != Some(ClientStatus::Failed) {
            assert!(
                std::time::Instant::now() < deadline,
                "flow should have failed by now, status {:?}",
                a.client_status(49_300)
            );
            a.poll_once();
            // Answer ARP (so the failure is the handshake, not resolution)
            // but never the SYN.
            while let Some(frame) = b.port.poll_receive() {
                if frame.len() >= 14 && frame[12] == 0x08 && frame[13] == 0x06 {
                    b.handle_frame(&frame);
                }
            }
            clock.sleep(Duration::from_millis(50));
        }
    }

    #[test]
    fn background_thread_answers_traffic() {
        let clock = SimClock::realtime();
        let (_link, a, b) = Link::new(LinkConfig::unshaped(), clock.clone());
        let peer = Arc::new(RemotePeer::new(PeerConfig::default(), clock, b));
        let handle = Arc::clone(&peer).spawn();
        let local_ip = Ipv4Addr::new(10, 0, 0, 1);
        let ping = IcmpMessage::echo_request(1, 1, vec![]);
        let packet = Ipv4Packet::new(local_ip, peer.ip(), IpProtocol::Icmp, ping.build());
        let frame = EthernetFrame::new(
            peer.mac(),
            MacAddr::from_index(1),
            EtherType::Ipv4,
            packet.build(),
        );
        a.transmit(frame.build());
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        let mut got_reply = false;
        while std::time::Instant::now() < deadline && !got_reply {
            got_reply = a.poll_receive().is_some();
            std::thread::sleep(Duration::from_millis(1));
        }
        handle.stop();
        assert!(got_reply, "peer thread did not answer the ping");
    }
}
