//! The remote peer host.
//!
//! The paper's evaluation always involves a second machine: the Linux box
//! running `iperf` that sinks the outgoing TCP stream, the SSH client that
//! reconnects after every injected fault, the remote DNS server answering the
//! resolver's UDP queries.  [`RemotePeer`] is that machine: a small but
//! protocol-correct host attached to the other end of a link that
//!
//! * answers ARP requests and ICMP echo requests,
//! * accepts TCP connections on configured ports and acknowledges (and
//!   counts) everything it receives — the iperf sink,
//! * optionally echoes received TCP data back — the SSH-session stand-in,
//! * answers UDP "DNS" queries on port 53 and echoes UDP on port 7.
//!
//! It deliberately acknowledges cumulatively and immediately, and re-ACKs
//! out-of-order data, so the stack's retransmission logic is exercised the
//! same way a real receiver would.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use newt_kernel::clock::SimClock;

use crate::link::LinkPort;
use crate::wire::{
    ArpOperation, ArpPacket, EtherType, EthernetFrame, IcmpMessage, IcmpType, IpProtocol,
    Ipv4Packet, MacAddr, TcpFlags, TcpSegment, UdpDatagram, MTU,
};

/// Well-known port of the iperf-like bulk sink.
pub const IPERF_PORT: u16 = 5001;
/// Well-known port of the SSH-like echo service.
pub const SSH_PORT: u16 = 22;
/// Well-known port of the DNS-like UDP responder.
pub const DNS_PORT: u16 = 53;
/// Well-known port of the UDP echo service.
pub const UDP_ECHO_PORT: u16 = 7;

/// Configuration of a [`RemotePeer`].
#[derive(Debug, Clone)]
pub struct PeerConfig {
    /// The peer's MAC address.
    pub mac: MacAddr,
    /// The peer's IPv4 address.
    pub ip: Ipv4Addr,
    /// Receive window advertised on TCP connections.
    pub tcp_window: u16,
    /// TCP ports the peer listens on, with `true` marking echo services.
    pub tcp_services: Vec<(u16, bool)>,
}

impl Default for PeerConfig {
    fn default() -> Self {
        PeerConfig {
            mac: MacAddr::from_index(200),
            ip: Ipv4Addr::new(10, 0, 0, 2),
            tcp_window: u16::MAX,
            tcp_services: vec![(IPERF_PORT, false), (SSH_PORT, true)],
        }
    }
}

/// Counters describing the traffic the peer has seen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerStats {
    /// Frames processed.
    pub frames: u64,
    /// TCP payload bytes received in order (goodput).
    pub tcp_bytes_received: u64,
    /// Duplicate or out-of-order TCP segments observed.
    pub tcp_out_of_order: u64,
    /// TCP connections accepted.
    pub tcp_accepted: u64,
    /// ICMP echo requests answered.
    pub pings_answered: u64,
    /// DNS queries answered.
    pub dns_answered: u64,
    /// Frames that failed to parse (corrupted).
    pub parse_errors: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FlowKey {
    remote_ip: Ipv4Addr,
    remote_port: u16,
    local_port: u16,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    SynReceived,
    Established,
    Closed,
}

#[derive(Debug)]
struct PeerConn {
    state: ConnState,
    rcv_nxt: u32,
    snd_nxt: u32,
    bytes_received: u64,
    echo: bool,
    echo_backlog: Vec<u8>,
}

#[derive(Debug)]
struct PeerState {
    conns: HashMap<FlowKey, PeerConn>,
    stats: PeerStats,
}

/// The simulated remote host.  See the module documentation.
#[derive(Debug)]
pub struct RemotePeer {
    config: PeerConfig,
    clock: SimClock,
    port: LinkPort,
    state: Mutex<PeerState>,
}

impl RemotePeer {
    /// Creates a peer attached to one end of a link.
    pub fn new(config: PeerConfig, clock: SimClock, port: LinkPort) -> Self {
        RemotePeer {
            config,
            clock,
            port,
            state: Mutex::new(PeerState {
                conns: HashMap::new(),
                stats: PeerStats::default(),
            }),
        }
    }

    /// Returns the peer's IPv4 address.
    pub fn ip(&self) -> Ipv4Addr {
        self.config.ip
    }

    /// Returns the peer's MAC address.
    pub fn mac(&self) -> MacAddr {
        self.config.mac
    }

    /// Returns traffic counters.
    pub fn stats(&self) -> PeerStats {
        self.state.lock().stats
    }

    /// Returns the total TCP payload bytes received in order on `port`.
    pub fn bytes_received_on(&self, port: u16) -> u64 {
        self.state
            .lock()
            .conns
            .iter()
            .filter(|(k, _)| k.local_port == port)
            .map(|(_, c)| c.bytes_received)
            .sum()
    }

    /// Returns the number of currently established connections to `port`.
    pub fn established_connections(&self, port: u16) -> usize {
        self.state
            .lock()
            .conns
            .iter()
            .filter(|(k, c)| k.local_port == port && c.state == ConnState::Established)
            .count()
    }

    /// Processes every frame currently waiting at the peer's link port.
    /// Returns the number of frames handled.
    pub fn poll_once(&self) -> usize {
        let mut handled = 0;
        while let Some(frame) = self.port.poll_receive() {
            handled += 1;
            self.handle_frame(&frame);
        }
        handled
    }

    /// Runs the peer in a background thread until the returned handle is
    /// stopped.
    pub fn spawn(self: Arc<Self>) -> PeerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = Arc::clone(&stop);
        let peer = Arc::clone(&self);
        let thread = std::thread::Builder::new()
            .name("newtos-remote-peer".to_string())
            .spawn(move || {
                while !stop_thread.load(Ordering::Acquire) {
                    if peer.poll_once() == 0 {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
            })
            .expect("spawning the remote peer thread");
        PeerHandle {
            stop,
            thread: Some(thread),
        }
    }

    fn send_frame(&self, dst_mac: MacAddr, ethertype: EtherType, payload: Vec<u8>) {
        let frame = EthernetFrame::new(dst_mac, self.config.mac, ethertype, payload);
        self.port.transmit(frame.build());
    }

    fn send_ipv4(
        &self,
        dst_mac: MacAddr,
        dst_ip: Ipv4Addr,
        protocol: IpProtocol,
        payload: Vec<u8>,
    ) {
        let packet = Ipv4Packet::new(self.config.ip, dst_ip, protocol, payload);
        self.send_frame(dst_mac, EtherType::Ipv4, packet.build());
    }

    fn handle_frame(&self, bytes: &[u8]) {
        {
            self.state.lock().stats.frames += 1;
        }
        let Ok(frame) = EthernetFrame::parse(bytes) else {
            self.state.lock().stats.parse_errors += 1;
            return;
        };
        match frame.ethertype {
            EtherType::Arp => self.handle_arp(&frame),
            EtherType::Ipv4 => self.handle_ipv4(&frame),
        }
    }

    fn handle_arp(&self, frame: &EthernetFrame) {
        let Ok(arp) = ArpPacket::parse(&frame.payload) else {
            self.state.lock().stats.parse_errors += 1;
            return;
        };
        if arp.operation == ArpOperation::Request && arp.target_ip == self.config.ip {
            let reply = ArpPacket::reply_to(&arp, self.config.mac, self.config.ip);
            self.send_frame(arp.sender_mac, EtherType::Arp, reply.build());
        }
    }

    fn handle_ipv4(&self, frame: &EthernetFrame) {
        let Ok(packet) = Ipv4Packet::parse(&frame.payload) else {
            self.state.lock().stats.parse_errors += 1;
            return;
        };
        if packet.dst != self.config.ip {
            return;
        }
        match packet.protocol {
            IpProtocol::Icmp => self.handle_icmp(frame, &packet),
            IpProtocol::Udp => self.handle_udp(frame, &packet),
            IpProtocol::Tcp => self.handle_tcp(frame, &packet),
        }
    }

    fn handle_icmp(&self, frame: &EthernetFrame, packet: &Ipv4Packet) {
        let Ok(icmp) = IcmpMessage::parse(&packet.payload) else {
            self.state.lock().stats.parse_errors += 1;
            return;
        };
        if icmp.icmp_type == IcmpType::EchoRequest {
            self.state.lock().stats.pings_answered += 1;
            let reply = IcmpMessage::reply_to(&icmp);
            self.send_ipv4(frame.src, packet.src, IpProtocol::Icmp, reply.build());
        }
    }

    fn handle_udp(&self, frame: &EthernetFrame, packet: &Ipv4Packet) {
        let Ok(dgram) = UdpDatagram::parse(&packet.payload, packet.src, packet.dst) else {
            self.state.lock().stats.parse_errors += 1;
            return;
        };
        let reply_payload = match dgram.dst_port {
            DNS_PORT => {
                self.state.lock().stats.dns_answered += 1;
                let mut answer = b"answer:".to_vec();
                answer.extend_from_slice(&dgram.payload);
                Some(answer)
            }
            UDP_ECHO_PORT => Some(dgram.payload.clone()),
            _ => None,
        };
        if let Some(payload) = reply_payload {
            let reply = UdpDatagram::new(dgram.dst_port, dgram.src_port, payload);
            self.send_ipv4(
                frame.src,
                packet.src,
                IpProtocol::Udp,
                reply.build(self.config.ip, packet.src),
            );
        }
    }

    fn handle_tcp(&self, frame: &EthernetFrame, packet: &Ipv4Packet) {
        let Ok(seg) = TcpSegment::parse(&packet.payload, packet.src, packet.dst) else {
            self.state.lock().stats.parse_errors += 1;
            return;
        };
        let key = FlowKey {
            remote_ip: packet.src,
            remote_port: seg.src_port,
            local_port: seg.dst_port,
        };
        let listening = self
            .config
            .tcp_services
            .iter()
            .find(|(p, _)| *p == seg.dst_port)
            .copied();

        let mut replies: Vec<TcpSegment> = Vec::new();
        {
            let mut state = self.state.lock();
            let PeerState { conns, stats } = &mut *state;
            if seg.flags.rst {
                conns.remove(&key);
                return;
            }
            if seg.flags.syn && !seg.flags.ack {
                let Some((_, echo)) = listening else {
                    // Not listening: reset.
                    let mut rst = TcpSegment::control(
                        seg.dst_port,
                        seg.src_port,
                        0,
                        seg.seq.wrapping_add(1),
                        TcpFlags::RST,
                    );
                    rst.window = 0;
                    replies.push(rst);
                    drop(state);
                    for r in replies {
                        self.send_tcp(frame.src, packet.src, r);
                    }
                    return;
                };
                let isn = 0x7000_0000u32.wrapping_add(seg.seq);
                let conn = PeerConn {
                    state: ConnState::SynReceived,
                    rcv_nxt: seg.seq.wrapping_add(1),
                    snd_nxt: isn.wrapping_add(1),
                    bytes_received: 0,
                    echo,
                    echo_backlog: Vec::new(),
                };
                stats.tcp_accepted += 1;
                let mut syn_ack = TcpSegment::control(
                    seg.dst_port,
                    seg.src_port,
                    isn,
                    conn.rcv_nxt,
                    TcpFlags::SYN_ACK,
                );
                syn_ack.window = self.config.tcp_window;
                syn_ack.mss = Some((MTU - 40) as u16);
                conns.insert(key, conn);
                replies.push(syn_ack);
            } else if let Some(conn) = conns.get_mut(&key) {
                if conn.state == ConnState::SynReceived && seg.flags.ack {
                    conn.state = ConnState::Established;
                }
                let mut ack_due = false;
                if !seg.payload.is_empty() {
                    if seg.seq == conn.rcv_nxt {
                        conn.rcv_nxt = conn.rcv_nxt.wrapping_add(seg.payload.len() as u32);
                        conn.bytes_received += seg.payload.len() as u64;
                        stats.tcp_bytes_received += seg.payload.len() as u64;
                        if conn.echo {
                            conn.echo_backlog.extend_from_slice(&seg.payload);
                        }
                    } else {
                        stats.tcp_out_of_order += 1;
                    }
                    ack_due = true;
                }
                if seg.flags.fin && seg.seq == conns.get(&key).expect("present").rcv_nxt {
                    let conn = conns.get_mut(&key).expect("present");
                    conn.rcv_nxt = conn.rcv_nxt.wrapping_add(1);
                    conn.state = ConnState::Closed;
                    let mut fin_ack = TcpSegment::control(
                        seg.dst_port,
                        seg.src_port,
                        conn.snd_nxt,
                        conn.rcv_nxt,
                        TcpFlags::FIN_ACK,
                    );
                    fin_ack.window = self.config.tcp_window;
                    conn.snd_nxt = conn.snd_nxt.wrapping_add(1);
                    replies.push(fin_ack);
                    ack_due = false;
                }
                if ack_due {
                    let conn = conns.get(&key).expect("present");
                    let mut ack = TcpSegment::control(
                        seg.dst_port,
                        seg.src_port,
                        conn.snd_nxt,
                        conn.rcv_nxt,
                        TcpFlags::ACK,
                    );
                    ack.window = self.config.tcp_window;
                    replies.push(ack);
                }
                // Flush echo data (the SSH-like service answering the client).
                let conn = conns.get_mut(&key).expect("present");
                if conn.state == ConnState::Established && !conn.echo_backlog.is_empty() {
                    let data: Vec<u8> = conn.echo_backlog.drain(..).collect();
                    for chunk in data.chunks(MTU - 40) {
                        let mut reply = TcpSegment::control(
                            seg.dst_port,
                            seg.src_port,
                            conn.snd_nxt,
                            conn.rcv_nxt,
                            TcpFlags::PSH_ACK,
                        );
                        reply.window = self.config.tcp_window;
                        reply.payload = chunk.to_vec();
                        conn.snd_nxt = conn.snd_nxt.wrapping_add(chunk.len() as u32);
                        replies.push(reply);
                    }
                }
            } else if seg.flags.ack && !seg.flags.syn {
                // Segment for a connection we do not know (e.g. the stack
                // kept a connection across our restart) — reset it.
                let rst =
                    TcpSegment::control(seg.dst_port, seg.src_port, seg.ack, 0, TcpFlags::RST);
                replies.push(rst);
            }
        }
        for reply in replies {
            self.send_tcp(frame.src, packet.src, reply);
        }
    }

    fn send_tcp(&self, dst_mac: MacAddr, dst_ip: Ipv4Addr, segment: TcpSegment) {
        let bytes = segment.build(self.config.ip, dst_ip);
        self.send_ipv4(dst_mac, dst_ip, IpProtocol::Tcp, bytes);
    }

    /// Returns the virtual time according to the peer's clock (useful for
    /// harnesses correlating peer counters with trace timestamps).
    pub fn now(&self) -> Duration {
        self.clock.now()
    }
}

/// Handle to a peer running in a background thread.
#[derive(Debug)]
pub struct PeerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl PeerHandle {
    /// Stops the peer thread and waits for it to finish.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for PeerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{Link, LinkConfig};

    struct Harness {
        peer: RemotePeer,
        port: LinkPort,
        local_mac: MacAddr,
        local_ip: Ipv4Addr,
    }

    fn setup() -> Harness {
        let clock = SimClock::realtime();
        let (_link, a, b) = Link::new(LinkConfig::unshaped(), clock.clone());
        let peer = RemotePeer::new(PeerConfig::default(), clock, b);
        Harness {
            peer,
            port: a,
            local_mac: MacAddr::from_index(1),
            local_ip: Ipv4Addr::new(10, 0, 0, 1),
        }
    }

    impl Harness {
        fn send_ipv4(&self, protocol: IpProtocol, payload: Vec<u8>) {
            let packet = Ipv4Packet::new(self.local_ip, self.peer.ip(), protocol, payload);
            let frame = EthernetFrame::new(
                self.peer.mac(),
                self.local_mac,
                EtherType::Ipv4,
                packet.build(),
            );
            self.port.transmit(frame.build());
        }

        fn recv_tcp(&self) -> Option<TcpSegment> {
            let bytes = self.port.poll_receive()?;
            let eth = EthernetFrame::parse(&bytes).ok()?;
            let ip = Ipv4Packet::parse(&eth.payload).ok()?;
            TcpSegment::parse(&ip.payload, ip.src, ip.dst).ok()
        }
    }

    #[test]
    fn answers_arp_requests() {
        let h = setup();
        let req = ArpPacket::request(h.local_mac, h.local_ip, h.peer.ip());
        let frame =
            EthernetFrame::new(MacAddr::BROADCAST, h.local_mac, EtherType::Arp, req.build());
        h.port.transmit(frame.build());
        h.peer.poll_once();
        let reply_bytes = h.port.poll_receive().expect("arp reply expected");
        let reply_frame = EthernetFrame::parse(&reply_bytes).unwrap();
        let reply = ArpPacket::parse(&reply_frame.payload).unwrap();
        assert_eq!(reply.operation, ArpOperation::Reply);
        assert_eq!(reply.sender_ip, h.peer.ip());
        assert_eq!(reply.target_ip, h.local_ip);
    }

    #[test]
    fn answers_pings() {
        let h = setup();
        let ping = IcmpMessage::echo_request(7, 1, b"hello".to_vec());
        h.send_ipv4(IpProtocol::Icmp, ping.build());
        h.peer.poll_once();
        let bytes = h.port.poll_receive().expect("echo reply expected");
        let eth = EthernetFrame::parse(&bytes).unwrap();
        let ip = Ipv4Packet::parse(&eth.payload).unwrap();
        let reply = IcmpMessage::parse(&ip.payload).unwrap();
        assert_eq!(reply.icmp_type, IcmpType::EchoReply);
        assert_eq!(reply.payload, b"hello");
        assert_eq!(h.peer.stats().pings_answered, 1);
    }

    #[test]
    fn answers_dns_queries() {
        let h = setup();
        let query = UdpDatagram::new(5353, DNS_PORT, b"www.example.org".to_vec());
        h.send_ipv4(IpProtocol::Udp, query.build(h.local_ip, h.peer.ip()));
        h.peer.poll_once();
        let bytes = h.port.poll_receive().expect("dns answer expected");
        let eth = EthernetFrame::parse(&bytes).unwrap();
        let ip = Ipv4Packet::parse(&eth.payload).unwrap();
        let reply = UdpDatagram::parse(&ip.payload, ip.src, ip.dst).unwrap();
        assert_eq!(reply.src_port, DNS_PORT);
        assert_eq!(reply.dst_port, 5353);
        assert_eq!(reply.payload, b"answer:www.example.org");
        assert_eq!(h.peer.stats().dns_answered, 1);
    }

    #[test]
    fn tcp_handshake_data_and_teardown() {
        let h = setup();
        // SYN.
        let mut syn = TcpSegment::control(40000, IPERF_PORT, 100, 0, TcpFlags::SYN);
        syn.mss = Some(1460);
        h.send_ipv4(IpProtocol::Tcp, syn.build(h.local_ip, h.peer.ip()));
        h.peer.poll_once();
        let syn_ack = h.recv_tcp().expect("syn-ack expected");
        assert!(syn_ack.flags.syn && syn_ack.flags.ack);
        assert_eq!(syn_ack.ack, 101);

        // ACK + data.
        let ack = TcpSegment::control(
            40000,
            IPERF_PORT,
            101,
            syn_ack.seq.wrapping_add(1),
            TcpFlags::ACK,
        );
        h.send_ipv4(IpProtocol::Tcp, ack.build(h.local_ip, h.peer.ip()));
        let mut data = TcpSegment::control(
            40000,
            IPERF_PORT,
            101,
            syn_ack.seq.wrapping_add(1),
            TcpFlags::PSH_ACK,
        );
        data.payload = vec![0xab; 1000];
        h.send_ipv4(IpProtocol::Tcp, data.build(h.local_ip, h.peer.ip()));
        h.peer.poll_once();
        // Collect the data ACK (the pure ACK generates no reply).
        let data_ack = h.recv_tcp().expect("data ack expected");
        assert_eq!(data_ack.ack, 1101);
        assert_eq!(h.peer.bytes_received_on(IPERF_PORT), 1000);
        assert_eq!(h.peer.established_connections(IPERF_PORT), 1);

        // Retransmission of the same data is not double counted.
        let mut dup = TcpSegment::control(
            40000,
            IPERF_PORT,
            101,
            syn_ack.seq.wrapping_add(1),
            TcpFlags::PSH_ACK,
        );
        dup.payload = vec![0xab; 1000];
        h.send_ipv4(IpProtocol::Tcp, dup.build(h.local_ip, h.peer.ip()));
        h.peer.poll_once();
        let dup_ack = h.recv_tcp().expect("duplicate ack expected");
        assert_eq!(dup_ack.ack, 1101);
        assert_eq!(h.peer.bytes_received_on(IPERF_PORT), 1000);
        assert_eq!(h.peer.stats().tcp_out_of_order, 1);

        // FIN.
        let fin = TcpSegment::control(40000, IPERF_PORT, 1101, dup_ack.seq, TcpFlags::FIN_ACK);
        h.send_ipv4(IpProtocol::Tcp, fin.build(h.local_ip, h.peer.ip()));
        h.peer.poll_once();
        let fin_ack = h.recv_tcp().expect("fin-ack expected");
        assert!(fin_ack.flags.fin && fin_ack.flags.ack);
        assert_eq!(fin_ack.ack, 1102);
        assert_eq!(h.peer.established_connections(IPERF_PORT), 0);
    }

    #[test]
    fn ssh_service_echoes_data() {
        let h = setup();
        let mut syn = TcpSegment::control(50000, SSH_PORT, 0, 0, TcpFlags::SYN);
        syn.mss = Some(1460);
        h.send_ipv4(IpProtocol::Tcp, syn.build(h.local_ip, h.peer.ip()));
        h.peer.poll_once();
        let syn_ack = h.recv_tcp().unwrap();
        let mut data = TcpSegment::control(
            50000,
            SSH_PORT,
            1,
            syn_ack.seq.wrapping_add(1),
            TcpFlags::PSH_ACK,
        );
        data.payload = b"uname -a\n".to_vec();
        h.send_ipv4(IpProtocol::Tcp, data.build(h.local_ip, h.peer.ip()));
        h.peer.poll_once();
        // Expect an ACK and an echoed data segment.
        let mut got_echo = false;
        while let Some(seg) = h.recv_tcp() {
            if seg.payload == b"uname -a\n" {
                got_echo = true;
            }
        }
        assert!(got_echo, "ssh-like service did not echo the request");
    }

    #[test]
    fn syn_to_closed_port_is_reset() {
        let h = setup();
        let syn = TcpSegment::control(40000, 9999, 5, 0, TcpFlags::SYN);
        h.send_ipv4(IpProtocol::Tcp, syn.build(h.local_ip, h.peer.ip()));
        h.peer.poll_once();
        let rst = h.recv_tcp().expect("rst expected");
        assert!(rst.flags.rst);
    }

    #[test]
    fn corrupted_frames_are_counted_not_crashing() {
        let h = setup();
        let mut seg = TcpSegment::control(1, IPERF_PORT, 0, 0, TcpFlags::SYN);
        seg.payload = vec![0u8; 20];
        let mut bytes = seg.build(h.local_ip, h.peer.ip());
        bytes[30] ^= 0xff; // corrupt
        let packet = Ipv4Packet::new(h.local_ip, h.peer.ip(), IpProtocol::Tcp, bytes);
        let frame = EthernetFrame::new(h.peer.mac(), h.local_mac, EtherType::Ipv4, packet.build());
        h.port.transmit(frame.build());
        h.peer.poll_once();
        assert_eq!(h.peer.stats().parse_errors, 1);
        assert!(h.port.poll_receive().is_none());
    }

    #[test]
    fn background_thread_answers_traffic() {
        let clock = SimClock::realtime();
        let (_link, a, b) = Link::new(LinkConfig::unshaped(), clock.clone());
        let peer = Arc::new(RemotePeer::new(PeerConfig::default(), clock, b));
        let handle = Arc::clone(&peer).spawn();
        let local_ip = Ipv4Addr::new(10, 0, 0, 1);
        let ping = IcmpMessage::echo_request(1, 1, vec![]);
        let packet = Ipv4Packet::new(local_ip, peer.ip(), IpProtocol::Icmp, ping.build());
        let frame = EthernetFrame::new(
            peer.mac(),
            MacAddr::from_index(1),
            EtherType::Ipv4,
            packet.build(),
        );
        a.transmit(frame.build());
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        let mut got_reply = false;
        while std::time::Instant::now() < deadline && !got_reply {
            got_reply = a.poll_receive().is_some();
            std::thread::sleep(Duration::from_millis(1));
        }
        handle.stop();
        assert!(got_reply, "peer thread did not answer the ping");
    }
}
