//! Network substrate for the NewtOS reproduction: wire formats, a simulated
//! gigabit NIC, links, a remote peer host and trace capture.
//!
//! The paper evaluates the decomposed stack on real hardware — Intel PRO/1000
//! adapters, gigabit links, a Linux box running iperf and an SSH client on
//! the other side, tcpdump capturing the traffic.  None of that hardware is
//! available to a library reproduction, so this crate provides simulated
//! equivalents that exercise the same code paths:
//!
//! * [`wire`] — Ethernet II, ARP, IPv4, ICMP, UDP and TCP parsing/building
//!   with strict checksum verification;
//! * [`nic`] — an e1000-like adapter with descriptor rings, TSO, checksum
//!   offload, multiple RSS queue pairs, and the reset-loses-descriptors
//!   quirk that forces a device reset (and a multi-second link outage) when
//!   the IP server crashes;
//! * [`rss`] — receive-side scaling: the Toeplitz flow hash, the
//!   indirection table and the flow-director (ATR) exact-match table that
//!   steer frames to queues;
//! * [`link`] — bandwidth-shaped, lossy point-to-point links over the
//!   virtual clock;
//! * [`peer`] — the remote host: ARP/ICMP responder, iperf-like TCP sink,
//!   SSH-like echo service, DNS-like UDP responder;
//! * [`trace`] — frame capture with per-interval bitrate extraction (the
//!   tcpdump/Wireshark stand-in used for Figures 4 and 5);
//! * [`pktgen`] — deterministic payload patterns for end-to-end data
//!   integrity checks.
//!
//! # Example: ping the peer through a simulated link
//!
//! ```
//! use newt_kernel::clock::SimClock;
//! use newt_net::link::{Link, LinkConfig};
//! use newt_net::peer::{PeerConfig, RemotePeer};
//! use newt_net::wire::{EtherType, EthernetFrame, IcmpMessage, IpProtocol, Ipv4Packet, MacAddr};
//! use std::net::Ipv4Addr;
//!
//! let clock = SimClock::realtime();
//! let (_link, our_port, peer_port) = Link::new(LinkConfig::gigabit(), clock.clone());
//! let peer = RemotePeer::new(PeerConfig::default(), clock.clone(), peer_port);
//!
//! // Send an ICMP echo request to the peer...
//! let ping = IcmpMessage::echo_request(1, 1, b"are you there?".to_vec());
//! let packet = Ipv4Packet::new(Ipv4Addr::new(10, 0, 0, 1), peer.ip(), IpProtocol::Icmp, ping.build());
//! let frame = EthernetFrame::new(peer.mac(), MacAddr::from_index(1), EtherType::Ipv4, packet.build());
//! our_port.transmit(frame.build());
//!
//! // ...let the peer answer, and wait for the reply to propagate through the
//! // shaped link.
//! clock.sleep(std::time::Duration::from_millis(1));
//! peer.poll_once();
//! clock.sleep(std::time::Duration::from_millis(1));
//! assert!(our_port.poll_receive().is_some());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gro;
pub mod link;
pub mod nic;
pub mod peer;
pub mod pktgen;
pub mod rss;
pub mod trace;
pub mod wire;

pub use link::{Link, LinkConfig, LinkPort, LinkSide, LinkStats};
pub use nic::{Nic, NicConfig, NicError, NicStats};
pub use peer::{PeerConfig, PeerHandle, PeerStats, RemotePeer};
pub use pktgen::PayloadPattern;
pub use rss::{FlowKey, RssKey, RssSteering};
pub use trace::{BitratePoint, TraceCapture, TraceRecord};
