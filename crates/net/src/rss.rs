//! Receive-side scaling: Toeplitz flow hashing and per-queue steering.
//!
//! Multigigabit adapters spread inbound frames over several RX descriptor
//! rings so that independent flows can be serviced by independent cores —
//! the hardware half of the paper's scalability argument ("run multiple
//! stack instances side by side", §VI).  This module models the two
//! steering mechanisms such adapters combine:
//!
//! * **RSS**: a Toeplitz hash over the IPv4/TCP/UDP 4-tuple, reduced
//!   through a 128-entry indirection table to a queue index.  The hash is a
//!   pure function of the tuple and the (fixed) key, so a flow's packets
//!   always land on the same queue — and keep doing so across driver or
//!   stack-replica restarts, because nothing about the mapping is dynamic.
//! * **A flow-director table** (Intel ATR style): the adapter samples
//!   *outgoing* frames and records "replies to this flow belong on the
//!   queue it was transmitted from".  This exact-match table overrides the
//!   Toeplitz fallback and is what pins a connection to the stack replica
//!   that owns its socket, no matter which local port the transport chose.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::wire::{EtherType, IpProtocol, ETHERNET_HEADER_LEN};

/// The largest number of RX/TX queue pairs an adapter exposes (and hence
/// the largest number of stack shards a NIC can feed).
pub const MAX_QUEUES: usize = 8;

/// Number of entries in the RSS indirection table (hash bits 0..6, as on
/// real e1000/igb parts).
pub const INDIRECTION_ENTRIES: usize = 128;

/// The 40-byte Toeplitz hash key programmed into the adapter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RssKey(pub [u8; 40]);

impl Default for RssKey {
    /// The canonical verification key from the Microsoft RSS specification,
    /// which every driver ships as its default.
    fn default() -> Self {
        RssKey([
            0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3,
            0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3,
            0x80, 0x30, 0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
        ])
    }
}

/// Computes the Toeplitz hash of `data` under `key` (bit-serial definition
/// from the RSS specification; `data` is at most 12 bytes for an IPv4
/// 4-tuple, well within the 40-byte key).
pub fn toeplitz_hash(key: &RssKey, data: &[u8]) -> u32 {
    debug_assert!(data.len() + 4 <= key.0.len());
    // The sliding 32-bit window into the key, advanced one bit at a time.
    let mut window = u32::from_be_bytes([key.0[0], key.0[1], key.0[2], key.0[3]]);
    let mut next_key_bit = 32usize;
    let mut hash = 0u32;
    for &byte in data {
        for bit in (0..8).rev() {
            if (byte >> bit) & 1 == 1 {
                hash ^= window;
            }
            let incoming = (key.0[next_key_bit / 8] >> (7 - next_key_bit % 8)) & 1;
            window = (window << 1) | incoming as u32;
            next_key_bit += 1;
        }
    }
    hash
}

/// The IPv4 transport 4-tuple a frame is steered by, seen from the wire
/// (source first), so an inbound frame and the *reverse* of the matching
/// outbound frame produce the same key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source IPv4 address.
    pub src: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst: Ipv4Addr,
    /// Transport source port.
    pub src_port: u16,
    /// Transport destination port.
    pub dst_port: u16,
}

impl FlowKey {
    /// Returns the key of the opposite direction of this flow.
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }

    /// Serialises the tuple in the order the RSS specification hashes it:
    /// source address, destination address, source port, destination port.
    pub fn hash_input(&self) -> [u8; 12] {
        let mut out = [0u8; 12];
        out[0..4].copy_from_slice(&self.src.octets());
        out[4..8].copy_from_slice(&self.dst.octets());
        out[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        out[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        out
    }
}

/// Extracts the steering tuple from a raw Ethernet frame.  Returns `None`
/// for anything that is not IPv4 TCP/UDP (ARP, ICMP, runts); such frames
/// fall back to queue 0.
pub fn flow_of_frame(frame: &[u8]) -> Option<FlowKey> {
    if frame.len() < ETHERNET_HEADER_LEN + 20 {
        return None;
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != EtherType::Ipv4.as_u16() {
        return None;
    }
    let ip = ETHERNET_HEADER_LEN;
    let ihl = ((frame[ip] & 0x0f) as usize) * 4;
    let protocol = frame[ip + 9];
    if protocol != IpProtocol::Tcp.as_u8() && protocol != IpProtocol::Udp.as_u8() {
        return None;
    }
    let transport = ip + ihl;
    if frame.len() < transport + 4 {
        return None;
    }
    Some(FlowKey {
        src: Ipv4Addr::new(
            frame[ip + 12],
            frame[ip + 13],
            frame[ip + 14],
            frame[ip + 15],
        ),
        dst: Ipv4Addr::new(
            frame[ip + 16],
            frame[ip + 17],
            frame[ip + 18],
            frame[ip + 19],
        ),
        src_port: u16::from_be_bytes([frame[transport], frame[transport + 1]]),
        dst_port: u16::from_be_bytes([frame[transport + 2], frame[transport + 3]]),
    })
}

/// Returns `true` for an IPv4 TCP connection-opening segment (SYN set,
/// ACK clear): the one inbound frame class that can legitimately arrive
/// before any flow-director pin exists.  Drivers broadcast such frames to
/// every stack shard so whichever replica holds the listening socket can
/// answer.
pub fn is_handshake_syn(frame: &[u8]) -> bool {
    if frame.len() < ETHERNET_HEADER_LEN + 20 {
        return false;
    }
    let ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    if ethertype != EtherType::Ipv4.as_u16() {
        return false;
    }
    let ip = ETHERNET_HEADER_LEN;
    let ihl = ((frame[ip] & 0x0f) as usize) * 4;
    if ihl < 20 || frame[ip + 9] != IpProtocol::Tcp.as_u8() {
        return false;
    }
    let flags_at = ip + ihl + 13;
    frame.len() > flags_at && frame[flags_at] & 0x12 == 0x02
}

/// Upper bound on the flow-director table, mirroring the fixed on-chip
/// SRAM of real adapters; when it fills up the table is flushed and
/// relearned from subsequent transmits.
const FLOW_DIRECTOR_CAPACITY: usize = 8192;

/// The steering logic of a multi-queue adapter: Toeplitz RSS with an
/// indirection table, overridden by the sampled flow-director table.
#[derive(Debug, Clone)]
pub struct RssSteering {
    key: RssKey,
    queues: usize,
    indirection: [u8; INDIRECTION_ENTRIES],
    flow_director: HashMap<FlowKey, u8>,
}

impl RssSteering {
    /// Creates the steering state for `queues` queue pairs (clamped to
    /// 1..=[`MAX_QUEUES`]); the indirection table is filled round-robin as
    /// drivers conventionally program it.
    pub fn new(key: RssKey, queues: usize) -> Self {
        let queues = queues.clamp(1, MAX_QUEUES);
        let mut indirection = [0u8; INDIRECTION_ENTRIES];
        for (i, slot) in indirection.iter_mut().enumerate() {
            *slot = (i % queues) as u8;
        }
        RssSteering {
            key,
            queues,
            indirection,
            flow_director: HashMap::new(),
        }
    }

    /// Returns the number of queue pairs.
    pub fn queues(&self) -> usize {
        self.queues
    }

    /// Returns the Toeplitz hash of a flow under this adapter's key.
    pub fn hash(&self, flow: &FlowKey) -> u32 {
        toeplitz_hash(&self.key, &flow.hash_input())
    }

    /// Returns the RX queue for an inbound flow: an exact flow-director
    /// match wins, otherwise the Toeplitz hash indexes the indirection
    /// table.
    pub fn queue_for_flow(&self, flow: &FlowKey) -> usize {
        if let Some(&queue) = self.flow_director.get(flow) {
            return queue as usize;
        }
        self.queue_by_hash(flow)
    }

    /// Returns the queue the plain Toeplitz/indirection path picks,
    /// ignoring the flow director (what a flow's *first* inbound packet
    /// experiences).
    pub fn queue_by_hash(&self, flow: &FlowKey) -> usize {
        let hash = self.hash(flow);
        self.indirection[(hash as usize) % INDIRECTION_ENTRIES] as usize
    }

    /// Steers a raw inbound frame; non-IPv4/TCP/UDP traffic goes to
    /// queue 0.
    pub fn queue_for_frame(&self, frame: &[u8]) -> usize {
        self.steer_frame(frame).0
    }

    /// Steers a raw inbound frame and reports whether the decision came
    /// from a flow-director exact match (`true`) or the Toeplitz fallback.
    pub fn steer_frame(&self, frame: &[u8]) -> (usize, bool) {
        match flow_of_frame(frame) {
            Some(flow) => match self.flow_director.get(&flow) {
                Some(&queue) => (queue as usize, true),
                None => (self.queue_by_hash(&flow), false),
            },
            None => (0, false),
        }
    }

    /// Samples an outbound frame transmitted on `queue` (flow director /
    /// ATR): replies to this flow are pinned to the same queue.
    pub fn note_transmit(&mut self, frame: &[u8], queue: usize) {
        if self.queues <= 1 || queue >= self.queues {
            return;
        }
        if let Some(flow) = flow_of_frame(frame) {
            if self.flow_director.len() >= FLOW_DIRECTOR_CAPACITY {
                self.flow_director.clear();
            }
            self.flow_director.insert(flow.reversed(), queue as u8);
        }
    }

    /// Drops every flow-director entry pinned to `queue` (the per-queue
    /// reset used when the stack replica behind the queue is reincarnated).
    pub fn forget_queue(&mut self, queue: usize) {
        self.flow_director.retain(|_, &mut q| q as usize != queue);
    }

    /// Drops the whole flow-director table (full device reset).
    pub fn forget_all(&mut self) {
        self.flow_director.clear();
    }

    /// Returns the number of pinned flows.
    pub fn pinned_flows(&self) -> usize {
        self.flow_director.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{EthernetFrame, Ipv4Packet, MacAddr, UdpDatagram};

    fn flow(sport: u16, dport: u16) -> FlowKey {
        FlowKey {
            src: Ipv4Addr::new(10, 0, 0, 2),
            dst: Ipv4Addr::new(10, 0, 0, 1),
            src_port: sport,
            dst_port: dport,
        }
    }

    #[test]
    fn toeplitz_matches_the_specification_vectors() {
        // Verification vectors from the Microsoft RSS specification
        // (IPv4 with ports).
        let key = RssKey::default();
        let cases: [(Ipv4Addr, u16, Ipv4Addr, u16, u32); 2] = [
            (
                // source 66.9.149.187:2794 -> destination 161.142.100.80:1766
                Ipv4Addr::new(66, 9, 149, 187),
                2794,
                Ipv4Addr::new(161, 142, 100, 80),
                1766,
                0x51ccc178,
            ),
            (
                Ipv4Addr::new(199, 92, 111, 2),
                14230,
                Ipv4Addr::new(65, 69, 140, 83),
                4739,
                0xc626b0ea,
            ),
        ];
        for (src, src_port, dst, dst_port, expected) in cases {
            let key_input = FlowKey {
                src,
                dst,
                src_port,
                dst_port,
            };
            assert_eq!(
                toeplitz_hash(&key, &key_input.hash_input()),
                expected,
                "hash mismatch for {src}:{src_port} -> {dst}:{dst_port}"
            );
        }
    }

    #[test]
    fn same_tuple_same_shard_across_every_shard_count() {
        // The RSS determinism contract: for every shard count 1..=8 the
        // mapping of a tuple is a pure function — recomputing it (as a
        // reincarnated driver or stack replica would) never moves the flow.
        for queues in 1..=MAX_QUEUES {
            let a = RssSteering::new(RssKey::default(), queues);
            let b = RssSteering::new(RssKey::default(), queues);
            for port in 0..200u16 {
                let f = flow(40_000 + port, 5001);
                assert_eq!(a.queue_for_flow(&f), b.queue_for_flow(&f));
                assert!(a.queue_for_flow(&f) < queues);
            }
        }
    }

    #[test]
    fn single_queue_steers_everything_to_queue_zero() {
        let s = RssSteering::new(RssKey::default(), 1);
        for port in 0..50u16 {
            assert_eq!(s.queue_for_flow(&flow(1000 + port, 80)), 0);
        }
    }

    #[test]
    fn hash_spreads_flows_over_queues() {
        let s = RssSteering::new(RssKey::default(), 4);
        let mut seen = [0usize; 4];
        for port in 0..256u16 {
            seen[s.queue_for_flow(&flow(30_000 + port, 5001))] += 1;
        }
        for (queue, count) in seen.iter().enumerate() {
            assert!(
                *count > 256 / 16,
                "queue {queue} starved: distribution {seen:?}"
            );
        }
    }

    #[test]
    fn flow_director_overrides_the_hash_and_forgets_per_queue() {
        let mut s = RssSteering::new(RssKey::default(), 4);
        let udp = UdpDatagram::new(50_123, 53, b"query".to_vec());
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let outbound = EthernetFrame::new(
            MacAddr::from_index(200),
            MacAddr::from_index(0),
            EtherType::Ipv4,
            Ipv4Packet::new(src, dst, IpProtocol::Udp, udp.build(src, dst)).build(),
        )
        .build();
        s.note_transmit(&outbound, 3);
        assert_eq!(s.pinned_flows(), 1);
        // The reply direction is pinned to queue 3 regardless of its hash.
        let reply = FlowKey {
            src: dst,
            dst: src,
            src_port: 53,
            dst_port: 50_123,
        };
        assert_eq!(s.queue_for_flow(&reply), 3);
        s.forget_queue(3);
        assert_eq!(s.pinned_flows(), 0);
        assert_eq!(s.queue_for_flow(&reply), s.queue_by_hash(&reply));
    }

    #[test]
    fn non_ip_frames_fall_back_to_queue_zero() {
        let s = RssSteering::new(RssKey::default(), 8);
        assert_eq!(s.queue_for_frame(&[0u8; 10]), 0);
        let arp = crate::wire::ArpPacket::request(
            MacAddr::from_index(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let frame = EthernetFrame::new(
            MacAddr::BROADCAST,
            MacAddr::from_index(1),
            EtherType::Arp,
            arp.build(),
        )
        .build();
        assert_eq!(s.queue_for_frame(&frame), 0);
    }
}
