//! Shared helpers for the benchmark harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation; this library only hosts the small amount of code they share.

#![warn(missing_docs)]

/// Returns the first CLI argument parsed as a number, or `default`.
///
/// Used by the fault-injection binaries to pick the number of runs
/// (`cargo run -p newt-bench --bin table3 -- 100`).
pub fn arg_or(index: usize, default: usize) -> usize {
    std::env::args()
        .nth(index)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Prints a standard experiment header.
pub fn header(title: &str, paper_reference: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("(reproduces {paper_reference} of Hruby et al., DSN 2012)");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    #[test]
    fn arg_or_falls_back_to_default() {
        // The test binary's argv does not contain a number at index 40.
        assert_eq!(super::arg_or(40, 7), 7);
    }
}
