//! Shared helpers for the benchmark harness binaries.
//!
//! Each binary in `src/bin/` regenerates one artefact of the paper's
//! evaluation — or one of the reproduction's own tracked records:
//!
//! | binary | artefact |
//! | --- | --- |
//! | `table1` | kernel-IPC / channel cycle costs → `BENCH_fastpath.json` |
//! | `table2` | throughput of every stack configuration (analytic model) |
//! | `table3`/`table4` | the SWIFI fault-injection campaign |
//! | `fig4`/`fig5` | bitrate traces across IP / packet-filter crashes |
//! | `ablation` | design-principle ablation sweep |
//! | `scaling` | RSS scaling at 1/2/4 shards → `BENCH_scaling.json` |
//! | `workload` | HTTP rps + p50/p99 over clean/impaired links → `BENCH_workload.json` |
//! | `dependability` | fault injection into the sharded stack under HTTP load → `BENCH_dependability.json` |
//!
//! This library hosts the small amount of code the binaries share, plus
//! the [`fastpath`] micro-measurement that tracks the inter-server channel
//! fast path across pull requests.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// Returns the first CLI argument parsed as a number, or `default`.
///
/// Used by the fault-injection binaries to pick the number of runs
/// (`cargo run -p newt-bench --bin table3 -- 100`).
pub fn arg_or(index: usize, default: usize) -> usize {
    std::env::args()
        .nth(index)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Prints a standard experiment header.
pub fn header(title: &str, paper_reference: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("(reproduces {paper_reference} of Hruby et al., DSN 2012)");
    println!("==============================================================");
}

/// Micro-measurement of the channel fast path (paper §IV, Table II's "fast
/// path" claim): single-message enqueue/dequeue through the lock-free
/// handles, the batched variant, and the mutex-guarded baseline the fabric
/// used before the lock-free rework.
pub mod fastpath {
    use std::fmt;
    use std::sync::Arc;
    use std::time::Instant;

    use parking_lot::Mutex;

    use newt_channels::spsc;

    const MESSAGES: u64 = 400_000;
    const BATCH: usize = 64;

    /// Nanoseconds per message for each measured variant.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct FastPathReport {
        /// Lock-free single-message enqueue + dequeue.
        pub single_ns: f64,
        /// Batched (64-message) enqueue + drain, per message.
        pub batch_ns: f64,
        /// The seed's mutex-guarded single-message path, per message.
        pub mutex_ns: f64,
    }

    impl FastPathReport {
        /// Speedup of the batched path over the mutex-guarded baseline.
        pub fn speedup_batch_vs_mutex(&self) -> f64 {
            self.mutex_ns / self.batch_ns
        }
    }

    impl fmt::Display for FastPathReport {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(
                f,
                "single {:.1} ns, batch64 {:.1} ns, mutex baseline {:.1} ns ({:.1}x batch speedup)",
                self.single_ns,
                self.batch_ns,
                self.mutex_ns,
                self.speedup_batch_vs_mutex()
            )
        }
    }

    /// Runs the three variants and returns nanoseconds per message for each.
    pub fn measure() -> FastPathReport {
        // Lock-free single messages.
        let (mut tx, mut rx) = spsc::channel::<u64>(1024);
        let start = Instant::now();
        for i in 0..MESSAGES {
            tx.try_send(i).expect("queue drained every message");
            std::hint::black_box(rx.try_recv().expect("just enqueued"));
        }
        let single_ns = start.elapsed().as_nanos() as f64 / MESSAGES as f64;

        // Lock-free batches.
        let (mut tx, mut rx) = spsc::channel::<u64>(1024);
        let mut batch: Vec<u64> = Vec::with_capacity(BATCH);
        let mut out: Vec<u64> = Vec::with_capacity(BATCH);
        let rounds = MESSAGES / BATCH as u64;
        let start = Instant::now();
        for _ in 0..rounds {
            batch.extend(0..BATCH as u64);
            tx.send_batch(&mut batch);
            out.clear();
            std::hint::black_box(rx.drain_into(&mut out));
        }
        let batch_ns = start.elapsed().as_nanos() as f64 / (rounds * BATCH as u64) as f64;

        // The seed's fabric: Arc<Mutex<...>> around each end, a fresh Vec
        // per drain.
        let (tx, rx) = spsc::channel::<u64>(1024);
        let tx = Arc::new(Mutex::new(tx));
        let rx = Arc::new(Mutex::new(rx));
        let start = Instant::now();
        for i in 0..MESSAGES {
            tx.lock().try_send(i).expect("queue drained every message");
            std::hint::black_box(rx.lock().try_recv().expect("just enqueued"));
        }
        let mutex_ns = start.elapsed().as_nanos() as f64 / MESSAGES as f64;

        FastPathReport {
            single_ns,
            batch_ns,
            mutex_ns,
        }
    }

    /// Writes the report as JSON to `path` and returns the path on success.
    pub fn write_json(report: &FastPathReport, path: &str) -> std::io::Result<String> {
        let json = format!(
            "{{\n  \"single_ns\": {:.2},\n  \"batch64_ns\": {:.2},\n  \"mutex_baseline_ns\": {:.2},\n  \"batch_speedup_vs_mutex\": {:.2},\n  \"messages\": {}\n}}\n",
            report.single_ns,
            report.batch_ns,
            report.mutex_ns,
            report.speedup_batch_vs_mutex(),
            MESSAGES,
        );
        std::fs::write(path, json)?;
        Ok(path.to_string())
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn arg_or_falls_back_to_default() {
        // The test binary's argv does not contain a number at index 40.
        assert_eq!(super::arg_or(40, 7), 7);
    }

    #[test]
    fn fastpath_report_formats_and_serialises() {
        let report = super::fastpath::FastPathReport {
            single_ns: 10.0,
            batch_ns: 5.0,
            mutex_ns: 20.0,
        };
        assert_eq!(report.speedup_batch_vs_mutex(), 4.0);
        let text = format!("{report}");
        assert!(text.contains("4.0x"));
    }

    #[test]
    fn fastpath_measures_and_batching_beats_the_mutex_baseline() {
        let report = super::fastpath::measure();
        assert!(report.single_ns > 0.0);
        assert!(report.batch_ns > 0.0);
        assert!(report.mutex_ns > 0.0);
        // The acceptance bar for the lock-free rework: batched drain/enqueue
        // at least 2x faster than the mutex-guarded single-message path.
        // Only asserted for optimised builds — debug or instrumented builds
        // (coverage, sanitizers) distort the two paths differently and a
        // wall-clock ratio there says nothing about the code.
        #[cfg(not(debug_assertions))]
        assert!(
            report.speedup_batch_vs_mutex() >= 2.0,
            "expected >= 2x speedup, measured {report}"
        );
    }
}
