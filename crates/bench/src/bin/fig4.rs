//! Figure 4 — bitrate of a TCP connection across an IP-server crash.
//!
//! A bulk transfer runs for 10 virtual seconds; at t ≈ 4 s a fault is
//! injected into the IP server.  Because recovering IP forces a reset of the
//! network adapter (whose shadow descriptors cannot be invalidated), the
//! link drops and a gap appears in the bitrate trace before the connection
//! recovers its original rate — the same shape as the paper's Figure 4.

use newt_bench::header;
use newt_faults::figures::{run_trace_experiment, TraceExperimentConfig};

fn main() {
    header("Figure 4 — IP crash during a bulk transfer", "Figure 4");
    let config = TraceExperimentConfig::figure4();
    println!(
        "transfer: {}s, fault into IP at t={:?}, bitrate bucket {:?}",
        config.duration.as_secs(),
        config.fault_times,
        config.bucket
    );
    let result = run_trace_experiment(&config);
    println!();
    println!("{}", result.render());
    println!(
        "steady bitrate before the crash : {:8.1} Mbps",
        result.steady_mbps
    );
    println!(
        "lowest bucket after the crash   : {:8.1} Mbps",
        result.dip_mbps[0]
    );
    match result.recovery_s[0] {
        Some(s) => println!(
            "recovered to >80% of steady rate: {:8.1} s after the fault",
            s
        ),
        None => println!("recovered to >80% of steady rate: not within the trace"),
    }
    println!("IP server restarts observed     : {:8}", result.restarts);
    println!("bytes delivered to the receiver : {:8}", result.total_bytes);
    println!();
    println!("paper: the gap lasts roughly the link-reset time (a couple of seconds),");
    println!("       no segments are lost and only one spurious retransmission is seen.");
}
