//! Dependability-under-load bench — the paper's §VI crash-transparency
//! claim measured against the *modern* stack: sharded pipelines with the
//! receive fast path on, serving live HTTP traffic while faults strike.
//!
//! For every cell of {1, 4} shards × {clean, impaired} link, the campaign
//! runs its deterministic schedule of fault modes — weighted single
//! crashes/hangs into every per-shard component replica, the packet
//! filter, the driver and the SYSCALL server, plus the correlated
//! same-shard TCP+IP double fault and the driver→IP cascade — and
//! measures per-run availability, recovery time in virtual ms, forced
//! reconnects and byte-exact response bodies.
//!
//! After the crash campaign, the **rolling-upgrade** mode runs: every
//! component of a 4-shard stack — each shard's TCP, UDP and IP replica,
//! the driver, the packet filter and the SYSCALL server — is live-updated
//! one at a time (quiesce → state transfer → resume) while the same
//! keep-alive HTTP load runs, over the clean and the impaired link.
//!
//! Writes `BENCH_dependability.json`.  Gates (the baseline is the
//! previously checked-in record, read before it is overwritten):
//!
//! * every response body must verify byte for byte, in every run;
//! * no run may end in the *reboot* outcome (lost requests);
//! * the overall transparent-recovery fraction must not fall more than
//!   [`TRANSPARENT_GATE_POINTS`] percentage points below the record;
//! * the rolling upgrade must drop **zero** requests and force **zero**
//!   reconnects, every restart must be stamped *requested*, and no
//!   per-component service gap may exceed the cell's bound.

use newt_bench::{arg_or, header};
use newt_faults::dependability::{
    run_dependability_campaign, run_rolling_upgrade, DependabilityConfig, Outcome,
    RollingUpgradeConfig,
};

/// Allowed drop of the overall transparent fraction, in percentage points.
const TRANSPARENT_GATE_POINTS: f64 = 5.0;

/// Pulls the overall transparent fraction out of a previously written
/// record (one scalar field on its own line; no JSON parser in the tree).
fn baseline_transparent(json: &str) -> Option<f64> {
    json.lines()
        .find(|l| l.contains("\"transparent_fraction_overall\": "))
        .and_then(|l| {
            l.split(": ")
                .nth(1)?
                .trim()
                .trim_end_matches(',')
                .parse()
                .ok()
        })
}

fn percentile(values: &mut [f64], p: f64) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    newt_apps::loadgen::percentile_us(values, p)
}

fn main() {
    header(
        "Dependability under load — fault injection into the sharded stack serving HTTP",
        "§VI (crash transparency) against the PR2-4 pipelines",
    );
    let runs = arg_or(1, 8);

    let mut reports = Vec::new();
    for impaired in [false, true] {
        for shards in [1usize, 4] {
            let config = DependabilityConfig {
                runs,
                ..DependabilityConfig::cell(shards, impaired)
            };
            println!(
                "running {} fault runs, {} shard(s), {} link, {} conns x {} reqs...",
                config.runs,
                shards,
                if impaired { "impaired" } else { "clean" },
                config.connections,
                config.requests_per_connection,
            );
            let report = run_dependability_campaign(&config);
            print!("{}", report.render());
            reports.push(report);
        }
    }

    // The rolling-upgrade mode: the same load, but requested live updates
    // instead of faults — and an absolute zero-loss bar.
    let mut upgrades = Vec::new();
    for impaired in [false, true] {
        let config = RollingUpgradeConfig::cell(4, impaired);
        println!(
            "\nrolling upgrade: {} components, 4 shards, {} link, {} conns x {} reqs...",
            config.upgrade_targets().len(),
            if impaired { "impaired" } else { "clean" },
            config.connections,
            config.requests_per_connection,
        );
        let report = run_rolling_upgrade(&config);
        print!("{}", report.render());
        upgrades.push((config, report));
    }

    let total_runs: usize = reports.iter().map(|r| r.runs.len()).sum();
    let total_transparent: usize = reports.iter().map(|r| r.count(Outcome::Transparent)).sum();
    let transparent_overall = total_transparent as f64 / total_runs.max(1) as f64;
    println!(
        "\noverall: {total_transparent}/{total_runs} transparent ({:.0}%)",
        100.0 * transparent_overall
    );

    // The regression gate reads the previous (checked-in) record before it
    // is overwritten.
    let baseline = std::fs::read_to_string("BENCH_dependability.json")
        .ok()
        .as_deref()
        .and_then(baseline_transparent);

    let rows: Vec<String> = reports
        .iter()
        .map(|r| {
            let mut recovery: Vec<f64> = r.runs.iter().map(|run| run.recovery_ms).collect();
            let mut detect: Vec<f64> = r.runs.iter().map(|run| run.detect_ms).collect();
            let recovery_p50 = percentile(&mut recovery, 0.50);
            let recovery_max = recovery.last().copied().unwrap_or(0.0);
            let detect_p50 = percentile(&mut detect, 0.50);
            let outcomes: Vec<String> = r
                .runs
                .iter()
                .map(|run| format!("\"{}: {}\"", run.mode, run.outcome.label()))
                .collect();
            format!(
                "    {{\"shards\": {}, \"link\": \"{}\", \"runs\": {}, \"transparent\": {}, \"broken_tcp\": {}, \"manual_restart\": {}, \"reachable_after_restart\": {}, \"reboot\": {}, \"transparent_fraction\": {:.3}, \"availability_mean\": {:.3}, \"recovery_ms_p50\": {:.1}, \"recovery_ms_max\": {:.1}, \"detect_ms_p50\": {:.1}, \"detect_ms_max_crash\": {:.1}, \"detect_ms_max_hang\": {:.1}, \"reconnects\": {}, \"verify_failures\": {}, \"outcomes\": [{}]}}",
                r.shards,
                if r.impaired { "impaired" } else { "clean" },
                r.runs.len(),
                r.count(Outcome::Transparent),
                r.count(Outcome::BrokenTcp),
                r.count(Outcome::ManualRestart),
                r.count(Outcome::ReachableAfterRestart),
                r.count(Outcome::Reboot),
                r.transparent_fraction(),
                r.availability_mean(),
                recovery_p50,
                recovery_max,
                detect_p50,
                r.detect_ms_max_for("crash"),
                r.detect_ms_max_for("hang"),
                r.reconnects_total(),
                r.verify_failures_total(),
                outcomes.join(", "),
            )
        })
        .collect();
    let upgrade_rows: Vec<String> = upgrades
        .iter()
        .map(|(config, r)| {
            let gaps: Vec<String> = r
                .records
                .iter()
                .map(|rec| format!("\"{}: {:.1}ms\"", rec.component, rec.service_gap_ms))
                .collect();
            format!(
                "    {{\"shards\": {}, \"link\": \"{}\", \"components\": {}, \"under_load\": {}, \"completed\": {}, \"expected\": {}, \"failed_requests\": {}, \"reconnects\": {}, \"verify_failures\": {}, \"all_requested\": {}, \"max_gap_ms\": {:.1}, \"gap_bound_ms\": {:.1}, \"gaps\": [{}]}}",
                r.shards,
                if r.impaired { "impaired" } else { "clean" },
                r.records.len(),
                r.upgrades_under_load(),
                r.completed,
                r.expected_requests,
                r.failed_requests(),
                r.reconnects,
                r.verify_failures,
                r.all_requested(),
                r.max_gap_ms(),
                config.gap_bound_ms,
                gaps.join(", "),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"campaign\": \"SWIFI under HTTP load: crash/hang + correlated (same-shard double, driver->ip cascade) faults into the sharded GRO-enabled stack; availability = completions during the recovery window vs steady state; recovery/detect in virtual ms\",\n  \"transparent_fraction_overall\": {:.3},\n  \"results\": [\n{}\n  ],\n  \"rolling_upgrade\": [\n{}\n  ]\n}}\n",
        transparent_overall,
        rows.join(",\n"),
        upgrade_rows.join(",\n"),
    );
    match std::fs::write("BENCH_dependability.json", &json) {
        Ok(()) => println!("wrote BENCH_dependability.json"),
        Err(err) => eprintln!("could not write BENCH_dependability.json: {err}"),
    }

    // ---- gates ------------------------------------------------------------
    let mut failed = false;
    for report in &reports {
        let link = if report.impaired { "impaired" } else { "clean" };
        if report.verify_failures_total() > 0 {
            eprintln!(
                "FAIL: {} {}-shard cell had {} body verification failures",
                link,
                report.shards,
                report.verify_failures_total()
            );
            failed = true;
        }
        let reboots = report.count(Outcome::Reboot);
        if reboots > 0 {
            for run in &report.runs {
                if run.outcome == Outcome::Reboot {
                    eprintln!(
                        "FAIL: {} {}-shard run \"{}\" lost requests ({}/{} completed)",
                        link, report.shards, run.mode, run.completed, run.expected_requests
                    );
                }
            }
            failed = true;
        }
    }
    // Rolling-upgrade gates — absolute, not baseline-relative: a live
    // update that drops a request or breaks a connection defeats its
    // purpose, whatever the previous record said.
    for (config, report) in &upgrades {
        let link = if report.impaired { "impaired" } else { "clean" };
        if report.failed_requests() > 0 {
            eprintln!(
                "FAIL: {} rolling upgrade dropped {} requests ({}/{} completed)",
                link,
                report.failed_requests(),
                report.completed,
                report.expected_requests
            );
            failed = true;
        }
        if report.reconnects > 0 {
            eprintln!(
                "FAIL: {} rolling upgrade forced {} reconnects (must be zero)",
                link, report.reconnects
            );
            failed = true;
        }
        if report.verify_failures > 0 {
            eprintln!(
                "FAIL: {} rolling upgrade had {} body verification failures",
                link, report.verify_failures
            );
            failed = true;
        }
        if !report.all_requested() {
            eprintln!(
                "FAIL: {} rolling upgrade has a component that was not upgraded via a requested restart",
                link
            );
            failed = true;
        }
        if report.max_gap_ms() > config.gap_bound_ms {
            eprintln!(
                "FAIL: {} rolling upgrade service gap {:.1}ms exceeds the {:.1}ms bound",
                link,
                report.max_gap_ms(),
                config.gap_bound_ms
            );
            failed = true;
        }
    }
    match baseline {
        Some(base) => {
            let drop_points = (base - transparent_overall) * 100.0;
            println!(
                "transparency gate: {:.1}% overall vs baseline {:.1}% ({:+.1} points, bound -{TRANSPARENT_GATE_POINTS})",
                100.0 * transparent_overall,
                100.0 * base,
                -drop_points,
            );
            if drop_points > TRANSPARENT_GATE_POINTS {
                eprintln!(
                    "FAIL: transparent-recovery fraction dropped {drop_points:.1} points below the checked-in record"
                );
                failed = true;
            }
        }
        None => println!(
            "transparency gate: no baseline BENCH_dependability.json found, recording only"
        ),
    }
    if failed {
        std::process::exit(1);
    }
    println!("PASS: all bodies byte-verified, no reboot outcomes, transparency within the gate, rolling upgrade dropped nothing");
}
