//! RSS scaling curve — aggregate bulk-transfer throughput at 1/2/4 stack
//! shards, plus the shard-crash isolation check.
//!
//! The paper's scalability argument (§VI) is that the decomposed stack
//! scales by running *multiple stack instances side by side*.  This harness
//! measures exactly that on the reproduction: four concurrent iperf-style
//! bulk flows over four NICs, with the ip/tcp/udp pipeline replicated
//! 1, 2 and 4 times.  Each shard owns its own fabric lanes, pools and
//! socket-buffer budget, so replication multiplies the resources a flow's
//! throughput is bounded by; the NIC's flow director keeps every flow on
//! the shard that owns its socket.  Throughput is measured in *virtual*
//! time over a delay-shaped link, which makes the curve a property of the
//! stack's architecture rather than of how many host cores the CI runner
//! happens to have.
//!
//! The second half crashes one TCP shard in the middle of a two-flow
//! transfer and verifies the blast radius: the flow on the crashed shard
//! stalls (its connection is reset, as TCP recovery mandates), the flow on
//! the sibling shard completes untouched, and the link never goes down.
//!
//! Writes `BENCH_scaling.json` and exits non-zero if 4-shard throughput is
//! below 2x single-shard or the crash leaks across shards.

use std::time::Duration;

use newt_bench::header;
use newt_kernel::rs::FaultAction;
use newt_net::link::LinkConfig;
use newt_net::peer::IPERF_PORT;
use newt_stack::builder::{NewtStack, StackConfig};
use newt_stack::endpoints::Component;

/// Concurrent bulk flows (one per NIC/peer).
const FLOWS: usize = 4;
/// Bytes each flow transfers.
const BYTES_PER_FLOW: usize = 6 * 1024 * 1024;
/// Per-shard in-flight budget: the resource that replication multiplies.
const SHARD_BUDGET: usize = 256 * 1024;
/// One-way propagation delay of the test links (virtual time).  Large
/// enough that the budget/RTT product — not the host CPU — bounds
/// throughput at every shard count, so the curve measures the
/// architecture, not the runner.
const PROPAGATION: Duration = Duration::from_millis(12);

/// One measured point of the scaling curve.
struct Sample {
    shards: usize,
    virtual_secs: f64,
    aggregate_gbps: f64,
    rx_steered: Vec<u64>,
}

fn bench_config(shards: usize) -> StackConfig {
    let mut config = StackConfig::newtos()
        .nics(FLOWS)
        .shards(shards)
        // The filter is a singleton; keep it out of the path so the curve
        // isolates the replicated pipeline.
        .packet_filter(false)
        .link(LinkConfig::unshaped().propagation(PROPAGATION))
        // Real-time clock: the delay budget above already keeps the run
        // short, and any speedup would shrink the CPU headroom that keeps
        // the measurement resource-bound.
        .clock_speedup(1.0);
    config.tcp.shard_send_budget = SHARD_BUDGET;
    config.tcp.buffer_capacity = 512 * 1024;
    // Generous timers: a loaded CI runner must not fake congestion.
    config.tcp.rto_initial = Duration::from_secs(1);
    config.tcp.rto_max = Duration::from_secs(4);
    config
}

/// Runs `FLOWS` concurrent bulk transfers and returns the measured point.
fn run_transfer(shards: usize) -> Sample {
    let stack = NewtStack::start(bench_config(shards));
    let clock = stack.clock();
    let client = stack.client();

    // One connection per peer, established before the clock starts.
    let sockets: Vec<_> = (0..FLOWS)
        .map(|i| {
            let socket = client.tcp_socket().expect("tcp socket");
            socket
                .connect(StackConfig::peer_addr(i), IPERF_PORT)
                .expect("connect");
            socket
        })
        .collect();

    let started = clock.now();
    let senders: Vec<_> = sockets
        .into_iter()
        .map(|socket| {
            std::thread::spawn(move || {
                let data = vec![0xbeu8; BYTES_PER_FLOW];
                socket.send_all(&data).expect("bulk send");
            })
        })
        .collect();

    // Wait (in wall time) until every peer counted its full transfer, then
    // read the virtual clock.
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        let done = (0..FLOWS)
            .all(|i| stack.peer(i).bytes_received_on(IPERF_PORT) >= BYTES_PER_FLOW as u64);
        if done {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "transfer with {shards} shard(s) did not finish"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let virtual_secs = (clock.now() - started).as_secs_f64();
    for sender in senders {
        sender.join().expect("sender thread");
    }

    let telemetry = stack.telemetry();
    let rx_steered = telemetry.rx_steered_per_shard()[..shards].to_vec();
    stack.shutdown();

    let total_bytes = (FLOWS * BYTES_PER_FLOW) as f64;
    Sample {
        shards,
        virtual_secs,
        aggregate_gbps: total_bytes * 8.0 / virtual_secs / 1e9,
        rx_steered,
    }
}

/// The blast-radius check: crash one TCP shard mid-transfer; the sibling
/// shard's flow must complete and the link must stay up.
struct CrashOutcome {
    victim_shard: usize,
    survivor_completed: bool,
    victim_stalled: bool,
    link_stayed_up: bool,
}

fn run_crash_isolation() -> CrashOutcome {
    let stack = NewtStack::start(bench_config(2));
    let client = stack.client();
    // Two flows, one per peer; round-robin placement puts them on
    // different shards.
    let sock_a = client.tcp_socket().expect("socket a");
    let sock_b = client.tcp_socket().expect("socket b");
    let shard_a = NewtStack::shard_of_socket(sock_a.id());
    let shard_b = NewtStack::shard_of_socket(sock_b.id());
    assert_ne!(shard_a, shard_b, "round-robin placement");
    sock_a
        .connect(StackConfig::peer_addr(0), IPERF_PORT)
        .expect("connect a");
    sock_b
        .connect(StackConfig::peer_addr(1), IPERF_PORT)
        .expect("connect b");

    let senders = [(0usize, sock_a), (1usize, sock_b)].map(|(_peer, socket)| {
        std::thread::spawn(move || {
            let data = vec![0xcdu8; BYTES_PER_FLOW];
            // The victim's send fails once its shard is crashed; that is
            // the expected TCP recovery contract (connections reset).
            socket.send_all(&data).is_ok()
        })
    });

    // Let both flows get going, then crash flow B's TCP shard.
    let victim_shard = shard_b;
    let warmup_deadline = std::time::Instant::now() + Duration::from_secs(120);
    while stack.peer(1).bytes_received_on(IPERF_PORT) < (BYTES_PER_FLOW / 8) as u64 {
        assert!(
            std::time::Instant::now() < warmup_deadline,
            "victim flow never got going before the crash"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(stack.inject_fault(Component::TcpShard(victim_shard), FaultAction::Crash));

    // The survivor must still complete its whole transfer.
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    while stack.peer(0).bytes_received_on(IPERF_PORT) < BYTES_PER_FLOW as u64 {
        assert!(
            std::time::Instant::now() < deadline,
            "survivor flow stalled after sibling-shard crash"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let [sent_a, sent_b] = senders.map(|t| t.join().expect("sender thread"));
    // Give the victim's reset a moment to settle, then read the counters.
    std::thread::sleep(Duration::from_millis(100));
    let victim_bytes = stack.peer(1).bytes_received_on(IPERF_PORT);
    let link_stayed_up = (0..2).all(|i| stack.nic_stats(i).resets == 0);
    stack.shutdown();

    CrashOutcome {
        victim_shard,
        survivor_completed: sent_a,
        victim_stalled: !sent_b || victim_bytes < BYTES_PER_FLOW as u64,
        link_stayed_up,
    }
}

fn main() {
    header(
        "RSS scaling — replicated stack pipelines under bulk transfer",
        "§VI (scalability by running multiple stacks)",
    );

    println!(
        "{FLOWS} flows x {} MiB, {} KiB in-flight budget per shard, {}ms one-way delay\n",
        BYTES_PER_FLOW / (1024 * 1024),
        SHARD_BUDGET / 1024,
        PROPAGATION.as_millis()
    );
    println!(
        "{:>6} {:>14} {:>16}  steering",
        "shards", "virtual time", "aggregate"
    );

    let samples: Vec<Sample> = [1usize, 2, 4].into_iter().map(run_transfer).collect();
    for sample in &samples {
        println!(
            "{:>6} {:>12.3} s {:>11.3} Gbps  {:?}",
            sample.shards, sample.virtual_secs, sample.aggregate_gbps, sample.rx_steered
        );
    }
    let speedup_2 = samples[1].aggregate_gbps / samples[0].aggregate_gbps;
    let speedup_4 = samples[2].aggregate_gbps / samples[0].aggregate_gbps;
    println!("\nspeedup: 2 shards {speedup_2:.2}x, 4 shards {speedup_4:.2}x");

    println!("\ncrash isolation: crashing one TCP shard mid-transfer...");
    let crash = run_crash_isolation();
    println!(
        "  victim shard {}: flow stalled = {}, sibling flow completed = {}, link stayed up = {}",
        crash.victim_shard, crash.victim_stalled, crash.survivor_completed, crash.link_stayed_up
    );

    let results_json: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"shards\": {}, \"virtual_secs\": {:.4}, \"aggregate_gbps\": {:.4}, \"rx_steered\": {:?}}}",
                s.shards, s.virtual_secs, s.aggregate_gbps, s.rx_steered
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"workload\": \"bulk transfer, {FLOWS} concurrent iperf flows, {FLOWS} NICs, {} MiB/flow\",\n  \"shard_send_budget_bytes\": {SHARD_BUDGET},\n  \"results\": [\n{}\n  ],\n  \"speedup_2_shards\": {speedup_2:.3},\n  \"speedup_4_shards\": {speedup_4:.3},\n  \"crash_isolation\": {{\"victim_shard\": {}, \"victim_flow_stalled\": {}, \"sibling_flow_completed\": {}, \"link_stayed_up\": {}}}\n}}\n",
        BYTES_PER_FLOW / (1024 * 1024),
        results_json.join(",\n"),
        crash.victim_shard,
        crash.victim_stalled,
        crash.survivor_completed,
        crash.link_stayed_up,
    );
    match std::fs::write("BENCH_scaling.json", &json) {
        Ok(()) => println!("\nwrote BENCH_scaling.json"),
        Err(err) => eprintln!("could not write BENCH_scaling.json: {err}"),
    }

    let mut failed = false;
    if speedup_4 < 2.0 {
        eprintln!("FAIL: 4-shard speedup {speedup_4:.2}x is below the 2x gate");
        failed = true;
    }
    if !(crash.victim_stalled && crash.survivor_completed && crash.link_stayed_up) {
        eprintln!("FAIL: shard crash was not contained to its shard");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("PASS: scaling gate (>= 2x at 4 shards) and crash isolation hold");
}
