//! Ablations over the design principles (§III) using the analytic model:
//! per-message IPC cost, TSO segment size, dedicated versus shared cores,
//! zero copy versus copying, channels versus kernel IPC.

use newt_bench::header;
use newt_kernel::cost::CostModel;
use newt_sim::ablation;

fn main() {
    header(
        "Ablations over the design principles",
        "Section III / VIII discussion",
    );
    let model = CostModel::default();

    println!(
        "{}",
        ablation::render(
            "1. per-message IPC cost (cycles per enqueue/trap)",
            "cycles",
            &ablation::ipc_cost_sweep(&model)
        )
    );
    println!(
        "{}",
        ablation::render(
            "2. TSO aggregate segment size (bytes handed to the NIC per segment)",
            "bytes",
            &ablation::tso_segment_sweep(&model)
        )
    );
    println!(
        "{}",
        ablation::render(
            "3. core share per server (1.0 = dedicated core)",
            "core share",
            &ablation::core_share_sweep(&model)
        )
    );
    println!(
        "{}",
        ablation::render(
            "4. payload copies per segment (0 = zero copy)",
            "copies",
            &ablation::copy_sweep(&model)
        )
    );
    println!(
        "{}",
        ablation::render(
            "5. channels (0) versus synchronous kernel IPC (1)",
            "mechanism",
            &ablation::ipc_kind_comparison(&model)
        )
    );
}
