//! Connection-scale bench — holds 100 000 keep-alive HTTP connections on
//! one 4-shard stack through the syscall-ring API and measures what that
//! costs: per-connection memory, request p99 at full occupancy, and
//! **fabric messages per socket operation**.
//!
//! The syscall-ring redesign claims that the app↔stack boundary costs no
//! per-operation round trips: sends, receives and readiness arming
//! complete inline against the shared socket buffer, and only accept
//! arming (multishot — one submission serves every future accept) and
//! close traverse the fabric.  At 100k keep-alive connections that claim
//! becomes measurable: the amortized ring-lane traffic per completed
//! socket op must stay **below one message**, the idle population must fit
//! in bounded per-connection memory (the buffers allocate lazily), and a
//! probe request against the fully-occupied stack must still meet p99.
//!
//! Appends/replaces the `"link": "connscale-clean"` row of
//! `BENCH_workload.json`, preserving the workload bench's own rows (the
//! workload bench preserves this row symmetrically).  Gates, all absolute
//! so a reduced `connections` argument still checks the same contract:
//!
//! * every connection must be established and still open at the end, with
//!   every response byte-verified;
//! * per-connection socket-buffer memory ≤ [`BYTES_PER_CONN_GATE`];
//! * probe p99 at full occupancy ≤ [`PROBE_P99_GATE_US`];
//! * ring-lane fabric messages per completed socket op <
//!   [`MSGS_PER_OP_GATE`].

use newt_apps::httpd::{Httpd, HttpdConfig};
use newt_apps::loadgen::{run_connection_scale, ConnScaleConfig};
use newt_bench::{arg_or, header};
use newt_net::link::LinkConfig;
use newt_stack::builder::{NewtStack, StackConfig};
use newt_stack::endpoints;
use newt_stack::sockbuf::SocketBuffer;

/// Stack shards (and NICs/peers the population is spread over).
const SHARDS: usize = 4;
/// Socket-buffer bytes a held connection may average, listener buffers
/// included.  The preset caps each buffer at 4 KiB but allocation is
/// lazy, so a keep-alive connection that exchanged one ~600-byte
/// request/response pair sits far below the cap.
const BYTES_PER_CONN_GATE: f64 = 16.0 * 1024.0;
/// Probe-request p99 bound (virtual µs) at full occupancy.  The link is
/// unshaped, so this measures stack scheduling — an O(open)-cost server
/// loop or accept path blows through it as the population grows.
const PROBE_P99_GATE_US: f64 = 250_000.0;
/// Ring-lane fabric messages per completed socket operation.  < 1 is the
/// redesign's headline: amortized, a socket op costs no fabric message.
const MSGS_PER_OP_GATE: f64 = 1.0;

fn main() {
    header(
        "connection scale — 100k keep-alive connections over the syscall rings",
        "the ring redesign's capacity claim: sockets are cheap to hold",
    );
    let connections = arg_or(1, 100_000);

    let stack = NewtStack::start(
        StackConfig::newtos()
            .shards(SHARDS)
            .nics(SHARDS)
            .link(LinkConfig::unshaped())
            .clock_speedup(20.0),
    );
    let server = Httpd::spawn(
        stack.client(),
        stack.shards(),
        HttpdConfig::connection_scale(),
    )
    .expect("http server");

    println!("ramping {connections} connections over {SHARDS} peers...");
    let report = run_connection_scale(
        &stack,
        &ConnScaleConfig {
            connections,
            nics: SHARDS,
            ..ConnScaleConfig::default()
        },
    );

    // Per-connection memory: every TCP socket buffer in the registry
    // (connections plus the per-shard listeners), as actually allocated.
    let registry = stack.registry();
    let attacher = endpoints::application(0);
    let mut sockbuf_bytes = 0u64;
    let mut sockbufs = 0u64;
    for (name, _, _) in registry.list("sockbuf/tcp/") {
        if let Ok(buffer) = registry.attach_shared::<SocketBuffer>(attacher, &name) {
            sockbuf_bytes += buffer.mem_bytes() as u64;
            sockbufs += 1;
        }
    }
    let bytes_per_connection = sockbuf_bytes as f64 / report.established.max(1) as f64;

    // Ring-lane traffic vs completed socket ops: the server's CQ counts
    // every inline op and every queued completion of its ring group; the
    // ring lanes carry everything the SYSCALL pump forwarded on its
    // behalf (accept arms, closes, and their completions).
    let lane_names = stack.fabric_lane_names();
    let ring_lanes: Vec<usize> = lane_names
        .iter()
        .enumerate()
        .filter(|(_, name)| name.contains("ring"))
        .map(|(i, _)| i)
        .collect();
    let ring_fabric_messages: u64 = (0..stack.shards())
        .flat_map(|s| {
            let stats = stack.fabric_lane_stats(s);
            ring_lanes
                .iter()
                .map(move |&i| stats[i].enqueued)
                .collect::<Vec<_>>()
        })
        .sum();
    let stats = server.stop();
    let ring_ops = stats.ring_ops;
    let messages_per_sock_op = ring_fabric_messages as f64 / ring_ops.max(1) as f64;
    stack.shutdown();

    println!(
        "  {} connections: {} established, {} requests ({} retries), ramp {:.2}s virtual = {:.0} conn/s",
        report.target,
        report.established,
        report.completed,
        report.retries,
        report.ramp_virtual_secs,
        report.connects_per_sec,
    );
    println!(
        "  ramp p50 {:.1} us, p99 {:.1} us; probe p99 at full occupancy {:.1} us",
        report.p50_us, report.p99_us, report.probe_p99_us,
    );
    println!(
        "  {} socket buffers hold {} bytes = {:.0} bytes/connection (gate {:.0})",
        sockbufs, sockbuf_bytes, bytes_per_connection, BYTES_PER_CONN_GATE,
    );
    println!(
        "  {} ring-lane fabric messages / {} socket ops = {:.4} msgs/op (gate < {})",
        ring_fabric_messages, ring_ops, messages_per_sock_op, MSGS_PER_OP_GATE,
    );
    println!(
        "  server: {} accepts, {} requests answered, {} cqes, {} connection errors",
        stats.connections, stats.requests, stats.ring_cqes, stats.connection_errors,
    );

    // ---- record ------------------------------------------------------------
    let row = format!(
        "    {{\"shards\": {SHARDS}, \"link\": \"connscale-clean\", \"connections\": {}, \"established\": {}, \"requests\": {}, \"retries\": {}, \"ramp_virtual_secs\": {:.4}, \"connects_per_sec\": {:.1}, \"rps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"probe_p99_us\": {:.1}, \"completed_all\": {}, \"verify_failures\": {}, \"bytes_per_connection\": {:.1}, \"ring_fabric_messages\": {}, \"ring_ops\": {}, \"messages_per_sock_op\": {:.4}}}",
        report.target,
        report.established,
        report.completed,
        report.retries,
        report.ramp_virtual_secs,
        report.connects_per_sec,
        report.completed as f64 / report.ramp_virtual_secs,
        report.p50_us,
        report.p99_us,
        report.probe_p99_us,
        report.completed_all,
        report.verify_failures,
        bytes_per_connection,
        ring_fabric_messages,
        ring_ops,
        messages_per_sock_op,
    );
    match rewrite_record(&row) {
        Ok(()) => println!("\nwrote BENCH_workload.json (connscale-clean row)"),
        Err(err) => eprintln!("could not write BENCH_workload.json: {err}"),
    }

    // ---- gates -------------------------------------------------------------
    let mut failed = false;
    if report.established != report.target {
        eprintln!(
            "FAIL: only {}/{} connections still established",
            report.established, report.target
        );
        failed = true;
    }
    if !report.completed_all || report.verify_failures > 0 {
        eprintln!(
            "FAIL: run incomplete or corrupt (completed_all={}, verify_failures={})",
            report.completed_all, report.verify_failures
        );
        failed = true;
    }
    if bytes_per_connection > BYTES_PER_CONN_GATE {
        eprintln!(
            "FAIL: {bytes_per_connection:.0} bytes/connection exceeds the {BYTES_PER_CONN_GATE:.0}-byte gate"
        );
        failed = true;
    }
    if report.probe_p99_us > PROBE_P99_GATE_US {
        eprintln!(
            "FAIL: probe p99 {:.1} us at full occupancy exceeds the {PROBE_P99_GATE_US:.0} us gate",
            report.probe_p99_us
        );
        failed = true;
    }
    if messages_per_sock_op >= MSGS_PER_OP_GATE {
        eprintln!(
            "FAIL: {messages_per_sock_op:.4} ring-lane messages per socket op (gate < {MSGS_PER_OP_GATE})"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "PASS: held {} connections with byte-verified traffic, {:.0} bytes/connection, probe p99 {:.1} us, {:.4} fabric msgs/socket op",
        report.established, bytes_per_connection, report.probe_p99_us, messages_per_sock_op,
    );
}

/// Rewrites `BENCH_workload.json` with `row` as its only `connscale` row,
/// carrying the workload bench's header line and result rows over
/// verbatim.  Builds a minimal record when the file does not exist yet.
fn rewrite_record(row: &str) -> std::io::Result<()> {
    let previous = std::fs::read_to_string("BENCH_workload.json").unwrap_or_default();
    let mut workload_line =
        "  \"workload\": \"keep-alive HTTP over the sharded stack\",".to_string();
    let mut rows: Vec<String> = Vec::new();
    for line in previous.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("\"workload\":") {
            workload_line = line.to_string();
        } else if trimmed.starts_with("{\"shards\"") && !line.contains("\"link\": \"connscale") {
            rows.push(line.trim_end().trim_end_matches(',').to_string());
        }
    }
    rows.push(row.to_string());
    std::fs::write(
        "BENCH_workload.json",
        format!(
            "{{\n{workload_line}\n  \"results\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        ),
    )
}
