//! Figure 5 — bitrate of a TCP connection across two packet-filter crashes.
//!
//! The same bulk transfer as Figure 4, but the faults hit the packet filter
//! (twice), which recovers a 1024-rule configuration from the storage server
//! and rebuilds its connection tracking by querying TCP and UDP.  Because
//! the IP server waits for a verdict on every packet and resubmits
//! outstanding checks to the restarted filter, no packets are lost and the
//! dip in bitrate is barely noticeable.

use newt_bench::header;
use newt_faults::figures::{run_trace_experiment, TraceExperimentConfig};

fn main() {
    header(
        "Figure 5 — packet-filter crashes during a bulk transfer",
        "Figure 5",
    );
    let config = TraceExperimentConfig::figure5();
    println!(
        "transfer: {}s, faults into PF at t={:?}, {} filter rules to recover",
        config.duration.as_secs(),
        config.fault_times,
        config.filter_rules
    );
    let result = run_trace_experiment(&config);
    println!();
    println!("{}", result.render());
    println!(
        "steady bitrate before the crashes: {:8.1} Mbps",
        result.steady_mbps
    );
    for (i, dip) in result.dip_mbps.iter().enumerate() {
        println!("lowest bucket after crash #{}    : {:8.1} Mbps", i + 1, dip);
    }
    println!("packet-filter restarts observed  : {:8}", result.restarts);
    println!(
        "bytes delivered to the receiver  : {:8}",
        result.total_bytes
    );
    println!();
    println!("paper: two crashes, immediate recovery to the original maximal bitrate");
    println!("       while restoring a set of 1024 rules; no packet loss.");
}
