//! Table III — distribution of injected faults over the stack's components.
//!
//! Runs the SWIFI-style campaign (default 20 runs; pass the run count as the
//! first argument, the paper used 100) and prints how many faults landed in
//! each component, next to the paper's distribution.

use newt_bench::{arg_or, header};
use newt_faults::campaign::{run_campaign, CampaignConfig};
use newt_stack::endpoints::Component;

fn main() {
    let runs = arg_or(1, 20);
    header("Table III — distribution of injected faults", "Table III");
    println!("running {runs} fault-injection runs (paper: 100) ...");
    let config = CampaignConfig {
        runs,
        ..CampaignConfig::default()
    };
    let report = run_campaign(&config);

    println!();
    println!("{}", report.render_table3());
    println!("paper distribution per 100 runs: TCP 25, UDP 10, IP 24, PF 25, Driver 16");
    println!();
    let scale = 100.0 / report.total().max(1) as f64;
    println!("{:<10} {:>8} {:>14}", "component", "paper", "measured/100");
    for (label, component, paper) in [
        ("TCP", Component::Tcp, 25.0),
        ("UDP", Component::Udp, 10.0),
        ("IP", Component::Ip, 24.0),
        ("PF", Component::PacketFilter, 25.0),
        ("Driver", Component::Driver(0), 16.0),
    ] {
        println!(
            "{:<10} {:>8.0} {:>14.0}",
            label,
            paper,
            report.injected_into(component) as f64 * scale
        );
    }
}
