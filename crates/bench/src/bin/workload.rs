//! HTTP workload bench — requests/sec and p50/p99 latency of the
//! application layer at 1/2/4 stack shards, over a clean and an impaired
//! (burst-loss + reorder + jitter + duplication) gigabit link.
//!
//! The paper's end goal is a dependable stack that carries *application*
//! traffic fast; this harness measures exactly that.  An HTTP/1.1 server
//! (`newt-apps`) listens `SO_REUSEPORT`-style on every shard through the
//! poll-based socket API; the in-process load generator opens hundreds of
//! concurrent keep-alive connections from the remote peer, issues GET
//! requests back to back, byte-verifies every response and timestamps each
//! request in **virtual time** — so rps and latency are properties of the
//! stack, not of the CI runner.
//!
//! Writes `BENCH_workload.json`.  If a previous `BENCH_workload.json` is
//! present (the checked-in baseline), the clean 4-shard p99 is compared
//! against it and the run fails when it regressed by more than 2x; the
//! run also fails if any request is lost, any body fails verification, or
//! any shard serves no connections at 4 shards.

use std::time::Duration;

use newt_apps::httpd::{Httpd, HttpdConfig};
use newt_apps::loadgen::{run_http_load, LoadConfig};
use newt_bench::{arg_or, header};
use newt_net::link::LinkConfig;
use newt_stack::builder::{NewtStack, StackConfig};

/// Requests each connection issues over its keep-alive session.
const REQUESTS_PER_CONNECTION: usize = 4;
/// Object fetched by every request.
const PATH: &str = "/bytes/2048";
/// Allowed p99 regression over the checked-in baseline.
const P99_GATE_FACTOR: f64 = 2.0;

struct Sample {
    shards: usize,
    link: &'static str,
    connections: usize,
    requests: u64,
    retries: u64,
    virtual_secs: f64,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
    completed_all: bool,
    verify_failures: u64,
    served_per_shard: Vec<u64>,
}

fn bench_config(shards: usize, impaired: bool) -> StackConfig {
    let link = if impaired {
        LinkConfig::impaired()
    } else {
        LinkConfig::gigabit()
    };
    StackConfig::newtos()
        .shards(shards)
        .link(link)
        // Moderate speed-up: virtual TCP timers (200 ms RTO) elapse fast
        // on the impaired runs without inflating scheduling noise into
        // the virtual latencies too much.
        .clock_speedup(10.0)
}

fn run_point(shards: usize, impaired: bool, connections: usize) -> Sample {
    let stack = NewtStack::start(bench_config(shards, impaired));
    let server =
        Httpd::spawn(stack.client(), stack.shards(), HttpdConfig::default()).expect("http server");
    let report = run_http_load(
        &stack,
        &LoadConfig {
            connections,
            requests_per_connection: REQUESTS_PER_CONNECTION,
            path: PATH.to_string(),
            response_timeout: Duration::from_secs(if impaired { 30 } else { 10 }),
            run_deadline: Duration::from_secs(300),
            ..LoadConfig::default()
        },
    );
    let telemetry = stack.telemetry();
    let served_per_shard: Vec<u64> = (0..shards)
        .map(|s| telemetry.tcp_shards[s].connections_established)
        .collect();
    let _ = server.stop();
    stack.shutdown();
    Sample {
        shards,
        link: if impaired { "impaired" } else { "clean" },
        connections,
        requests: report.completed,
        retries: report.retries,
        virtual_secs: report.virtual_secs,
        rps: report.rps,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        completed_all: report.completed_all,
        verify_failures: report.verify_failures,
        served_per_shard,
    }
}

/// Pulls the clean 4-shard p99 out of a previously written
/// `BENCH_workload.json` (one result object per line, so a line scan is
/// enough — no JSON parser in the tree).
fn baseline_p99(json: &str) -> Option<f64> {
    json.lines()
        .find(|l| l.contains("\"shards\": 4") && l.contains("\"link\": \"clean\""))
        .and_then(|l| {
            l.split("\"p99_us\": ")
                .nth(1)?
                .split(['}', ','])
                .next()?
                .trim()
                .parse()
                .ok()
        })
}

fn main() {
    header(
        "HTTP workload — keep-alive request/response over the sharded stack",
        "the application layer the paper's stack exists to carry",
    );
    // Connections at 4 shards (scaled down proportionally for 1/2).
    let connections_at_4 = arg_or(1, 200);

    let mut samples: Vec<Sample> = Vec::new();
    for impaired in [false, true] {
        for shards in [1usize, 2, 4] {
            let connections = (connections_at_4 * shards / 4).max(8);
            println!(
                "running {connections} connections x {REQUESTS_PER_CONNECTION} requests, {shards} shard(s), {} link...",
                if impaired { "impaired" } else { "clean" }
            );
            let sample = run_point(shards, impaired, connections);
            println!(
                "  {:>8} {:>2} shards: {:>6} reqs in {:>8.3}s virtual = {:>9.1} rps, p50 {:>9.1} us, p99 {:>9.1} us, {} reconnects, served/shard {:?}",
                sample.link,
                sample.shards,
                sample.requests,
                sample.virtual_secs,
                sample.rps,
                sample.p50_us,
                sample.p99_us,
                sample.retries,
                sample.served_per_shard,
            );
            samples.push(sample);
        }
    }

    // The regression gate reads the previous (checked-in) record before it
    // is overwritten.
    let baseline = std::fs::read_to_string("BENCH_workload.json")
        .ok()
        .as_deref()
        .and_then(baseline_p99);

    let results: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"shards\": {}, \"link\": \"{}\", \"connections\": {}, \"requests\": {}, \"retries\": {}, \"virtual_secs\": {:.4}, \"rps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"completed_all\": {}, \"verify_failures\": {}, \"served_per_shard\": {:?}}}",
                s.shards,
                s.link,
                s.connections,
                s.requests,
                s.retries,
                s.virtual_secs,
                s.rps,
                s.p50_us,
                s.p99_us,
                s.completed_all,
                s.verify_failures,
                s.served_per_shard,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"workload\": \"keep-alive HTTP GET {PATH}, {REQUESTS_PER_CONNECTION} requests/connection, virtual-time latency\",\n  \"results\": [\n{}\n  ]\n}}\n",
        results.join(",\n"),
    );
    match std::fs::write("BENCH_workload.json", &json) {
        Ok(()) => println!("\nwrote BENCH_workload.json"),
        Err(err) => eprintln!("could not write BENCH_workload.json: {err}"),
    }

    // ---- gates ------------------------------------------------------------
    let mut failed = false;
    for s in &samples {
        if !s.completed_all || s.verify_failures > 0 {
            eprintln!(
                "FAIL: {} {}-shard run lost requests (completed_all={}, verify_failures={})",
                s.link, s.shards, s.completed_all, s.verify_failures
            );
            failed = true;
        }
        if s.shards == 4 && s.served_per_shard.contains(&0) {
            eprintln!(
                "FAIL: {} 4-shard run left a shard idle: {:?}",
                s.link, s.served_per_shard
            );
            failed = true;
        }
    }
    let measured = samples
        .iter()
        .find(|s| s.shards == 4 && s.link == "clean")
        .map(|s| s.p99_us)
        .unwrap_or(0.0);
    match baseline {
        Some(base) if base > 0.0 => {
            let factor = measured / base;
            println!("p99 gate: clean 4-shard p99 {measured:.1} us vs baseline {base:.1} us ({factor:.2}x)");
            if factor > P99_GATE_FACTOR {
                eprintln!(
                    "FAIL: p99 regressed {factor:.2}x (> {P99_GATE_FACTOR}x) over the baseline"
                );
                failed = true;
            }
        }
        _ => println!("p99 gate: no baseline BENCH_workload.json found, recording only"),
    }
    if failed {
        std::process::exit(1);
    }
    println!("PASS: workload completed on every link/shard point, bodies verified");
}
