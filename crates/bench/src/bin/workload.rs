//! HTTP workload bench — requests/sec, p50/p99 latency and **fabric
//! messages per request** of the application layer at 1/2/4 stack shards,
//! over a clean (delay-shaped) and an impaired (burst-loss + reorder +
//! jitter + duplication) gigabit link.
//!
//! The paper's end goal is a dependable stack that carries *application*
//! traffic fast; this harness measures exactly that.  An HTTP/1.1 server
//! (`newt-apps`) listens `SO_REUSEPORT`-style on every shard through the
//! poll-based socket API; the in-process load generator opens hundreds of
//! concurrent keep-alive connections from the remote peer, issues GET
//! requests back to back, byte-verifies every response and timestamps each
//! request in **virtual time** — so rps and latency are properties of the
//! stack, not of the CI runner.
//!
//! The clean link carries a 5 ms one-way propagation delay (a metro-RTT
//! client), the same delay-link methodology the scaling bench uses: the
//! run is then bound by protocol capacity rather than by the host's core
//! count, so the 1→4 shard curve is meaningful on any CI machine — *if*
//! the per-request cost is low enough, which is precisely what the receive
//! fast path (GRO coalescing, delayed ACKs, O(active) scheduling) buys.
//!
//! Writes `BENCH_workload.json`.  Gates (all against the run itself or the
//! previously checked-in record, read before it is overwritten):
//!
//! * every row must complete all requests with zero verification failures,
//!   and no shard may sit idle at 4 shards;
//! * clean-link 4-shard rps must be at least [`SCALING_GATE`]× the
//!   clean-link 1-shard rps (the receive path must not serialise the
//!   sharded pipelines);
//! * clean-link 1-shard fabric messages-per-request must not regress more
//!   than [`MPR_GATE_FACTOR`]× over the checked-in record;
//! * clean-link 4-shard p99 must not regress more than
//!   [`P99_GATE_FACTOR`]× over the checked-in record;
//! * clean-link 4-shard messages-per-request must stay at or below
//!   [`TX_MPR_GATE`] (the transmit fast path hands the NIC one TSO
//!   super-segment per flow per poll round instead of a run of
//!   MSS-sized frames);
//! * `tx_copies` must be zero on every row: the send path carries
//!   refcounted `Bytes` views of the socket buffer end to end, and any
//!   fallback copy-publish is a regression.

use std::time::Duration;

use newt_apps::httpd::{Httpd, HttpdConfig};
use newt_apps::loadgen::{run_http_load, LoadConfig};
use newt_bench::{arg_or, header};
use newt_net::link::LinkConfig;
use newt_stack::builder::{NewtStack, StackConfig};

/// Requests each connection issues over its keep-alive session.
const REQUESTS_PER_CONNECTION: usize = 4;
/// Object fetched by every request.
const PATH: &str = "/bytes/2048";
/// Allowed p99 regression over the checked-in baseline.
const P99_GATE_FACTOR: f64 = 2.0;
/// Required clean-link rps ratio between the 4-shard and 1-shard runs.
const SCALING_GATE: f64 = 2.0;
/// Allowed messages-per-request regression over the checked-in baseline.
const MPR_GATE_FACTOR: f64 = 1.25;
/// Absolute ceiling on clean-link 4-shard messages-per-request once the
/// transmit fast path batches each response into one TSO super-segment.
const TX_MPR_GATE: f64 = 6.0;
/// One-way propagation delay of the "clean" measurement link.
const CLEAN_ONE_WAY_DELAY: Duration = Duration::from_millis(5);

struct Sample {
    shards: usize,
    link: &'static str,
    connections: usize,
    requests: u64,
    retries: u64,
    virtual_secs: f64,
    rps: f64,
    p50_us: f64,
    p99_us: f64,
    completed_all: bool,
    verify_failures: u64,
    served_per_shard: Vec<u64>,
    /// Messages enqueued on every fabric lane over the whole run.
    fabric_messages: u64,
    /// `fabric_messages / requests` — the receive-fast-path headline.
    messages_per_request: f64,
    /// Pure ACKs emitted per data segment received (delayed-ACK win).
    acks_per_segment: f64,
    /// Wire frames absorbed into GRO merges.
    rx_coalesced: u64,
    /// Data-carrying segments TCP handed to IP (one super-segment per
    /// flow per poll round under TSO).
    tx_segments: u64,
    /// Wire frames the NICs' TSO engines cut those segments into.
    tso_frames: u64,
    /// Fallback copy-publishes on the send path — must stay zero.
    tx_copies: u64,
}

/// `NEWT_WORKLOAD_LEGACY_RX=1` turns the receive fast path off (no GRO, no
/// delayed ACKs) to reproduce the pre-fast-path messages-per-request
/// baseline; gates are skipped and `BENCH_workload.json` is left untouched.
fn legacy_rx() -> bool {
    std::env::var_os("NEWT_WORKLOAD_LEGACY_RX").is_some()
}

fn bench_config(shards: usize, impaired: bool) -> StackConfig {
    let link = if impaired {
        LinkConfig::impaired()
    } else {
        // Protocol-bound measurement: a gigabit metro link whose RTT — not
        // the CI host's core count — dominates per-request latency, like
        // the scaling bench's delay link.
        LinkConfig::gigabit().propagation(CLEAN_ONE_WAY_DELAY)
    };
    let mut config = StackConfig::newtos()
        .shards(shards)
        .link(link)
        // Mild speed-up: virtual TCP timers (200 ms RTO) elapse fast on
        // the impaired runs while host scheduling noise stays small next
        // to the 10 ms virtual RTT of the clean link.
        .clock_speedup(2.0);
    if legacy_rx() {
        config = config.gro(false);
        config.tcp.delayed_ack = Duration::ZERO;
    }
    config
}

fn run_point(shards: usize, impaired: bool, connections: usize) -> Sample {
    let stack = NewtStack::start(bench_config(shards, impaired));
    let server =
        Httpd::spawn(stack.client(), stack.shards(), HttpdConfig::default()).expect("http server");
    let report = run_http_load(
        &stack,
        &LoadConfig {
            connections,
            requests_per_connection: REQUESTS_PER_CONNECTION,
            path: PATH.to_string(),
            response_timeout: Duration::from_secs(if impaired { 30 } else { 10 }),
            run_deadline: Duration::from_secs(300),
            ..LoadConfig::default()
        },
    );
    let telemetry = stack.telemetry();
    if std::env::var_os("NEWT_WORKLOAD_LANE_DEBUG").is_some() {
        let names = stack.fabric_lane_names();
        for s in 0..shards {
            for (name, q) in names.iter().zip(stack.fabric_lane_stats(s)) {
                if q.enqueued > 0 {
                    println!("    lane shard{s} {name}: {} msgs", q.enqueued);
                }
            }
        }
    }
    let served_per_shard: Vec<u64> = (0..shards)
        .map(|s| telemetry.tcp_shards[s].connections_established)
        .collect();
    let fabric_messages = telemetry.fabric_messages_total();
    let payload_segments = telemetry.payload_segments_in_total();
    let pure_acks = telemetry.pure_acks_out_total();
    let rx_coalesced: u64 = (0..stack.config().nics)
        .map(|i| telemetry.drivers[i].rx_coalesced)
        .sum();
    let tx_segments = telemetry.tx_segments_total();
    let tx_copies = telemetry.tx_copies_total();
    let tso_frames: u64 = (0..stack.config().nics)
        .map(|i| stack.nic_stats(i).tso_frames)
        .sum();
    let _ = server.stop();
    stack.shutdown();
    Sample {
        shards,
        link: if impaired { "impaired" } else { "clean" },
        connections,
        requests: report.completed,
        retries: report.retries,
        virtual_secs: report.virtual_secs,
        rps: report.rps,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        completed_all: report.completed_all,
        verify_failures: report.verify_failures,
        served_per_shard,
        fabric_messages,
        messages_per_request: fabric_messages as f64 / report.completed.max(1) as f64,
        acks_per_segment: pure_acks as f64 / payload_segments.max(1) as f64,
        rx_coalesced,
        tx_segments,
        tso_frames,
        tx_copies,
    }
}

/// Pulls a numeric field out of a previously written `BENCH_workload.json`
/// row (one result object per line, so a line scan is enough — no JSON
/// parser in the tree).  Returns `None` when the row or field is absent
/// (e.g. a record written before the field existed).
fn baseline_field(json: &str, shards: usize, field: &str) -> Option<f64> {
    let shard_tag = format!("\"shards\": {shards}");
    let field_tag = format!("\"{field}\": ");
    json.lines()
        .find(|l| l.contains(&shard_tag) && l.contains("\"link\": \"clean\""))
        .and_then(|l| {
            l.split(&field_tag)
                .nth(1)?
                .split(['}', ','])
                .next()?
                .trim()
                .parse()
                .ok()
        })
}

fn main() {
    header(
        "HTTP workload — keep-alive request/response over the sharded stack",
        "the application layer the paper's stack exists to carry",
    );
    // Connections at 4 shards (scaled down proportionally for 1/2).
    let connections_at_4 = arg_or(1, 200);

    let mut samples: Vec<Sample> = Vec::new();
    for impaired in [false, true] {
        for shards in [1usize, 2, 4] {
            let connections = (connections_at_4 * shards / 4).max(8);
            println!(
                "running {connections} connections x {REQUESTS_PER_CONNECTION} requests, {shards} shard(s), {} link...",
                if impaired { "impaired" } else { "clean" }
            );
            let sample = run_point(shards, impaired, connections);
            println!(
                "  {:>8} {:>2} shards: {:>6} reqs in {:>8.3}s virtual = {:>9.1} rps, p50 {:>9.1} us, p99 {:>9.1} us, {} reconnects, {:.1} msgs/req, {:.2} acks/seg, {} coalesced, {} tx segs -> {} tso frames, {} tx copies, served/shard {:?}",
                sample.link,
                sample.shards,
                sample.requests,
                sample.virtual_secs,
                sample.rps,
                sample.p50_us,
                sample.p99_us,
                sample.retries,
                sample.messages_per_request,
                sample.acks_per_segment,
                sample.rx_coalesced,
                sample.tx_segments,
                sample.tso_frames,
                sample.tx_copies,
                sample.served_per_shard,
            );
            samples.push(sample);
        }
    }

    if legacy_rx() {
        println!(
            "\nNEWT_WORKLOAD_LEGACY_RX set: baseline measurement only, no record written, no gates"
        );
        return;
    }

    // The regression gates read the previous (checked-in) record before it
    // is overwritten.
    let previous = std::fs::read_to_string("BENCH_workload.json").ok();
    let baseline_p99 = previous
        .as_deref()
        .and_then(|json| baseline_field(json, 4, "p99_us"));
    let baseline_mpr = previous
        .as_deref()
        .and_then(|json| baseline_field(json, 1, "messages_per_request"));

    let results: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"shards\": {}, \"link\": \"{}\", \"connections\": {}, \"requests\": {}, \"retries\": {}, \"virtual_secs\": {:.4}, \"rps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"completed_all\": {}, \"verify_failures\": {}, \"fabric_messages\": {}, \"messages_per_request\": {:.1}, \"acks_per_segment\": {:.3}, \"rx_coalesced\": {}, \"tx_segments\": {}, \"tso_frames\": {}, \"tx_copies\": {}, \"served_per_shard\": {:?}}}",
                s.shards,
                s.link,
                s.connections,
                s.requests,
                s.retries,
                s.virtual_secs,
                s.rps,
                s.p50_us,
                s.p99_us,
                s.completed_all,
                s.verify_failures,
                s.fabric_messages,
                s.messages_per_request,
                s.acks_per_segment,
                s.rx_coalesced,
                s.tx_segments,
                s.tso_frames,
                s.tx_copies,
                s.served_per_shard,
            )
        })
        .collect();
    // Rows owned by other benches are carried over verbatim: the
    // connection-scale bin (`connscale`) records its 100k-keep-alive row
    // into the same file, and overwriting it here would silently drop that
    // record (and its CI baseline) every time the workload bench reruns.
    let mut results = results;
    if let Some(prev) = previous.as_deref() {
        for line in prev.lines() {
            if line.contains("\"link\": \"connscale") {
                results.push(line.trim_end().trim_end_matches(',').to_string());
            }
        }
    }
    let json = format!(
        "{{\n  \"workload\": \"keep-alive HTTP GET {PATH}, {REQUESTS_PER_CONNECTION} requests/connection, virtual-time latency, clean link = gigabit + {} ms one-way delay\",\n  \"results\": [\n{}\n  ]\n}}\n",
        CLEAN_ONE_WAY_DELAY.as_millis(),
        results.join(",\n"),
    );
    match std::fs::write("BENCH_workload.json", &json) {
        Ok(()) => println!("\nwrote BENCH_workload.json"),
        Err(err) => eprintln!("could not write BENCH_workload.json: {err}"),
    }

    // ---- gates ------------------------------------------------------------
    let mut failed = false;
    for s in &samples {
        if !s.completed_all || s.verify_failures > 0 {
            eprintln!(
                "FAIL: {} {}-shard run lost requests (completed_all={}, verify_failures={})",
                s.link, s.shards, s.completed_all, s.verify_failures
            );
            failed = true;
        }
        if s.shards == 4 && s.served_per_shard.contains(&0) {
            eprintln!(
                "FAIL: {} 4-shard run left a shard idle: {:?}",
                s.link, s.served_per_shard
            );
            failed = true;
        }
        if s.tx_copies > 0 {
            eprintln!(
                "FAIL: {} {}-shard run fell off the zero-copy send path ({} tx copies)",
                s.link, s.shards, s.tx_copies
            );
            failed = true;
        }
    }

    let clean4_mpr = samples
        .iter()
        .find(|s| s.shards == 4 && s.link == "clean")
        .map(|s| s.messages_per_request)
        .unwrap_or(0.0);
    println!("tx batching gate: clean 4-shard {clean4_mpr:.1} msgs/req (ceiling {TX_MPR_GATE})");
    if clean4_mpr > TX_MPR_GATE {
        eprintln!(
            "FAIL: clean 4-shard messages-per-request {clean4_mpr:.1} exceeds the TSO ceiling {TX_MPR_GATE}"
        );
        failed = true;
    }

    let clean_rps = |shards: usize| {
        samples
            .iter()
            .find(|s| s.shards == shards && s.link == "clean")
            .map(|s| s.rps)
            .unwrap_or(0.0)
    };
    let (rps1, rps4) = (clean_rps(1), clean_rps(4));
    if rps1 > 0.0 {
        let ratio = rps4 / rps1;
        println!("scaling gate: clean 4-shard {rps4:.1} rps vs 1-shard {rps1:.1} rps ({ratio:.2}x, need >= {SCALING_GATE}x)");
        if ratio < SCALING_GATE {
            eprintln!("FAIL: 4-shard rps is only {ratio:.2}x of 1-shard (< {SCALING_GATE}x)");
            failed = true;
        }
    }

    let measured_mpr = samples
        .iter()
        .find(|s| s.shards == 1 && s.link == "clean")
        .map(|s| s.messages_per_request)
        .unwrap_or(0.0);
    match baseline_mpr {
        Some(base) if base > 0.0 => {
            let factor = measured_mpr / base;
            println!("messages-per-request gate: clean 1-shard {measured_mpr:.1} vs baseline {base:.1} ({factor:.2}x, bound {MPR_GATE_FACTOR}x)");
            if factor > MPR_GATE_FACTOR {
                eprintln!(
                    "FAIL: messages-per-request regressed {factor:.2}x (> {MPR_GATE_FACTOR}x) over the baseline"
                );
                failed = true;
            }
        }
        _ => println!(
            "messages-per-request gate: no baseline field found, recording {measured_mpr:.1} only"
        ),
    }

    let measured_p99 = samples
        .iter()
        .find(|s| s.shards == 4 && s.link == "clean")
        .map(|s| s.p99_us)
        .unwrap_or(0.0);
    match baseline_p99 {
        Some(base) if base > 0.0 => {
            let factor = measured_p99 / base;
            println!("p99 gate: clean 4-shard p99 {measured_p99:.1} us vs baseline {base:.1} us ({factor:.2}x)");
            if factor > P99_GATE_FACTOR {
                eprintln!(
                    "FAIL: p99 regressed {factor:.2}x (> {P99_GATE_FACTOR}x) over the baseline"
                );
                failed = true;
            }
        }
        _ => println!("p99 gate: no baseline BENCH_workload.json found, recording only"),
    }
    if failed {
        std::process::exit(1);
    }
    println!("PASS: workload completed on every link/shard point, bodies verified, scaling and message gates met");
}
