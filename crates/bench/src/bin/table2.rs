//! Table II — peak performance of outgoing TCP in various setups.
//!
//! Two complementary reproductions are printed:
//!
//! 1. the **analytic model** of `newt-sim`, calibrated with the paper's cycle
//!    costs, which reproduces the shape and magnitudes of the table;
//! 2. a **measured comparison** of the executable stack in three of the
//!    configurations (synchronous single-core baseline, split stack, split
//!    stack + TSO) on an unshaped link.  Absolute numbers depend entirely on
//!    the machine running this binary (the reference host has a single CPU
//!    core, so "dedicated cores" time-share); the expected observation is the
//!    *ordering* — the synchronous baseline is slowest and TSO helps.

use std::time::{Duration, Instant};

use newt_bench::{arg_or, header};
use newt_kernel::cost::CostModel;
use newt_net::link::LinkConfig;
use newt_net::peer::IPERF_PORT;
use newt_sim::table2;
use newt_stack::builder::{NewtStack, StackConfig, Topology};

fn measured_mbps(config: StackConfig, bytes: usize) -> f64 {
    let stack = NewtStack::start(config);
    let client = stack.client().with_timeout(Duration::from_secs(30));
    let socket = client.tcp_socket().expect("tcp socket");
    socket
        .connect(StackConfig::peer_addr(0), IPERF_PORT)
        .expect("connect");
    let chunk = vec![0u8; 64 * 1024];
    let start = Instant::now();
    let mut sent = 0usize;
    while sent < bytes {
        let n = chunk.len().min(bytes - sent);
        socket.send_all(&chunk[..n]).expect("send");
        sent += n;
    }
    // Wait for the peer to have received everything.
    let deadline = Instant::now() + Duration::from_secs(60);
    while stack.peer(0).bytes_received_on(IPERF_PORT) < bytes as u64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let elapsed = start.elapsed();
    let received = stack.peer(0).bytes_received_on(IPERF_PORT);
    stack.shutdown();
    received as f64 * 8.0 / elapsed.as_secs_f64() / 1e6
}

fn main() {
    header("Table II — peak performance of outgoing TCP", "Table II");

    // Part 1: the analytic model.
    let rows = table2::run(&CostModel::default());
    println!("{}", table2::render(&rows));

    // Part 2: measured ordering on this machine.
    let megabytes = arg_or(1, 8);
    let bytes = megabytes * 1024 * 1024;
    println!(
        "Measured on this host (one {}-MiB transfer per configuration, unshaped link):",
        megabytes
    );
    let configs: Vec<(&str, StackConfig)> = vec![
        (
            "synchronous single-core baseline (MINIX-3-like)",
            StackConfig::minix_like()
                .link(LinkConfig::unshaped())
                .clock_speedup(50.0),
        ),
        (
            "split stack, channels, no TSO",
            StackConfig::newtos()
                .tso(false)
                .link(LinkConfig::unshaped())
                .clock_speedup(50.0),
        ),
        (
            "split stack, channels, TSO",
            StackConfig::newtos()
                .link(LinkConfig::unshaped())
                .clock_speedup(50.0),
        ),
        (
            "single-server stack, channels, TSO",
            StackConfig::newtos()
                .topology(Topology::SingleServer)
                .link(LinkConfig::unshaped())
                .clock_speedup(50.0),
        ),
    ];
    println!("{:<50} {:>14}", "configuration", "measured Mbps");
    for (name, config) in configs {
        let mbps = measured_mbps(config, bytes);
        println!("{:<50} {:>14.0}", name, mbps);
    }
    println!();
    println!("note: absolute measured numbers reflect this host, not the paper's testbed;");
    println!("      the analytic model above carries the paper's magnitudes.");
}
