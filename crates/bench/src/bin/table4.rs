//! Table IV — consequences of the injected crashes.
//!
//! Runs the same campaign as `table3` (the two tables come from the same 100
//! runs in the paper) and prints the outcome classification: fully
//! transparent recoveries, reachability from outside, broken TCP
//! connections, transparency to UDP and reboots.

use newt_bench::{arg_or, header};
use newt_faults::campaign::{run_campaign, CampaignConfig};

fn main() {
    let runs = arg_or(1, 20);
    header("Table IV — consequences of crashes", "Table IV");
    println!("running {runs} fault-injection runs (paper: 100) ...");
    let config = CampaignConfig {
        runs,
        ..CampaignConfig::default()
    };
    let report = run_campaign(&config);

    println!();
    println!("{}", report.render_table4());
    println!(
        "raw counts over {} runs: transparent {}, reachable {} (+{} after manual restart), \
         tcp broken {}, udp transparent {}, reboots {}",
        report.total(),
        report.fully_transparent(),
        report.reachable(),
        report.manually_fixed(),
        report.tcp_broken(),
        report.udp_transparent(),
        report.reboots()
    );
}
