//! Hostile-traffic overload bench — the adversarial counterpart of the
//! dependability campaign.  While well-behaved keep-alive HTTP clients
//! run verified load against the sharded stack, the peer host turns
//! hostile mid-run and launches each of the four attacks in turn:
//!
//! * **syn-flood** — spoofed, unresolvable sources that never complete
//!   the handshake, pushing the listener to its half-open cap and onto
//!   stateless SYN cookies;
//! * **slow-loris** — real connections dripping one header byte at a
//!   time, killed by the server's header-read deadline;
//! * **churn** — waves of full handshakes slammed shut with RSTs,
//!   shed with `503` at the admission watermark;
//! * **malformed-fuzz** — truncated, bit-flipped and lying frames,
//!   counted and dropped by the IP and TCP demux hardening.
//!
//! Every cell runs at {1, 4} shards.  Writes `BENCH_overload.json`.
//!
//! Gates (absolute, shared with the `newt-faults` module tests via
//! [`OverloadRecord::gate_failures`]): every legitimate body verifies
//! and every quota completes, half-open occupancy stays under the cap
//! and drains to zero, goodput under the SYN flood stays ≥ 70 % of
//! steady state, and each attack demonstrably engaged its defense.

use newt_bench::header;
use newt_faults::overload::{run_overload, AttackKind, OverloadConfig, OverloadRecord};

fn row(r: &OverloadRecord) -> String {
    format!(
        "    {{\"attack\": \"{}\", \"shards\": {}, \"completed\": {}, \"expected\": {}, \"verify_failures\": {}, \"retries\": {}, \"goodput_retained\": {:.3}, \"attack_events\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"half_open_cap\": {}, \"half_open_peak\": {}, \"half_open_after\": {}, \"half_open_drops\": {}, \"half_open_reaped\": {}, \"syn_cookies_sent\": {}, \"syn_cookies_validated\": {}, \"syn_cookies_rejected\": {}, \"rsts_out\": {}, \"rx_malformed\": {}, \"ip_parse_errors\": {}, \"arp_overflow\": {}, \"shed_503\": {}, \"loris_kills\": {}, \"accept_paused\": {}}}",
        r.attack,
        r.shards,
        r.completed,
        r.expected_requests,
        r.verify_failures,
        r.retries,
        r.goodput_retained,
        r.attack_events,
        r.p50_us,
        r.p99_us,
        r.half_open_cap,
        r.half_open_peak,
        r.half_open_after,
        r.half_open_drops,
        r.half_open_reaped,
        r.syn_cookies_sent,
        r.syn_cookies_validated,
        r.syn_cookies_rejected,
        r.rsts_out,
        r.rx_malformed,
        r.ip_parse_errors,
        r.arp_overflow,
        r.shed_503,
        r.loris_kills,
        r.accept_paused,
    )
}

fn main() {
    header(
        "Overload under attack — hostile traffic against the serving stack",
        "SYN flood / slow loris / churn / malformed fuzz vs the PR6 defenses",
    );

    let mut records = Vec::new();
    for shards in [1usize, 4] {
        for attack in AttackKind::ALL {
            let config = OverloadConfig::cell(shards, attack);
            println!(
                "running {} vs {} shard(s): {} conns x {} reqs, attack volume {}...",
                attack.label(),
                shards,
                config.connections,
                config.requests_per_connection,
                config.attack_volume,
            );
            let record = run_overload(&config);
            println!("{}", record.render());
            records.push(record);
        }
    }

    let rows: Vec<String> = records.iter().map(row).collect();
    let json = format!(
        "{{\n  \"campaign\": \"hostile traffic vs the serving stack: spoofed SYN flood (half-open cap + SYN cookies + SYN-RECEIVED reaper), slow loris (header-read deadline), connection churn (503 shedding + accept pausing), malformed-frame fuzz (demux hardening); goodput = legitimate completions during the attack window vs steady state\",\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n"),
    );
    match std::fs::write("BENCH_overload.json", &json) {
        Ok(()) => println!("wrote BENCH_overload.json"),
        Err(err) => eprintln!("could not write BENCH_overload.json: {err}"),
    }

    // ---- gates ------------------------------------------------------------
    let mut failed = false;
    for record in &records {
        for failure in record.gate_failures() {
            eprintln!("FAIL: {failure}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "PASS: all bodies byte-verified under attack, goodput within the gate, half-open occupancy bounded and drained, every defense engaged"
    );
}
