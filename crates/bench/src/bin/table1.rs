//! Table I — complexity of recovering each component.
//!
//! The paper's Table I is qualitative (how much state each component has and
//! how hard it is to restore).  This harness makes it quantitative for the
//! reproduction: it boots the stack, exercises it so that every component
//! has state, then reports per component how many bytes of recoverable state
//! sit in the storage server and whether a crash of that component was
//! recovered transparently.

use std::time::Duration;

use newt_bench::{fastpath, header};
use newt_faults::campaign::{run_one, CampaignConfig, FaultKind};
use newt_net::link::LinkConfig;
use newt_stack::builder::{NewtStack, StackConfig};
use newt_stack::endpoints::Component;
use newt_stack::pf::FilterRule;

fn paper_row(component: Component) -> &'static str {
    match component {
        Component::Driver(_) => "No state, simple restart",
        Component::Ip => "Small static state, easy to restore",
        Component::Udp => "Small state per socket, low frequency of change",
        Component::PacketFilter => "Static configuration + recoverable connection state",
        Component::Tcp => "Large, frequently changing state; only listening sockets recovered",
        Component::Syscall | Component::SyscallShard(_) => {
            "No state (not listed in the paper's table)"
        }
        Component::TcpShard(_) | Component::UdpShard(_) | Component::IpShard(_) => {
            "Replica of the matching singleton row, one per shard"
        }
    }
}

fn storage_component(component: Component) -> &'static str {
    match component {
        Component::Driver(_) => "driver",
        Component::Ip => "ip",
        Component::Udp => "udp",
        Component::PacketFilter => "pf",
        Component::Tcp => "tcp",
        Component::Syscall | Component::SyscallShard(_) => "syscall",
        Component::TcpShard(_) => "tcp",
        Component::UdpShard(_) => "udp",
        Component::IpShard(_) => "ip",
    }
}

fn main() {
    header("Table I — ability to restart each component", "Table I");

    // Boot a stack and give every component some state: filter rules, a TCP
    // connection, a bound UDP socket.
    let rules: Vec<FilterRule> = (0..63).map(|i| FilterRule::pass_filler(i + 1)).collect();
    let stack = NewtStack::start(
        StackConfig::newtos()
            .link(LinkConfig::unshaped())
            .clock_speedup(50.0)
            .filter_rules(rules),
    );
    let client = stack.client();
    let tcp = client.tcp_socket().expect("tcp socket");
    tcp.connect(StackConfig::peer_addr(0), newt_net::peer::SSH_PORT)
        .expect("connect");
    tcp.send_all(b"table1 state\n").expect("send");
    let udp = client.udp_socket().expect("udp socket");
    udp.bind(5353).expect("bind");
    udp.send_to(
        b"probe",
        StackConfig::peer_addr(0),
        newt_net::peer::DNS_PORT,
    )
    .expect("send");
    std::thread::sleep(Duration::from_millis(200));

    let storage = stack.storage();
    println!(
        "{:<10} {:>14}  {:<28}  paper",
        "component", "state (bytes)", "crash consequence (measured)"
    );

    let components = [
        Component::Driver(0),
        Component::Ip,
        Component::Udp,
        Component::PacketFilter,
        Component::Tcp,
    ];
    let sizes: Vec<(Component, usize)> = components
        .iter()
        .map(|c| (*c, storage.component_size(storage_component(*c))))
        .collect();
    stack.shutdown();

    // One fault-injection run per component tells us whether its crash was
    // transparent in practice.
    let config = CampaignConfig {
        clock_speedup: 50.0,
        ..CampaignConfig::quick(1)
    };
    for (component, size) in sizes {
        let outcome = run_one(&config, component, FaultKind::Crash);
        let consequence = if outcome.tcp_session_survived && outcome.udp_transparent {
            "transparent restart"
        } else if outcome.reachable {
            "connections lost, host reachable"
        } else {
            "manual action needed"
        };
        println!(
            "{:<10} {:>14}  {:<28}  {}",
            component.name(),
            size,
            consequence,
            paper_row(component)
        );
    }

    // Alongside the recovery table, measure the channel fast path and leave
    // a machine-readable record so the perf trajectory is tracked across
    // pull requests.
    let report = fastpath::measure();
    println!();
    println!("fast path (ns/message): {report}");
    match fastpath::write_json(&report, "BENCH_fastpath.json") {
        Ok(path) => println!("wrote {path}"),
        Err(err) => eprintln!("could not write BENCH_fastpath.json: {err}"),
    }
}
