//! End-to-end throughput of the executable stack.
//!
//! Each iteration pushes one megabyte through a running split stack (TSO on
//! versus off) to the iperf-like peer.  Absolute numbers are host dependent;
//! the interesting signal is the TSO-on / TSO-off ratio, mirroring the
//! Table II rows with and without offloads.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use newt_net::link::LinkConfig;
use newt_net::peer::IPERF_PORT;
use newt_stack::builder::{NewtStack, StackConfig};

/// One 64 KiB send buffer shared by every iteration — allocated once so the
/// measured loop times the stack, not the allocator.
fn send_chunk() -> &'static [u8] {
    static CHUNK: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    CHUNK.get_or_init(|| vec![0u8; 64 * 1024])
}

fn transfer(
    stack: &NewtStack,
    socket: &newt_stack::posix::TcpSocket,
    bytes: usize,
    already: u64,
) -> u64 {
    let chunk = send_chunk();
    let mut sent = 0usize;
    while sent < bytes {
        let n = chunk.len().min(bytes - sent);
        socket.send_all(&chunk[..n]).expect("send");
        sent += n;
    }
    let target = already + bytes as u64;
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while stack.peer(0).bytes_received_on(IPERF_PORT) < target
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_micros(500));
    }
    stack.peer(0).bytes_received_on(IPERF_PORT)
}

fn bench_stack(c: &mut Criterion) {
    let mut group = c.benchmark_group("stack_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    const MB: usize = 1024 * 1024;

    for (label, tso) in [("split_tso_on_1MiB", true), ("split_tso_off_1MiB", false)] {
        group.bench_function(label, |b| {
            let stack = NewtStack::start(
                StackConfig::newtos()
                    .tso(tso)
                    .link(LinkConfig::unshaped())
                    .clock_speedup(50.0),
            );
            let client = stack.client().with_timeout(Duration::from_secs(30));
            let socket = client.tcp_socket().expect("socket");
            socket
                .connect(StackConfig::peer_addr(0), IPERF_PORT)
                .expect("connect");
            let mut received = 0u64;
            b.iter(|| {
                received = transfer(&stack, &socket, MB, received);
                criterion::black_box(received);
            });
            stack.shutdown();
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stack);
criterion_main!(benches);
