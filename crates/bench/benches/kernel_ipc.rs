//! Microbenchmarks of the slow path: synchronous kernel IPC.
//!
//! Compared with the `channels` benchmarks, these show the gap the paper
//! exploits — every kernel-mediated message pays traps (and IPIs when the
//! destination is idle), which the fast-path channels avoid entirely.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use newt_channels::endpoint::Endpoint;
use newt_kernel::cost::CostModel;
use newt_kernel::ipc::{KernelIpc, Message};

fn bench_kernel_ipc(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_ipc");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("send_try_receive_same_thread", |b| {
        let kernel = KernelIpc::new(CostModel::default());
        let a = Endpoint::from_raw(1);
        let srv = Endpoint::from_raw(2);
        kernel.attach(a);
        kernel.attach(srv);
        b.iter(|| {
            kernel
                .send(a, srv, Message::new(1).with_word(0, 7))
                .unwrap();
            criterion::black_box(kernel.try_receive(srv).unwrap());
        });
    });

    group.bench_function("sendrec_round_trip_across_threads", |b| {
        let kernel = KernelIpc::new(CostModel::default());
        let client = Endpoint::from_raw(1);
        let server = Endpoint::from_raw(2);
        kernel.attach(client);
        kernel.attach(server);
        let server_kernel = kernel.clone();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_server = std::sync::Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_server.load(std::sync::atomic::Ordering::Relaxed) {
                if let Ok(msg) = server_kernel.receive(server, Duration::from_millis(50)) {
                    let _ = server_kernel.send(server, msg.source, Message::new(msg.mtype + 1));
                }
            }
        });
        b.iter(|| {
            let reply = kernel
                .sendrec(client, server, Message::new(10), Duration::from_secs(5))
                .unwrap();
            criterion::black_box(reply.mtype);
        });
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        handle.join().unwrap();
    });

    group.bench_function("send_with_emulated_trap_costs", |b| {
        // With cost emulation every trap spins for its modelled duration —
        // this is what makes the MINIX-3-like baseline measurably slower.
        let kernel = KernelIpc::with_cost_emulation(CostModel::default());
        let a = Endpoint::from_raw(1);
        let srv = Endpoint::from_raw(2);
        kernel.attach(a);
        kernel.attach(srv);
        b.iter(|| {
            kernel.send(a, srv, Message::new(1)).unwrap();
            criterion::black_box(kernel.try_receive(srv).unwrap());
        });
    });

    group.finish();
}

criterion_group!(benches, bench_kernel_ipc);
criterion_main!(benches);
