//! Microbenchmarks of the fast-path channel primitives (paper §IV).
//!
//! The paper's headline micro-measurement: a void kernel call costs ~150
//! cycles hot / ~3000 cold, while enqueueing a message on a user-space
//! channel between two cores costs ~30 cycles.  These benchmarks measure the
//! reproduction's equivalents: SPSC enqueue/dequeue, pool publish/read/free
//! and the request database.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use newt_channels::endpoint::Endpoint;
use newt_channels::pool::Pool;
use newt_channels::reqdb::{AbortPolicy, RequestDb};
use newt_channels::spsc;

fn bench_spsc(c: &mut Criterion) {
    let mut group = c.benchmark_group("spsc");
    group.sample_size(20).warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(1));

    group.bench_function("enqueue_dequeue_same_thread", |b| {
        let (tx, rx) = spsc::channel::<u64>(1024);
        b.iter(|| {
            tx.try_send(criterion::black_box(42)).unwrap();
            criterion::black_box(rx.try_recv().unwrap());
        });
    });

    group.bench_function("enqueue_while_consumer_drains", |b| {
        // The paper's scenario: the receiver keeps consuming on another core
        // while the sender enqueues asynchronously.
        let (tx, rx) = spsc::channel::<u64>(4096);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_consumer = std::sync::Arc::clone(&stop);
        let consumer = std::thread::spawn(move || {
            while !stop_consumer.load(std::sync::atomic::Ordering::Relaxed) {
                while rx.try_recv().is_ok() {}
                std::hint::spin_loop();
            }
        });
        b.iter(|| {
            // Retry on full; the consumer drains continuously.
            let mut v = criterion::black_box(7u64);
            loop {
                match tx.try_send(v) {
                    Ok(()) => break,
                    Err(e) => v = e.into_inner(),
                }
            }
        });
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        consumer.join().unwrap();
    });
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool");
    group.sample_size(20).warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(1));
    let pool = Pool::new("bench", Endpoint::from_raw(1), 2048, 256);
    let reader = pool.reader();
    let payload = vec![0xa5u8; 1460];
    group.bench_function("publish_read_free_1460B", |b| {
        b.iter(|| {
            let ptr = pool.publish(&payload).unwrap();
            criterion::black_box(reader.read(&ptr).unwrap());
            pool.free(&ptr).unwrap();
        });
    });
    group.finish();
}

fn bench_reqdb(c: &mut Criterion) {
    let mut group = c.benchmark_group("reqdb");
    group.sample_size(20).warm_up_time(Duration::from_millis(300)).measurement_time(Duration::from_secs(1));
    group.bench_function("submit_complete", |b| {
        let mut db: RequestDb<u64> = RequestDb::new();
        let dest = Endpoint::from_raw(4);
        b.iter(|| {
            let id = db.submit(dest, AbortPolicy::Resubmit, criterion::black_box(99));
            criterion::black_box(db.complete(id));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_spsc, bench_pool, bench_reqdb);
criterion_main!(benches);
