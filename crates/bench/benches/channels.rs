//! Microbenchmarks of the fast-path channel primitives (paper §IV).
//!
//! The paper's headline micro-measurement: a void kernel call costs ~150
//! cycles hot / ~3000 cold, while enqueueing a message on a user-space
//! channel between two cores costs ~30 cycles.  These benchmarks measure the
//! reproduction's equivalents: SPSC enqueue/dequeue (single-message and
//! batched, direct and through the mutex-guarded handle the fabric used
//! before the lock-free fast path), pool publish/read/free and the request
//! database.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;

use newt_channels::endpoint::Endpoint;
use newt_channels::pool::Pool;
use newt_channels::reqdb::{AbortPolicy, RequestDb};
use newt_channels::spsc;

const BATCH: usize = 64;

fn bench_spsc(c: &mut Criterion) {
    let mut group = c.benchmark_group("spsc");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("enqueue_dequeue_same_thread", |b| {
        let (mut tx, mut rx) = spsc::channel::<u64>(1024);
        b.iter(|| {
            tx.try_send(criterion::black_box(42)).unwrap();
            criterion::black_box(rx.try_recv().unwrap());
        });
    });

    // The seed's fabric path: every message takes an uncontended mutex
    // acquisition on each side.  Kept as the baseline the lock-free handles
    // are measured against.
    group.bench_function("enqueue_dequeue_mutex_guarded", |b| {
        let (tx, rx) = spsc::channel::<u64>(1024);
        let tx = Arc::new(Mutex::new(tx));
        let rx = Arc::new(Mutex::new(rx));
        b.iter(|| {
            tx.lock().try_send(criterion::black_box(42)).unwrap();
            criterion::black_box(rx.lock().try_recv().unwrap());
        });
    });

    group.bench_function("batch64_send_drain_same_thread", |b| {
        let (mut tx, mut rx) = spsc::channel::<u64>(1024);
        let mut batch: Vec<u64> = Vec::with_capacity(BATCH);
        let mut out: Vec<u64> = Vec::with_capacity(BATCH);
        b.iter(|| {
            batch.clear();
            batch.extend(0..BATCH as u64);
            tx.send_batch(&mut batch);
            out.clear();
            criterion::black_box(rx.drain_into(&mut out));
        });
    });

    // The seed's per-message mutex path, batch-sized for a fair per-batch
    // comparison: 64 lock/unlock pairs per side plus a fresh Vec per drain.
    group.bench_function("batch64_mutex_single_message_baseline", |b| {
        let (tx, rx) = spsc::channel::<u64>(1024);
        let tx = Arc::new(Mutex::new(tx));
        let rx = Arc::new(Mutex::new(rx));
        b.iter(|| {
            for i in 0..BATCH as u64 {
                tx.lock().try_send(criterion::black_box(i)).unwrap();
            }
            let drained: Vec<u64> = rx.lock().drain();
            criterion::black_box(drained);
        });
    });

    group.bench_function("enqueue_while_consumer_drains", |b| {
        // The paper's scenario: the receiver keeps consuming on another core
        // while the sender enqueues asynchronously.
        let (mut tx, mut rx) = spsc::channel::<u64>(4096);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_consumer = std::sync::Arc::clone(&stop);
        let consumer = std::thread::spawn(move || {
            let mut scratch = Vec::with_capacity(4096);
            while !stop_consumer.load(std::sync::atomic::Ordering::Relaxed) {
                scratch.clear();
                while rx.drain_into(&mut scratch) != 0 {
                    scratch.clear();
                }
                std::hint::spin_loop();
            }
        });
        b.iter(|| {
            // Retry on full; the consumer drains continuously.
            let mut v = criterion::black_box(7u64);
            loop {
                match tx.try_send(v) {
                    Ok(()) => break,
                    Err(e) => v = e.into_inner(),
                }
            }
        });
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        consumer.join().unwrap();
    });

    group.bench_function("batch64_enqueue_while_consumer_drains", |b| {
        let (mut tx, mut rx) = spsc::channel::<u64>(4096);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_consumer = std::sync::Arc::clone(&stop);
        let consumer = std::thread::spawn(move || {
            let mut scratch = Vec::with_capacity(4096);
            while !stop_consumer.load(std::sync::atomic::Ordering::Relaxed) {
                scratch.clear();
                while rx.drain_into(&mut scratch) != 0 {
                    scratch.clear();
                }
                std::hint::spin_loop();
            }
        });
        let mut batch: Vec<u64> = Vec::with_capacity(BATCH);
        b.iter(|| {
            batch.clear();
            batch.extend(0..BATCH as u64);
            while !batch.is_empty() {
                if tx.send_batch(&mut batch) == 0 {
                    std::hint::spin_loop();
                }
            }
        });
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        consumer.join().unwrap();
    });
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let pool = Pool::new("bench", Endpoint::from_raw(1), 2048, 256);
    let reader = pool.reader();
    let payload = vec![0xa5u8; 1460];
    group.bench_function("publish_read_free_1460B", |b| {
        b.iter(|| {
            let ptr = pool.publish(&payload).unwrap();
            criterion::black_box(reader.read(&ptr).unwrap());
            pool.free(&ptr).unwrap();
        });
    });
    group.finish();
}

fn bench_reqdb(c: &mut Criterion) {
    let mut group = c.benchmark_group("reqdb");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("submit_complete", |b| {
        let mut db: RequestDb<u64> = RequestDb::new();
        let dest = Endpoint::from_raw(4);
        b.iter(|| {
            let id = db.submit(dest, AbortPolicy::Resubmit, criterion::black_box(99));
            criterion::black_box(db.complete(id));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_spsc, bench_pool, bench_reqdb);
criterion_main!(benches);
