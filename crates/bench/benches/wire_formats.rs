//! Microbenchmarks of packet parsing/building and checksumming — the
//! per-packet protocol work whose cost the evaluation's cycle model uses.

use std::net::Ipv4Addr;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use newt_net::wire::{
    internet_checksum, EtherType, EthernetFrame, IpProtocol, Ipv4Packet, MacAddr, TcpFlags,
    TcpSegment,
};

fn sample_frame(payload: usize) -> Vec<u8> {
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 2);
    let mut seg = TcpSegment::control(40_000, 5001, 1, 1, TcpFlags::PSH_ACK);
    seg.payload = vec![0x3cu8; payload];
    let ip = Ipv4Packet::new(src, dst, IpProtocol::Tcp, seg.build(src, dst));
    EthernetFrame::new(
        MacAddr::from_index(1),
        MacAddr::from_index(2),
        EtherType::Ipv4,
        ip.build(),
    )
    .build()
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    let frame = sample_frame(1460);
    group.bench_function("parse_full_frame_1460B", |b| {
        b.iter(|| {
            let eth = EthernetFrame::parse(criterion::black_box(&frame)).unwrap();
            let ip = Ipv4Packet::parse(&eth.payload).unwrap();
            let tcp = TcpSegment::parse(&ip.payload, ip.src, ip.dst).unwrap();
            criterion::black_box(tcp.payload.len());
        });
    });

    group.bench_function("build_full_frame_1460B", |b| {
        b.iter(|| criterion::black_box(sample_frame(1460).len()));
    });

    let payload = vec![0u8; 1460];
    group.bench_function("internet_checksum_1460B", |b| {
        b.iter(|| criterion::black_box(internet_checksum(criterion::black_box(&payload))));
    });

    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
