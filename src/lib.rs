//! Workspace-level helpers for the NewtOS reproduction's examples and
//! integration tests.
//!
//! The real library lives in the [`newtos`] facade crate (and the crates it
//! re-exports); this thin crate only hosts a few conveniences shared by the
//! runnable examples under `examples/` and the integration tests under
//! `tests/`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use newtos;

use std::time::Duration;

use newtos::net::link::LinkConfig;
use newtos::StackConfig;

/// Returns a stack configuration suitable for interactive examples: an
/// unshaped link (so the host's speed, not the simulated wire, is the limit)
/// and a moderate clock speed-up.
pub fn example_config() -> StackConfig {
    StackConfig::newtos()
        .link(LinkConfig::unshaped())
        .clock_speedup(20.0)
}

/// Returns a stack configuration suitable for integration tests: unshaped
/// link, higher speed-up, so multi-second protocol timers elapse quickly.
pub fn test_config() -> StackConfig {
    StackConfig::newtos()
        .link(LinkConfig::unshaped())
        .clock_speedup(50.0)
}

/// Waits until `condition` returns `true` or `timeout` (real time) expires;
/// returns whether the condition was met.
pub fn wait_for<F: FnMut() -> bool>(mut condition: F, timeout: Duration) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        if condition() {
            return true;
        }
        if std::time::Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_reasonable() {
        assert!(example_config().tso);
        assert!(test_config().clock_speedup > example_config().clock_speedup);
    }

    #[test]
    fn wait_for_observes_conditions() {
        assert!(wait_for(|| true, Duration::from_millis(10)));
        assert!(!wait_for(|| false, Duration::from_millis(20)));
    }
}
