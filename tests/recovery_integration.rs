//! Integration tests of the dependability story: crashes of individual
//! components underneath live traffic, live updates, and the recoverable
//! state kept in the storage server.

use std::time::Duration;

use newtos::net::peer::{DNS_PORT, IPERF_PORT, SSH_PORT};
use newtos::{Component, FaultAction, NewtStack, StackConfig};
use newtos_suite::{test_config, wait_for};

fn crash_and_wait(stack: &NewtStack, component: Component) {
    let before = stack.restart_count(component);
    assert!(stack.inject_fault(component, FaultAction::Crash));
    assert!(
        wait_for(
            || stack.restart_count(component) > before,
            Duration::from_secs(30)
        ),
        "{component} was never restarted"
    );
    assert!(stack.wait_component_running(component, Duration::from_secs(30)));
    std::thread::sleep(Duration::from_millis(300));
}

#[test]
fn driver_crash_is_survived_by_a_running_transfer() {
    let stack = NewtStack::start(test_config());
    let client = stack.client().with_timeout(Duration::from_secs(20));
    let socket = client.tcp_socket().expect("socket");
    socket
        .connect(StackConfig::peer_addr(0), IPERF_PORT)
        .expect("connect");

    socket.send_all(&vec![1u8; 64 * 1024]).expect("send before");
    crash_and_wait(&stack, Component::Driver(0));
    socket.send_all(&vec![2u8; 64 * 1024]).expect("send after");

    assert!(
        wait_for(
            || stack.peer(0).bytes_received_on(IPERF_PORT) >= 128 * 1024,
            Duration::from_secs(60)
        ),
        "transfer did not complete across the driver crash"
    );
    assert!(!stack.crash_log().is_empty());
    stack.shutdown();
}

#[test]
fn ip_crash_resets_the_nic_and_traffic_recovers() {
    let stack = NewtStack::start(test_config());
    let client = stack.client().with_timeout(Duration::from_secs(30));
    let socket = client.tcp_socket().expect("socket");
    socket
        .connect(StackConfig::peer_addr(0), IPERF_PORT)
        .expect("connect");
    socket.send_all(&vec![1u8; 32 * 1024]).expect("send before");
    assert!(wait_for(
        || stack.peer(0).bytes_received_on(IPERF_PORT) >= 32 * 1024,
        Duration::from_secs(60)
    ));

    crash_and_wait(&stack, Component::Ip);
    // The device was reset because the singleton IP owned the receive pool
    // (`nic_stats`/`rx_queue` are the accessors that stay meaningful on
    // multi-queue adapters; a sharded stack would only reset one queue).
    assert!(
        stack.nic_stats(0).resets >= 1,
        "ip crash must reset the adapter"
    );

    // After the link comes back the same connection keeps going (TCP
    // retransmits whatever was lost during the outage).
    socket.send_all(&vec![2u8; 32 * 1024]).expect("send after");
    assert!(
        wait_for(
            || stack.peer(0).bytes_received_on(IPERF_PORT) >= 64 * 1024,
            Duration::from_secs(90)
        ),
        "transfer did not recover after the ip crash"
    );
    stack.shutdown();
}

#[test]
fn tcp_crash_recovers_listening_sockets_but_not_connections() {
    let stack = NewtStack::start(test_config());
    let client = stack.client().with_timeout(Duration::from_secs(20));

    // An established connection and a listening socket.
    let established = client.tcp_socket().expect("socket");
    established
        .connect(StackConfig::peer_addr(0), SSH_PORT)
        .expect("connect");
    established.send_all(b"hello\n").expect("send");
    let listener = client.tcp_socket().expect("listener");
    listener.bind(2222).expect("bind");
    listener.listen(4).expect("listen");

    crash_and_wait(&stack, Component::Tcp);

    // The established connection is gone...
    let mut buf = [0u8; 16];
    assert!(
        established.recv(&mut buf).is_err() || established.send(b"x").is_err(),
        "an established connection should not survive a tcp crash"
    );
    // ...but the system accepts new connections immediately (the listening
    // socket state was recovered; new outbound connections work too).
    let fresh = client.tcp_socket().expect("new socket after crash");
    fresh
        .connect(StackConfig::peer_addr(0), SSH_PORT)
        .expect("reconnect after crash");
    fresh.send_all(b"back again\n").expect("send after crash");
    let mut reply = vec![0u8; 11];
    fresh.recv_exact(&mut reply).expect("echo after crash");
    assert_eq!(reply, b"back again\n");
    // The recovered listener is still registered in the TCP server's state.
    let summaries = stack.storage().keys("tcp");
    assert!(!summaries.is_empty());
    stack.shutdown();
}

#[test]
fn udp_crash_is_transparent_to_bound_sockets() {
    let stack = NewtStack::start(test_config());
    let client = stack.client().with_timeout(Duration::from_secs(20));
    let socket = client.udp_socket().expect("socket");
    socket.bind(5353).expect("bind");
    socket
        .send_to(b"one", StackConfig::peer_addr(0), DNS_PORT)
        .expect("send");
    assert!(socket.recv_from().is_ok());

    crash_and_wait(&stack, Component::Udp);

    // Same socket, same shared buffer, new UDP incarnation.
    socket
        .send_to(b"two", StackConfig::peer_addr(0), DNS_PORT)
        .expect("send after crash");
    let (payload, _, _) = socket.recv_from().expect("answer after crash");
    assert_eq!(payload, b"answer:two");
    stack.shutdown();
}

#[test]
fn packet_filter_crash_loses_no_packets() {
    let stack = NewtStack::start(test_config());
    let client = stack.client().with_timeout(Duration::from_secs(20));
    let socket = client.tcp_socket().expect("socket");
    socket
        .connect(StackConfig::peer_addr(0), IPERF_PORT)
        .expect("connect");
    socket.send_all(&vec![0u8; 64 * 1024]).expect("send before");
    crash_and_wait(&stack, Component::PacketFilter);
    socket.send_all(&vec![0u8; 64 * 1024]).expect("send after");
    assert!(wait_for(
        || stack.peer(0).bytes_received_on(IPERF_PORT) >= 128 * 1024,
        Duration::from_secs(60)
    ));
    // Exactly every byte arrived (the peer counts in-order goodput only).
    assert_eq!(stack.peer(0).bytes_received_on(IPERF_PORT), 128 * 1024);
    stack.shutdown();
}

#[test]
fn repeated_crashes_of_the_same_component_keep_recovering() {
    let stack = NewtStack::start(test_config());
    let client = stack.client().with_timeout(Duration::from_secs(20));
    let socket = client.udp_socket().expect("socket");
    socket.bind(0).expect("bind");
    for round in 0..3 {
        crash_and_wait(&stack, Component::PacketFilter);
        let query = format!("round-{round}");
        socket
            .send_to(query.as_bytes(), StackConfig::peer_addr(0), DNS_PORT)
            .expect("send");
        let (payload, _, _) = socket.recv_from().expect("answer");
        assert_eq!(payload, format!("answer:{query}").as_bytes());
    }
    assert!(stack.restart_count(Component::PacketFilter) >= 3);
    stack.shutdown();
}

/// Rolls *every* component kind — TCP, UDP, IP, the packet filter, the
/// driver and the SYSCALL server — through a live update and checks the
/// stamp contract for each: the restart is marked *requested* (detection
/// latency is ~0 by definition: the request is the detection), the crash
/// log never sees it, and sockets opened before the roll keep working
/// after the last component has been replaced.
#[test]
fn live_update_of_every_component_leaves_requested_stamps_and_no_crash_log() {
    let stack = NewtStack::start(test_config());
    let client = stack.client().with_timeout(Duration::from_secs(20));

    // Pre-roll traffic: a bound UDP socket and an established TCP
    // connection, both of which must survive the full roll.
    let udp = client.udp_socket().expect("udp socket");
    udp.bind(0).expect("bind");
    udp.send_to(b"pre-roll", StackConfig::peer_addr(0), DNS_PORT)
        .expect("send");
    assert!(udp.recv_from().is_ok());
    let tcp = client.tcp_socket().expect("tcp socket");
    tcp.connect(StackConfig::peer_addr(0), SSH_PORT)
        .expect("connect");
    tcp.send_all(b"pre-roll\n").expect("send");
    let mut echo = vec![0u8; 9];
    tcp.recv_exact(&mut echo).expect("echo before the roll");

    for component in stack.fault_targets() {
        let before = stack.restart_count(component);
        assert!(
            stack.live_update(component),
            "{component} refused the live update"
        );
        assert!(
            wait_for(
                || stack.restart_count(component) > before,
                Duration::from_secs(30)
            ),
            "{component} was never replaced"
        );
        assert!(stack.wait_component_running(component, Duration::from_secs(30)));
        let stamp = stack
            .component_recovery(component)
            .expect("a live update must leave a recovery stamp");
        assert!(
            stamp.requested,
            "{component}: a live update is requested, not detected"
        );
        assert!(stamp.respawned_at >= stamp.detected_at);
    }
    std::thread::sleep(Duration::from_millis(300));

    // The same sockets, now served entirely by replacement incarnations.
    udp.send_to(b"post-roll", StackConfig::peer_addr(0), DNS_PORT)
        .expect("send after the roll");
    let (payload, _, _) = udp.recv_from().expect("answer after the roll");
    assert_eq!(payload, b"answer:post-roll");
    tcp.send_all(b"post-roll\n")
        .expect("send on the surviving connection");
    let mut reply = vec![0u8; 10];
    tcp.recv_exact(&mut reply)
        .expect("the established connection must survive the full roll");
    assert_eq!(reply, b"post-roll\n");

    assert!(
        stack.crash_log().is_empty(),
        "a live update must never reach the crash log"
    );
    stack.shutdown();
}

#[test]
fn live_update_is_not_recorded_as_a_crash() {
    let stack = NewtStack::start(test_config());
    let client = stack.client().with_timeout(Duration::from_secs(20));
    let socket = client.udp_socket().expect("socket");
    socket.bind(0).expect("bind");
    socket
        .send_to(b"pre", StackConfig::peer_addr(0), DNS_PORT)
        .expect("send");
    assert!(socket.recv_from().is_ok());

    assert!(stack.live_update(Component::Udp));
    assert!(stack.wait_component_running(Component::Udp, Duration::from_secs(30)));
    std::thread::sleep(Duration::from_millis(300));

    socket
        .send_to(b"post", StackConfig::peer_addr(0), DNS_PORT)
        .expect("send after update");
    assert!(socket.recv_from().is_ok());
    assert!(
        stack.crash_log().is_empty(),
        "a live update must not be treated as a crash"
    );
    assert_eq!(stack.restart_count(Component::Udp), 1);
    stack.shutdown();
}
