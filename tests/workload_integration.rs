//! End-to-end tests of the application workload layer: the HTTP server on
//! the poll-based socket API, the peer-side load generator, impaired
//! links, and the crash-during-transfer recovery story.

use std::time::Duration;

use newt_apps::httpd::{Httpd, HttpdConfig};
use newt_apps::loadgen::{run_http_load, LoadConfig};
use newtos::net::link::{LinkConfig, Netem};
use newtos::net::peer::IPERF_PORT;
use newtos::stack::sockbuf::SockError;
use newtos::{Component, FaultAction, NewtStack, StackConfig};
use newtos_suite::wait_for;

fn workload_config() -> StackConfig {
    StackConfig::newtos()
        .link(LinkConfig::unshaped())
        .clock_speedup(50.0)
}

#[test]
fn http_workload_runs_across_shards_over_a_clean_link() {
    let stack = NewtStack::start(workload_config().shards(2));
    let server =
        Httpd::spawn(stack.client(), stack.shards(), HttpdConfig::default()).expect("http server");

    let report = run_http_load(
        &stack,
        &LoadConfig {
            connections: 16,
            requests_per_connection: 3,
            ..LoadConfig::default()
        },
    );
    assert!(report.completed_all, "run hit the real-time deadline");
    assert_eq!(
        report.completed, 48,
        "every request must complete: {report:?}"
    );
    assert_eq!(report.verify_failures, 0, "bodies must verify: {report:?}");
    assert!(report.p99_us >= report.p50_us);

    // The SO_REUSEPORT group really spread the load: every shard
    // established inbound connections and moved segments.
    let telemetry = stack.telemetry();
    for shard in 0..stack.shards() {
        assert!(
            telemetry.tcp_shards[shard].connections_established > 0,
            "shard {shard} served no connections"
        );
    }
    // A second group on the occupied port fails with AddressInUse and
    // must not leak: the same client can immediately claim another port.
    let client = stack.client();
    assert!(matches!(
        client.listen_sharded(80, 4, stack.shards()),
        Err(SockError::AddressInUse)
    ));
    let group = client
        .listen_sharded(8081, 4, stack.shards())
        .expect("fresh port after a failed group");
    assert_eq!(group.len(), stack.shards());
    for listener in group {
        listener.close().expect("close");
    }

    let stats = server.stop();
    assert!(stats.requests >= 48);
    assert_eq!(stats.error_responses, 0);
    stack.shutdown();
}

#[test]
fn partial_sharded_listener_groups_are_rejected() {
    // On a 4-shard stack, a sharded group covering only 2 shards would
    // blackhole the flows hashing to the other two; the API fails loudly.
    let stack = NewtStack::start(workload_config().shards(4));
    let client = stack.client();
    assert!(matches!(
        client.listen_sharded(8080, 4, 2),
        Err(SockError::InvalidState)
    ));
    // Over-counting can never assemble either, and is reported as the
    // same configuration error instead of a fake server failure.
    assert!(matches!(
        client.listen_sharded(8080, 4, 8),
        Err(SockError::InvalidState)
    ));
    // An exclusive single listener is always fine, wherever it lands.
    let single = client.listen_sharded(8080, 4, 1).expect("single listener");
    assert_eq!(single.len(), 1);
    // And the full group works after the failed attempts (nothing leaked).
    let full = client
        .listen_sharded(9090, 4, stack.shards())
        .expect("full group");
    assert_eq!(full.len(), 4);
    stack.shutdown();
}

#[test]
fn http_workload_completes_over_an_impaired_link() {
    // Burst loss, jitter, reordering and duplication: every request still
    // completes with a verified body, carried by TCP retransmission on
    // the stack side and the peer client's RTO on the other.
    let config = workload_config()
        .shards(2)
        .link(LinkConfig::impaired().bandwidth_bps(f64::INFINITY));
    let stack = NewtStack::start(config);
    let _server =
        Httpd::spawn(stack.client(), stack.shards(), HttpdConfig::default()).expect("http server");

    let report = run_http_load(
        &stack,
        &LoadConfig {
            connections: 8,
            requests_per_connection: 2,
            path: "/bytes/8192".to_string(),
            response_timeout: Duration::from_secs(30),
            ..LoadConfig::default()
        },
    );
    assert!(
        report.completed_all,
        "impaired run hit the deadline: {report:?}"
    );
    assert_eq!(
        report.completed, 16,
        "every request must complete: {report:?}"
    );
    assert_eq!(report.verify_failures, 0, "bodies must verify: {report:?}");

    // The impairments actually bit: the stack retransmitted.
    let telemetry = stack.telemetry();
    let retransmissions: u64 = (0..stack.shards())
        .map(|s| telemetry.tcp_shards[s].retransmissions)
        .sum();
    assert!(
        retransmissions > 0,
        "an impaired link must force retransmissions"
    );
    stack.shutdown();
}

#[test]
fn fast_retransmit_still_fires_with_gro_and_delayed_acks() {
    // A heavily *reordering* (but lossless) link: the peer re-ACKs every
    // out-of-order arrival, and those duplicate ACKs must reach the
    // sharded stack's TCP senders intact — GRO must not collapse them and
    // delayed ACKs must not defer them — so fast retransmit (not the RTO)
    // repairs the stream.  Responses span many MTU frames (TSO-cut from
    // one 16 KiB segment), giving each reordered frame a trail of
    // duplicate ACKs.
    let mut link = LinkConfig::gigabit();
    link.netem = Netem {
        reorder_probability: 0.2,
        reorder_delay: Duration::from_millis(5),
        ..Netem::default()
    };
    let stack = NewtStack::start(workload_config().shards(2).link(link));
    let _server =
        Httpd::spawn(stack.client(), stack.shards(), HttpdConfig::default()).expect("http server");

    let report = run_http_load(
        &stack,
        &LoadConfig {
            connections: 8,
            requests_per_connection: 4,
            path: "/bytes/16384".to_string(),
            response_timeout: Duration::from_secs(30),
            ..LoadConfig::default()
        },
    );
    assert!(report.completed_all, "reordered run hit the deadline");
    assert_eq!(report.completed, 32, "every request must complete");
    assert_eq!(report.verify_failures, 0, "bodies must verify: {report:?}");

    let telemetry = stack.telemetry();
    let fast: u64 = (0..stack.shards())
        .map(|s| telemetry.tcp_shards[s].fast_retransmits)
        .sum();
    assert!(
        fast > 0,
        "reordering must trigger fast retransmit, not just the RTO: {telemetry:?}"
    );
    // The receive fast path was actually on while it happened.
    let coalesced = telemetry.drivers[0].rx_coalesced;
    let piggybacked: u64 = (0..stack.shards())
        .map(|s| telemetry.tcp_shards[s].acks_piggybacked)
        .sum();
    assert!(
        coalesced > 0 || piggybacked > 0,
        "GRO/delayed ACKs should have engaged: {telemetry:?}"
    );
    stack.shutdown();
}

#[test]
fn http_transfer_survives_a_tcp_crash_and_reincarnation() {
    // A 1 MiB transfer over a paced link, with the TCP server crashed
    // mid-flight.  The connection dies (§V-D: established connections are
    // reset), the listener is recovered by the reincarnation, the load
    // generator reconnects and retries, and the transfer completes with a
    // byte-exact body.
    let config = workload_config()
        .clock_speedup(5.0)
        .link(LinkConfig::unshaped().bandwidth_bps(50e6));
    let stack = NewtStack::start(config);
    let server =
        Httpd::spawn(stack.client(), stack.shards(), HttpdConfig::default()).expect("http server");

    let loadgen = {
        let stack = &stack;
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || {
                run_http_load(
                    stack,
                    &LoadConfig {
                        connections: 1,
                        requests_per_connection: 1,
                        path: "/bytes/1048576".to_string(),
                        response_timeout: Duration::from_secs(2),
                        ..LoadConfig::default()
                    },
                )
            });

            // Wait until the response is mid-flight, then kill TCP.
            assert!(
                wait_for(
                    || stack.peer(0).stats().tcp_bytes_received > 64 * 1024,
                    Duration::from_secs(60),
                ),
                "transfer never got going"
            );
            assert!(stack.inject_fault(Component::Tcp, FaultAction::Crash));
            assert!(stack.wait_component_running(Component::Tcp, Duration::from_secs(30)));

            handle.join().expect("load generator thread")
        })
    };

    assert!(loadgen.completed_all, "crashed transfer never completed");
    assert_eq!(loadgen.completed, 1, "the retried transfer must complete");
    assert_eq!(loadgen.verify_failures, 0, "retried body must verify");
    assert!(
        loadgen.retries >= 1,
        "the crash must have forced a reconnect: {loadgen:?}"
    );
    assert!(stack.restart_count(Component::Tcp) >= 1);
    let stats = server.stop();
    assert!(
        stats.requests >= 2,
        "the object must have been served at least twice (original + retry)"
    );
    stack.shutdown();
}

#[test]
fn ring_completions_survive_a_syscall_crash_under_load() {
    // The HTTP server runs entirely on the syscall-ring API: accepts
    // arrive as multishot completions through the SYSCALL ring pump,
    // data moves inline through shared socket buffers.  Crashing the
    // SYSCALL server mid-run must not lose a request: established
    // connections never depended on it, the rings live in the registry
    // and survive the reincarnation, and the reincarnated pump re-arms
    // the in-flight accept subscriptions.
    let stack = NewtStack::start(workload_config().shards(2));
    let server =
        Httpd::spawn(stack.client(), stack.shards(), HttpdConfig::default()).expect("http server");

    let loadgen = {
        let stack = &stack;
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || {
                run_http_load(
                    stack,
                    &LoadConfig {
                        connections: 12,
                        requests_per_connection: 24,
                        response_timeout: Duration::from_secs(10),
                        ..LoadConfig::default()
                    },
                )
            });

            // Let the run get going, then kill the SYSCALL server.
            assert!(
                wait_for(
                    || stack.peer(0).stats().tcp_bytes_received > 4 * 1024,
                    Duration::from_secs(60),
                ),
                "load never got going"
            );
            assert!(stack.inject_fault(Component::Syscall, FaultAction::Crash));
            assert!(stack.wait_component_running(Component::Syscall, Duration::from_secs(30)));

            handle.join().expect("load generator thread")
        })
    };

    assert!(loadgen.completed_all, "run hit the deadline: {loadgen:?}");
    assert_eq!(
        loadgen.completed,
        12 * 24,
        "every request must complete across the syscall crash: {loadgen:?}"
    );
    assert_eq!(
        loadgen.verify_failures, 0,
        "bodies must verify: {loadgen:?}"
    );
    assert!(stack.restart_count(Component::Syscall) >= 1);

    // The ring still works end to end: fresh connections accept fine.
    let after = run_http_load(
        &stack,
        &LoadConfig {
            connections: 4,
            requests_per_connection: 2,
            src_port_base: 31_000,
            ..LoadConfig::default()
        },
    );
    assert_eq!(
        after.completed, 8,
        "post-crash accepts must work: {after:?}"
    );
    let stats = server.stop();
    assert_eq!(stats.error_responses, 0);
    stack.shutdown();
}

#[test]
fn ring_completions_survive_a_syscall_live_update() {
    // Same contract, politely: a live update of the SYSCALL server under
    // keep-alive ring-driven load is invisible — no lost request, no
    // forced reconnect, and the restart is stamped as requested.
    let stack = NewtStack::start(workload_config().shards(2));
    let server =
        Httpd::spawn(stack.client(), stack.shards(), HttpdConfig::default()).expect("http server");

    let loadgen = {
        let stack = &stack;
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || {
                run_http_load(
                    stack,
                    &LoadConfig {
                        connections: 12,
                        requests_per_connection: 24,
                        response_timeout: Duration::from_secs(10),
                        ..LoadConfig::default()
                    },
                )
            });

            assert!(
                wait_for(
                    || stack.peer(0).stats().tcp_bytes_received > 4 * 1024,
                    Duration::from_secs(60),
                ),
                "load never got going"
            );
            assert!(stack.live_update(Component::Syscall));
            assert!(stack.wait_component_running(Component::Syscall, Duration::from_secs(30)));

            handle.join().expect("load generator thread")
        })
    };

    assert!(loadgen.completed_all, "run hit the deadline: {loadgen:?}");
    assert_eq!(
        loadgen.completed,
        12 * 24,
        "every request must complete across the live update: {loadgen:?}"
    );
    assert_eq!(
        loadgen.verify_failures, 0,
        "bodies must verify: {loadgen:?}"
    );
    assert_eq!(
        loadgen.retries, 0,
        "a live update must not force a reconnect: {loadgen:?}"
    );
    let stamp = stack
        .component_recovery(Component::Syscall)
        .expect("live update leaves a recovery stamp");
    assert!(stamp.requested, "the restart must be stamped requested");
    let stats = server.stop();
    assert_eq!(stats.error_responses, 0, "no malformed responses");
    assert!(
        stats.ring_ops > 0,
        "the server must have run on the ring API"
    );
    stack.shutdown();
}

#[test]
fn nonblocking_timeout_semantics_are_explicit() {
    let stack = NewtStack::start(workload_config());

    // Zero timeout = non-blocking: WouldBlock, immediately.
    let nb = stack.client().nonblocking();
    assert!(nb.is_nonblocking());
    let socket = nb.tcp_socket().expect("control calls still work");
    socket
        .connect(StackConfig::peer_addr(0), IPERF_PORT)
        .expect("connect");
    let mut buf = [0u8; 16];
    let started = std::time::Instant::now();
    assert_eq!(socket.recv(&mut buf), Err(SockError::WouldBlock));
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "non-blocking recv must not wait"
    );
    // accept() on a non-blocking client degrades to accept_nb.
    let listener = nb.tcp_socket().expect("listener");
    listener.bind(8080).expect("bind");
    listener.listen(4).expect("listen");
    assert!(matches!(listener.accept(), Err(SockError::WouldBlock)));
    assert!(listener.accept_nb().expect("accept_nb").is_none());
    assert!(!listener.accept_ready().expect("poll syscall"));

    // A non-zero timeout is a real-time bound ending in TimedOut.
    let bounded = stack.client().with_timeout(Duration::from_millis(50));
    let socket = bounded.tcp_socket().expect("socket");
    socket
        .connect(StackConfig::peer_addr(0), IPERF_PORT)
        .expect("connect");
    let started = std::time::Instant::now();
    assert_eq!(socket.recv(&mut buf), Err(SockError::TimedOut));
    let waited = started.elapsed();
    assert!(
        waited >= Duration::from_millis(40) && waited < Duration::from_secs(5),
        "recv should wait out its bound, waited {waited:?}"
    );
    stack.shutdown();
}
