//! End-to-end tests of the application workload layer: the HTTP server on
//! the poll-based socket API, the peer-side load generator, impaired
//! links, and the crash-during-transfer recovery story.

use std::time::Duration;

use newt_apps::httpd::{Httpd, HttpdConfig};
use newt_apps::loadgen::{run_http_load, LoadConfig};
use newtos::net::link::{LinkConfig, Netem};
use newtos::net::peer::IPERF_PORT;
use newtos::stack::sockbuf::SockError;
use newtos::{Component, FaultAction, NewtStack, StackConfig};
use newtos_suite::wait_for;

fn workload_config() -> StackConfig {
    StackConfig::newtos()
        .link(LinkConfig::unshaped())
        .clock_speedup(50.0)
}

#[test]
fn http_workload_runs_across_shards_over_a_clean_link() {
    let stack = NewtStack::start(workload_config().shards(2));
    let server =
        Httpd::spawn(stack.client(), stack.shards(), HttpdConfig::default()).expect("http server");

    let report = run_http_load(
        &stack,
        &LoadConfig {
            connections: 16,
            requests_per_connection: 3,
            ..LoadConfig::default()
        },
    );
    assert!(report.completed_all, "run hit the real-time deadline");
    assert_eq!(
        report.completed, 48,
        "every request must complete: {report:?}"
    );
    assert_eq!(report.verify_failures, 0, "bodies must verify: {report:?}");
    assert!(report.p99_us >= report.p50_us);

    // The SO_REUSEPORT group really spread the load: every shard
    // established inbound connections and moved segments.
    let telemetry = stack.telemetry();
    for shard in 0..stack.shards() {
        assert!(
            telemetry.tcp_shards[shard].connections_established > 0,
            "shard {shard} served no connections"
        );
    }
    // A second group on the occupied port fails with AddressInUse and
    // must not leak: the same client can immediately claim another port.
    let client = stack.client();
    assert!(matches!(
        client.listen_sharded(80, 4, stack.shards()),
        Err(SockError::AddressInUse)
    ));
    let group = client
        .listen_sharded(8081, 4, stack.shards())
        .expect("fresh port after a failed group");
    assert_eq!(group.len(), stack.shards());
    for listener in group {
        listener.close().expect("close");
    }

    let stats = server.stop();
    assert!(stats.requests >= 48);
    assert_eq!(stats.error_responses, 0);
    stack.shutdown();
}

#[test]
fn partial_sharded_listener_groups_are_rejected() {
    // On a 4-shard stack, a sharded group covering only 2 shards would
    // blackhole the flows hashing to the other two; the API fails loudly.
    let stack = NewtStack::start(workload_config().shards(4));
    let client = stack.client();
    assert!(matches!(
        client.listen_sharded(8080, 4, 2),
        Err(SockError::InvalidState)
    ));
    // Over-counting can never assemble either, and is reported as the
    // same configuration error instead of a fake server failure.
    assert!(matches!(
        client.listen_sharded(8080, 4, 8),
        Err(SockError::InvalidState)
    ));
    // An exclusive single listener is always fine, wherever it lands.
    let single = client.listen_sharded(8080, 4, 1).expect("single listener");
    assert_eq!(single.len(), 1);
    // And the full group works after the failed attempts (nothing leaked).
    let full = client
        .listen_sharded(9090, 4, stack.shards())
        .expect("full group");
    assert_eq!(full.len(), 4);
    stack.shutdown();
}

#[test]
fn http_workload_completes_over_an_impaired_link() {
    // Burst loss, jitter, reordering and duplication: every request still
    // completes with a verified body, carried by TCP retransmission on
    // the stack side and the peer client's RTO on the other.
    let config = workload_config()
        .shards(2)
        .link(LinkConfig::impaired().bandwidth_bps(f64::INFINITY));
    let stack = NewtStack::start(config);
    let _server =
        Httpd::spawn(stack.client(), stack.shards(), HttpdConfig::default()).expect("http server");

    let report = run_http_load(
        &stack,
        &LoadConfig {
            connections: 8,
            requests_per_connection: 2,
            path: "/bytes/8192".to_string(),
            response_timeout: Duration::from_secs(30),
            ..LoadConfig::default()
        },
    );
    assert!(
        report.completed_all,
        "impaired run hit the deadline: {report:?}"
    );
    assert_eq!(
        report.completed, 16,
        "every request must complete: {report:?}"
    );
    assert_eq!(report.verify_failures, 0, "bodies must verify: {report:?}");

    // The impairments actually bit: the stack retransmitted.
    let telemetry = stack.telemetry();
    let retransmissions: u64 = (0..stack.shards())
        .map(|s| telemetry.tcp_shards[s].retransmissions)
        .sum();
    assert!(
        retransmissions > 0,
        "an impaired link must force retransmissions"
    );
    stack.shutdown();
}

#[test]
fn fast_retransmit_still_fires_with_gro_and_delayed_acks() {
    // A heavily *reordering* (but lossless) link: the peer re-ACKs every
    // out-of-order arrival, and those duplicate ACKs must reach the
    // sharded stack's TCP senders intact — GRO must not collapse them and
    // delayed ACKs must not defer them — so fast retransmit (not the RTO)
    // repairs the stream.  Responses span many MTU frames (TSO-cut from
    // one 16 KiB segment), giving each reordered frame a trail of
    // duplicate ACKs.
    let mut link = LinkConfig::gigabit();
    link.netem = Netem {
        reorder_probability: 0.2,
        reorder_delay: Duration::from_millis(5),
        ..Netem::default()
    };
    let stack = NewtStack::start(workload_config().shards(2).link(link));
    let _server =
        Httpd::spawn(stack.client(), stack.shards(), HttpdConfig::default()).expect("http server");

    let report = run_http_load(
        &stack,
        &LoadConfig {
            connections: 8,
            requests_per_connection: 4,
            path: "/bytes/16384".to_string(),
            response_timeout: Duration::from_secs(30),
            ..LoadConfig::default()
        },
    );
    assert!(report.completed_all, "reordered run hit the deadline");
    assert_eq!(report.completed, 32, "every request must complete");
    assert_eq!(report.verify_failures, 0, "bodies must verify: {report:?}");

    let telemetry = stack.telemetry();
    let fast: u64 = (0..stack.shards())
        .map(|s| telemetry.tcp_shards[s].fast_retransmits)
        .sum();
    assert!(
        fast > 0,
        "reordering must trigger fast retransmit, not just the RTO: {telemetry:?}"
    );
    // The receive fast path was actually on while it happened.
    let coalesced = telemetry.drivers[0].rx_coalesced;
    let piggybacked: u64 = (0..stack.shards())
        .map(|s| telemetry.tcp_shards[s].acks_piggybacked)
        .sum();
    assert!(
        coalesced > 0 || piggybacked > 0,
        "GRO/delayed ACKs should have engaged: {telemetry:?}"
    );
    stack.shutdown();
}

#[test]
fn http_transfer_survives_a_tcp_crash_and_reincarnation() {
    // A 1 MiB transfer over a paced link, with the TCP server crashed
    // mid-flight.  The connection dies (§V-D: established connections are
    // reset), the listener is recovered by the reincarnation, the load
    // generator reconnects and retries, and the transfer completes with a
    // byte-exact body.
    let config = workload_config()
        .clock_speedup(5.0)
        .link(LinkConfig::unshaped().bandwidth_bps(50e6));
    let stack = NewtStack::start(config);
    let server =
        Httpd::spawn(stack.client(), stack.shards(), HttpdConfig::default()).expect("http server");

    let loadgen = {
        let stack = &stack;
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || {
                run_http_load(
                    stack,
                    &LoadConfig {
                        connections: 1,
                        requests_per_connection: 1,
                        path: "/bytes/1048576".to_string(),
                        response_timeout: Duration::from_secs(2),
                        ..LoadConfig::default()
                    },
                )
            });

            // Wait until the response is mid-flight, then kill TCP.
            assert!(
                wait_for(
                    || stack.peer(0).stats().tcp_bytes_received > 64 * 1024,
                    Duration::from_secs(60),
                ),
                "transfer never got going"
            );
            assert!(stack.inject_fault(Component::Tcp, FaultAction::Crash));
            assert!(stack.wait_component_running(Component::Tcp, Duration::from_secs(30)));

            handle.join().expect("load generator thread")
        })
    };

    assert!(loadgen.completed_all, "crashed transfer never completed");
    assert_eq!(loadgen.completed, 1, "the retried transfer must complete");
    assert_eq!(loadgen.verify_failures, 0, "retried body must verify");
    assert!(
        loadgen.retries >= 1,
        "the crash must have forced a reconnect: {loadgen:?}"
    );
    assert!(stack.restart_count(Component::Tcp) >= 1);
    let stats = server.stop();
    assert!(
        stats.requests >= 2,
        "the object must have been served at least twice (original + retry)"
    );
    stack.shutdown();
}

#[test]
fn ring_completions_survive_a_syscall_crash_under_load() {
    // The HTTP server runs entirely on the syscall-ring API: accepts
    // arrive as multishot completions through the SYSCALL ring pump,
    // data moves inline through shared socket buffers.  Crashing the
    // SYSCALL server mid-run must not lose a request: established
    // connections never depended on it, the rings live in the registry
    // and survive the reincarnation, and the reincarnated pump re-arms
    // the in-flight accept subscriptions.
    let stack = NewtStack::start(workload_config().shards(2));
    let server =
        Httpd::spawn(stack.client(), stack.shards(), HttpdConfig::default()).expect("http server");

    let loadgen = {
        let stack = &stack;
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || {
                run_http_load(
                    stack,
                    &LoadConfig {
                        connections: 12,
                        requests_per_connection: 24,
                        response_timeout: Duration::from_secs(10),
                        ..LoadConfig::default()
                    },
                )
            });

            // Let the run get going, then kill the SYSCALL server.
            assert!(
                wait_for(
                    || stack.peer(0).stats().tcp_bytes_received > 4 * 1024,
                    Duration::from_secs(60),
                ),
                "load never got going"
            );
            assert!(stack.inject_fault(Component::Syscall, FaultAction::Crash));
            assert!(stack.wait_component_running(Component::Syscall, Duration::from_secs(30)));

            handle.join().expect("load generator thread")
        })
    };

    assert!(loadgen.completed_all, "run hit the deadline: {loadgen:?}");
    assert_eq!(
        loadgen.completed,
        12 * 24,
        "every request must complete across the syscall crash: {loadgen:?}"
    );
    assert_eq!(
        loadgen.verify_failures, 0,
        "bodies must verify: {loadgen:?}"
    );
    assert!(stack.restart_count(Component::Syscall) >= 1);

    // The ring still works end to end: fresh connections accept fine.
    let after = run_http_load(
        &stack,
        &LoadConfig {
            connections: 4,
            requests_per_connection: 2,
            src_port_base: 31_000,
            ..LoadConfig::default()
        },
    );
    assert_eq!(
        after.completed, 8,
        "post-crash accepts must work: {after:?}"
    );
    let stats = server.stop();
    assert_eq!(stats.error_responses, 0);
    stack.shutdown();
}

#[test]
fn ring_completions_survive_a_syscall_live_update() {
    // Same contract, politely: a live update of the SYSCALL server under
    // keep-alive ring-driven load is invisible — no lost request, no
    // forced reconnect, and the restart is stamped as requested.
    let stack = NewtStack::start(workload_config().shards(2));
    let server =
        Httpd::spawn(stack.client(), stack.shards(), HttpdConfig::default()).expect("http server");

    let loadgen = {
        let stack = &stack;
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || {
                run_http_load(
                    stack,
                    &LoadConfig {
                        connections: 12,
                        requests_per_connection: 24,
                        response_timeout: Duration::from_secs(10),
                        ..LoadConfig::default()
                    },
                )
            });

            assert!(
                wait_for(
                    || stack.peer(0).stats().tcp_bytes_received > 4 * 1024,
                    Duration::from_secs(60),
                ),
                "load never got going"
            );
            assert!(stack.live_update(Component::Syscall));
            assert!(stack.wait_component_running(Component::Syscall, Duration::from_secs(30)));

            handle.join().expect("load generator thread")
        })
    };

    assert!(loadgen.completed_all, "run hit the deadline: {loadgen:?}");
    assert_eq!(
        loadgen.completed,
        12 * 24,
        "every request must complete across the live update: {loadgen:?}"
    );
    assert_eq!(
        loadgen.verify_failures, 0,
        "bodies must verify: {loadgen:?}"
    );
    assert_eq!(
        loadgen.retries, 0,
        "a live update must not force a reconnect: {loadgen:?}"
    );
    let stamp = stack
        .component_recovery(Component::Syscall)
        .expect("live update leaves a recovery stamp");
    assert!(stamp.requested, "the restart must be stamped requested");
    let stats = server.stop();
    assert_eq!(stats.error_responses, 0, "no malformed responses");
    assert!(
        stats.ring_ops > 0,
        "the server must have run on the ring API"
    );
    stack.shutdown();
}

/// Transmit fast-path counters scraped from one workload run.
struct TxCounters {
    tx_segments: u64,
    tso_frames: u64,
    tx_copies: u64,
    fast_retransmits: u64,
}

/// Runs one HTTP workload and returns the load report plus the transmit
/// fast-path counters.
fn run_tx_workload(
    config: StackConfig,
    connections: usize,
    requests: usize,
    path: &str,
) -> (newt_apps::loadgen::LoadReport, TxCounters) {
    let stack = NewtStack::start(config);
    let server =
        Httpd::spawn(stack.client(), stack.shards(), HttpdConfig::default()).expect("http server");
    let report = run_http_load(
        &stack,
        &LoadConfig {
            connections,
            requests_per_connection: requests,
            path: path.to_string(),
            response_timeout: Duration::from_secs(30),
            ..LoadConfig::default()
        },
    );
    let telemetry = stack.telemetry();
    let counters = TxCounters {
        tx_segments: telemetry.tx_segments_total(),
        tso_frames: (0..stack.config().nics)
            .map(|i| stack.nic_stats(i).tso_frames)
            .sum(),
        tx_copies: telemetry.tx_copies_total(),
        fast_retransmits: (0..stack.shards())
            .map(|s| telemetry.tcp_shards[s].fast_retransmits)
            .sum(),
    };
    server.stop();
    stack.shutdown();
    (report, counters)
}

#[test]
fn tso_send_path_is_differentially_equivalent_to_per_mtu_sends() {
    // The transmit fast path (TCP super-segments cut by NIC TSO) must be
    // an *optimization*, not a behaviour change: the same workload run
    // with TSO disabled — TCP emitting one MTU-sized segment at a time —
    // produces byte-identical bodies and the same request count, on a
    // clean link and on an impaired one.
    for (link, conns, reqs, path) in [
        (LinkConfig::unshaped(), 16, 3, "/bytes/16384"),
        (
            LinkConfig::impaired().bandwidth_bps(f64::INFINITY),
            8,
            2,
            "/bytes/8192",
        ),
    ] {
        let base = workload_config().shards(2).link(link);
        let (with_tso, on) = run_tx_workload(base.clone().tso(true), conns, reqs, path);
        let (without, off) = run_tx_workload(base.tso(false), conns, reqs, path);

        let expected = (conns * reqs) as u64;
        assert_eq!(with_tso.completed, expected, "TSO run lost requests");
        assert_eq!(without.completed, expected, "non-TSO run lost requests");
        assert!(with_tso.completed_all && without.completed_all);
        assert_eq!(with_tso.verify_failures, 0, "TSO bodies must verify");
        assert_eq!(without.verify_failures, 0, "non-TSO bodies must verify");
        // Every body is verified against the same deterministic pattern and
        // both runs moved the same number of bytes: the wire contents are
        // byte-identical, only the segmentation differs.
        assert_eq!(
            with_tso.bytes_received, without.bytes_received,
            "TSO must not change the bytes the client sees"
        );

        // The differential is real: the TSO run sent oversized segments
        // that the NIC cut into multiple wire frames; the non-TSO run
        // never handed the NIC anything oversized.
        assert!(
            on.tso_frames > on.tx_segments,
            "TSO run must split super-segments ({} frames from {} segments)",
            on.tso_frames,
            on.tx_segments
        );
        assert_eq!(
            off.tso_frames, 0,
            "a NIC without TSO must cut nothing ({} segments)",
            off.tx_segments
        );
        // Zero-copy held on both sides: no fallback copy-publishes.
        assert_eq!(on.tx_copies, 0, "TSO run fell back to a copy");
        assert_eq!(off.tx_copies, 0, "non-TSO run fell back to a copy");
    }
}

#[test]
fn lost_super_segment_recovers_via_fast_retransmit_without_copies() {
    // Conformance for the transmit fast path under Gilbert–Elliott burst
    // loss: when wire frames cut from one TSO super-segment are dropped,
    // the ACK trail from the surviving frames must trigger *fast*
    // retransmit (dup-ACK driven, not RTO), the retransmission is emitted
    // as a refcounted view of the original send-queue bytes, and every
    // body still verifies.
    let mut link = LinkConfig::gigabit();
    link.netem = Netem {
        burst_loss: Some(newtos::net::link::GilbertElliott::bursty()),
        ..Netem::default()
    };
    let config = workload_config().shards(2).link(link);
    let (report, counters) = run_tx_workload(config, 8, 4, "/bytes/16384");

    assert!(
        report.completed_all,
        "lossy run hit the deadline: {report:?}"
    );
    assert_eq!(report.completed, 32, "every request must complete");
    assert_eq!(report.verify_failures, 0, "bodies must verify: {report:?}");
    assert!(
        counters.tso_frames > counters.tx_segments,
        "responses must have been TSO-cut ({} frames from {} segments)",
        counters.tso_frames,
        counters.tx_segments
    );
    assert!(
        counters.fast_retransmits > 0,
        "burst loss inside a TSO burst must trip fast retransmit, not just the RTO"
    );
    // Retransmissions (including the recovery of lost super-segment
    // frames) ride the same zero-copy path as first transmissions: the
    // unacked queue holds refcounted views, so no copy-publish happens
    // even while recovering.
    assert_eq!(counters.tx_copies, 0, "retransmit path must stay zero-copy");
}

#[test]
fn nonblocking_timeout_semantics_are_explicit() {
    let stack = NewtStack::start(workload_config());

    // Zero timeout = non-blocking: WouldBlock, immediately.
    let nb = stack.client().nonblocking();
    assert!(nb.is_nonblocking());
    let socket = nb.tcp_socket().expect("control calls still work");
    socket
        .connect(StackConfig::peer_addr(0), IPERF_PORT)
        .expect("connect");
    let mut buf = [0u8; 16];
    let started = std::time::Instant::now();
    assert_eq!(socket.recv(&mut buf), Err(SockError::WouldBlock));
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "non-blocking recv must not wait"
    );
    // accept() on a non-blocking client degrades to accept_nb.
    let listener = nb.tcp_socket().expect("listener");
    listener.bind(8080).expect("bind");
    listener.listen(4).expect("listen");
    assert!(matches!(listener.accept(), Err(SockError::WouldBlock)));
    assert!(listener.accept_nb().expect("accept_nb").is_none());
    assert!(!listener.accept_ready().expect("poll syscall"));

    // A non-zero timeout is a real-time bound ending in TimedOut.
    let bounded = stack.client().with_timeout(Duration::from_millis(50));
    let socket = bounded.tcp_socket().expect("socket");
    socket
        .connect(StackConfig::peer_addr(0), IPERF_PORT)
        .expect("connect");
    let started = std::time::Instant::now();
    assert_eq!(socket.recv(&mut buf), Err(SockError::TimedOut));
    let waited = started.elapsed();
    assert!(
        waited >= Duration::from_millis(40) && waited < Duration::from_secs(5),
        "recv should wait out its bound, waited {waited:?}"
    );
    stack.shutdown();
}
