//! Integration tests for receive-side scaling: steering determinism,
//! flow-to-shard affinity end to end, and per-shard reincarnation.

use std::net::Ipv4Addr;
use std::time::Duration;

use newtos::net::link::LinkConfig;
use newtos::net::rss::{FlowKey, RssKey, RssSteering, MAX_QUEUES};
use newtos::{Component, FaultAction, NewtStack, StackConfig};

fn quick_config(shards: usize) -> StackConfig {
    StackConfig::newtos()
        .shards(shards)
        .link(LinkConfig::unshaped())
        .clock_speedup(50.0)
        .packet_filter(false)
}

/// The determinism contract: for every shard count 1..=8 a 4-tuple maps to
/// one shard, and recomputing the mapping from scratch — which is exactly
/// what a reincarnated driver or stack replica does — never moves a flow.
#[test]
fn same_tuple_same_shard_across_counts_one_through_eight() {
    for shards in 1..=MAX_QUEUES {
        let first_incarnation = RssSteering::new(RssKey::default(), shards);
        let reincarnation = RssSteering::new(RssKey::default(), shards);
        for port in 0..512u16 {
            let tuple = FlowKey {
                src: Ipv4Addr::new(10, 0, 0, 2),
                dst: Ipv4Addr::new(10, 0, 0, 1),
                src_port: 1024 + port,
                dst_port: 5001,
            };
            let queue = first_incarnation.queue_for_flow(&tuple);
            assert!(queue < shards);
            assert_eq!(
                queue,
                reincarnation.queue_for_flow(&tuple),
                "tuple moved shards after reincarnation at {shards} shards"
            );
        }
    }
}

/// Every shard of a 4-way stack serves its own flows end to end: four
/// sockets land on four different shards (round-robin placement) and each
/// completes a DNS round trip whose reply is steered back to it.
#[test]
fn each_shard_serves_its_own_flows() {
    let stack = NewtStack::start(quick_config(4));
    assert_eq!(stack.shards(), 4);
    let client = stack.client();
    let sockets: Vec<_> = (0..4)
        .map(|_| client.udp_socket().expect("udp socket"))
        .collect();
    let mut seen_shards: Vec<usize> = sockets
        .iter()
        .map(|s| NewtStack::shard_of_socket(s.id()))
        .collect();
    seen_shards.sort_unstable();
    assert_eq!(seen_shards, vec![0, 1, 2, 3], "round-robin placement");
    for socket in &sockets {
        socket.bind(0).expect("bind");
        socket
            .send_to(
                b"flow-affinity",
                StackConfig::peer_addr(0),
                newtos::net::peer::DNS_PORT,
            )
            .expect("send");
        let (payload, _, _) = socket.recv_from().expect("reply reached the owner shard");
        assert_eq!(payload, b"answer:flow-affinity");
    }
    // The flow director pinned each reply to the shard that sent the query.
    let steered = stack.telemetry().rx_steered_per_shard();
    for shard in 0..4 {
        assert!(
            steered[shard] > 0,
            "shard {shard} never received a frame: {steered:?}"
        );
    }
    stack.shutdown();
}

/// Reincarnating one shard's IP server must not move flows, reset the
/// device or disturb sibling shards: only the shard's own queue pair is
/// cleared, and the same 4-tuple keeps reaching the same (restarted)
/// replica afterwards.
#[test]
fn flow_keeps_its_shard_across_ip_shard_reincarnation() {
    let stack = NewtStack::start(quick_config(2));
    let client = stack.client();
    let sock0 = client.udp_socket().expect("socket on shard 0");
    let sock1 = client.udp_socket().expect("socket on shard 1");
    assert_eq!(NewtStack::shard_of_socket(sock1.id()), 1);
    for socket in [&sock0, &sock1] {
        socket.bind(0).expect("bind");
        socket
            .send_to(
                b"before",
                StackConfig::peer_addr(0),
                newtos::net::peer::DNS_PORT,
            )
            .expect("send before");
        let _ = socket.recv_from().expect("answer before the crash");
    }
    let steered_before = stack.nic_stats(0).rx_steered;
    assert!(steered_before[1] > 0, "shard 1 flow was not steered");

    // Crash shard 1's IP server; the driver resets only queue pair 1.
    assert!(stack.inject_fault(Component::IpShard(1), FaultAction::Crash));
    assert!(stack.wait_component_running(Component::IpShard(1), Duration::from_secs(10)));
    std::thread::sleep(Duration::from_millis(100));

    let nic = stack.nic_stats(0);
    assert_eq!(nic.resets, 0, "a shard crash must not reset the device");
    assert!(nic.queue_resets >= 1, "the shard's queue pair is cleared");

    // The same socket — same 4-tuple — keeps working on the same shard.
    sock1
        .send_to(
            b"after",
            StackConfig::peer_addr(0),
            newtos::net::peer::DNS_PORT,
        )
        .expect("send after crash");
    let (payload, _, _) = sock1.recv_from().expect("answer after the crash");
    assert_eq!(payload, b"answer:after");
    let steered_after = stack.nic_stats(0).rx_steered;
    assert!(
        steered_after[1] > steered_before[1],
        "the reincarnated shard must keep receiving its flow: {steered_before:?} -> {steered_after:?}"
    );
    // The sibling shard was never disturbed.
    sock0
        .send_to(
            b"sibling",
            StackConfig::peer_addr(0),
            newtos::net::peer::DNS_PORT,
        )
        .expect("sibling send");
    let (payload, _, _) = sock0.recv_from().expect("sibling answer");
    assert_eq!(payload, b"answer:sibling");
    assert!(stack.restart_count(Component::IpShard(1)) >= 1);
    stack.shutdown();
}

/// A TCP shard crash resets only the connections that hash to it; a bulk
/// transfer owned by the sibling shard runs to completion.
#[test]
fn tcp_shard_crash_only_stalls_its_own_flows() {
    let stack = NewtStack::start(quick_config(2).nics(2));
    let client = stack.client();
    let survivor = client.tcp_socket().expect("survivor socket");
    let victim = client.tcp_socket().expect("victim socket");
    let victim_shard = NewtStack::shard_of_socket(victim.id());
    assert_ne!(NewtStack::shard_of_socket(survivor.id()), victim_shard);
    survivor
        .connect(StackConfig::peer_addr(0), newtos::net::peer::IPERF_PORT)
        .expect("survivor connect");
    victim
        .connect(StackConfig::peer_addr(1), newtos::net::peer::IPERF_PORT)
        .expect("victim connect");

    let data = vec![0x42u8; 96 * 1024];
    let survivor_thread = {
        let data = data.clone();
        std::thread::spawn(move || survivor.send_all(&data).is_ok())
    };
    // The victim pushes a transfer far too large to finish before the
    // crash lands mid-air.
    let victim_thread = std::thread::spawn(move || victim.send_all(&vec![7u8; 8 << 20]).is_ok());
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while stack
        .peer(1)
        .bytes_received_on(newtos::net::peer::IPERF_PORT)
        < 32 * 1024
    {
        assert!(
            std::time::Instant::now() < deadline,
            "victim flow never started"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(stack.inject_fault(Component::TcpShard(victim_shard), FaultAction::Crash));

    // The survivor's transfer completes in full.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while stack
        .peer(0)
        .bytes_received_on(newtos::net::peer::IPERF_PORT)
        < data.len() as u64
    {
        assert!(
            std::time::Instant::now() < deadline,
            "survivor stalled after sibling-shard crash"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(survivor_thread.join().expect("survivor thread"));
    // The victim's connection was reset (TCP recovery drops established
    // connections) — its send must NOT have completed successfully.
    assert!(
        !victim_thread.join().expect("victim thread"),
        "victim flow should observe the reset"
    );
    assert!(
        stack.wait_component_running(Component::TcpShard(victim_shard), Duration::from_secs(10))
    );
    stack.shutdown();
}
