//! End-to-end tests of the dependability-under-load campaign: correlated
//! faults against the sharded, GRO-enabled stack while it serves HTTP,
//! campaign determinism, and per-replica injectability.

use std::time::Duration;

use newt_faults::dependability::{self, DependabilityConfig, FaultMode};
use newt_faults::{CampaignConfig, FaultKind, Outcome};
use newtos::{Component, NewtStack, StackConfig};

/// The headline scenario: a 4-shard stack keeps serving byte-exact HTTP
/// bodies across a correlated same-shard TCP+IP double crash.  The victim
/// shard's connections may break and reconnect (that is the §V-D
/// contract), but not one request may be lost or corrupted.
#[test]
fn four_shard_transfer_survives_same_shard_double_fault() {
    let config = DependabilityConfig::quick(4, 1);
    let record = dependability::run_one(&config, &FaultMode::SameShardDouble(1));
    assert_eq!(
        record.completed, record.expected_requests,
        "every request must complete across the double fault: {record:?}"
    );
    assert_eq!(
        record.verify_failures, 0,
        "response bodies must stay byte-exact across the double fault: {record:?}"
    );
    assert_ne!(
        record.outcome,
        Outcome::Reboot,
        "a same-shard double fault must never require a reboot: {record:?}"
    );
    assert!(
        record.recovered_automatically || record.manually_fixed,
        "both victims must have been restarted: {record:?}"
    );
    assert!(
        record.recovery_ms > 0.0,
        "recovery stamps must be recorded: {record:?}"
    );
}

/// Same seed ⇒ same injection sequence, for both campaigns, at every
/// shard count — the property that makes a campaign run reproducible on
/// any host.
#[test]
fn campaign_schedules_are_deterministic_across_shard_counts() {
    for shards in [1usize, 2, 4] {
        let legacy = CampaignConfig {
            shards,
            runs: 25,
            ..CampaignConfig::default()
        };
        assert_eq!(
            legacy.schedule(),
            legacy.schedule(),
            "legacy campaign schedule must be a pure function of the seed at {shards} shards"
        );

        let modern = DependabilityConfig::cell(shards, false);
        assert_eq!(
            modern.schedule(),
            modern.schedule(),
            "dependability schedule must be a pure function of the seed at {shards} shards"
        );
        let reseeded = DependabilityConfig {
            seed: modern.seed ^ 1,
            ..modern.clone()
        };
        assert_ne!(
            modern.schedule(),
            reseeded.schedule(),
            "different seeds must give different schedules at {shards} shards"
        );
    }
    // Hang/crash mix is part of the schedule, not decided at injection
    // time.
    let config = CampaignConfig {
        runs: 50,
        hang_fraction: 0.5,
        ..CampaignConfig::default()
    };
    let kinds: Vec<FaultKind> = config.schedule().iter().map(|(_, k)| *k).collect();
    assert!(kinds.contains(&FaultKind::Hang));
    assert!(kinds.contains(&FaultKind::Crash));
}

/// The weight-table bugfix: on a booted sharded stack, every component in
/// the campaign's derived table — including replicas `*.1..n`, which the
/// old hardcoded table could never select — resolves to a live service.
#[test]
fn campaign_can_select_every_replica_on_a_booted_stack() {
    let stack = NewtStack::start(
        StackConfig::newtos()
            .shards(4)
            .link(newtos::net::link::LinkConfig::unshaped())
            .clock_speedup(50.0),
    );

    // The stack's own enumeration: 4 shards x 3 servers + pf + syscall +
    // 3 syscall ring-pump replicas + driver.
    let booted = stack.fault_targets();
    assert_eq!(booted.len(), 18, "unexpected topology: {booted:?}");

    let legacy = CampaignConfig {
        shards: 4,
        ..CampaignConfig::default()
    };
    for (component, weight) in legacy.effective_weights() {
        assert!(weight > 0);
        assert!(
            stack.component_status(component).is_some(),
            "legacy campaign target {component} does not resolve on the booted stack"
        );
    }

    let modern = DependabilityConfig::cell(4, false);
    for component in modern.fault_targets() {
        assert!(
            stack.component_status(component).is_some(),
            "dependability target {component} does not resolve on the booted stack"
        );
        assert!(
            booted.contains(&component),
            "{component} missing from NewtStack::fault_targets()"
        );
    }

    // And the recovery-stamp hook answers for shard replicas — with the
    // requested flag set, since a live update is asked for, not detected.
    assert!(stack.component_recovery(Component::TcpShard(3)).is_none());
    assert!(stack.live_update(Component::TcpShard(3)));
    assert!(stack.wait_component_running(Component::TcpShard(3), Duration::from_secs(10)));
    let stamp = stack
        .component_recovery(Component::TcpShard(3))
        .expect("a live update must leave a recovery stamp");
    assert!(stamp.requested, "a live update stamp must say requested");
    assert!(stamp.respawned_at >= stamp.detected_at);
    stack.shutdown();
}

/// The tentpole scenario end to end: every component of a 4-shard stack —
/// all twelve per-shard replicas, the driver, the packet filter and the
/// SYSCALL server — is live-updated one at a time under keep-alive HTTP
/// load, and the traffic must not notice: zero failed requests, zero
/// forced reconnects, byte-exact bodies, every restart stamped
/// *requested*, every service gap within the bound.
#[test]
fn rolling_upgrade_of_a_four_shard_stack_drops_nothing() {
    let config = dependability::RollingUpgradeConfig::quick(4);
    let report = dependability::run_rolling_upgrade(&config);
    assert_eq!(
        report.records.len(),
        15,
        "all 15 components must be rolled: {report:?}"
    );
    for kind in ["tcp.", "udp.", "ip.", "pf", "e1000.", "syscall"] {
        assert!(
            report.records.iter().any(|r| r.component.starts_with(kind)),
            "no {kind}* component in the roll: {report:?}"
        );
    }
    assert_eq!(
        report.failed_requests(),
        0,
        "a rolling upgrade must not drop a single request: {report:?}"
    );
    assert_eq!(
        report.reconnects, 0,
        "no surviving connection may be forced to reconnect: {report:?}"
    );
    assert_eq!(report.verify_failures, 0, "bodies must stay byte-exact");
    assert!(
        report.all_requested(),
        "every component must be replaced via a requested restart: {report:?}"
    );
    assert!(
        report.max_gap_ms() <= config.gap_bound_ms,
        "per-component service gap out of bounds: {report:?}"
    );
}
