//! Integration tests spanning the whole workspace: applications use the
//! facade crate's POSIX-like API, data crosses every server of the
//! decomposed stack, the simulated NIC, the link and the remote peer host.

use std::time::Duration;

use newtos::net::peer::{DNS_PORT, IPERF_PORT, SSH_PORT};
use newtos::net::pktgen::PayloadPattern;
use newtos::{NewtStack, StackConfig};
use newtos_suite::{test_config, wait_for};

#[test]
fn bulk_transfer_delivers_every_byte_in_order() {
    let stack = NewtStack::start(test_config());
    let client = stack.client().with_timeout(Duration::from_secs(20));
    let socket = client.tcp_socket().expect("socket");
    socket
        .connect(StackConfig::peer_addr(0), IPERF_PORT)
        .expect("connect");

    const TOTAL: usize = 256 * 1024;
    let pattern = PayloadPattern::new(0xbeef);
    let data = pattern.generate(0, TOTAL);
    socket.send_all(&data).expect("send");

    assert!(
        wait_for(
            || stack.peer(0).bytes_received_on(IPERF_PORT) >= TOTAL as u64,
            Duration::from_secs(60)
        ),
        "peer did not receive the whole transfer"
    );
    // The peer counts only in-order goodput, so equality implies no loss and
    // no reordering at the application level.
    assert_eq!(stack.peer(0).bytes_received_on(IPERF_PORT), TOTAL as u64);
    let telemetry = stack.telemetry();
    assert!(telemetry.tcp.segments_out > 0);
    assert!(telemetry.ip.packets_out as u64 >= telemetry.tcp.segments_out / 2);
    assert!(
        telemetry.pf.checked > 0,
        "the packet filter must sit on the data path"
    );
    stack.shutdown();
}

#[test]
fn echo_round_trip_preserves_data_integrity() {
    let stack = NewtStack::start(test_config());
    let client = stack.client().with_timeout(Duration::from_secs(20));
    let socket = client.tcp_socket().expect("socket");
    socket
        .connect(StackConfig::peer_addr(0), SSH_PORT)
        .expect("connect");

    let pattern = PayloadPattern::new(7);
    let request = pattern.generate(0, 16 * 1024);
    socket.send_all(&request).expect("send");
    let mut reply = vec![0u8; request.len()];
    socket.recv_exact(&mut reply).expect("recv");
    assert_eq!(
        pattern.verify(0, &reply),
        Ok(()),
        "echoed data was corrupted in flight"
    );
    socket.close().expect("close");
    stack.shutdown();
}

#[test]
fn udp_request_response_and_port_demultiplexing() {
    let stack = NewtStack::start(test_config());
    let client = stack.client().with_timeout(Duration::from_secs(20));

    let resolver = client.udp_socket().expect("socket a");
    resolver.bind(0).expect("bind a");
    let echoer = client.udp_socket().expect("socket b");
    echoer.bind(0).expect("bind b");

    resolver
        .send_to(b"host.example", StackConfig::peer_addr(0), DNS_PORT)
        .expect("send dns");
    echoer
        .send_to(
            b"echo me",
            StackConfig::peer_addr(0),
            newtos::net::peer::UDP_ECHO_PORT,
        )
        .expect("send echo");

    let (dns_answer, _, from_port) = resolver.recv_from().expect("dns answer");
    assert_eq!(from_port, DNS_PORT);
    assert_eq!(dns_answer, b"answer:host.example");
    let (echo_answer, _, _) = echoer.recv_from().expect("echo answer");
    assert_eq!(echo_answer, b"echo me");
    stack.shutdown();
}

#[test]
fn multiple_interfaces_route_to_their_own_peers() {
    let stack = NewtStack::start(test_config().nics(2));
    let client = stack.client().with_timeout(Duration::from_secs(20));

    for nic in 0..2 {
        let socket = client.tcp_socket().expect("socket");
        socket
            .connect(StackConfig::peer_addr(nic), IPERF_PORT)
            .expect("connect");
        socket.send_all(&vec![nic as u8; 32 * 1024]).expect("send");
        assert!(
            wait_for(
                || stack.peer(nic).bytes_received_on(IPERF_PORT) >= 32 * 1024,
                Duration::from_secs(60)
            ),
            "peer {nic} did not receive its transfer"
        );
    }
    // Each transfer went out of its own interface.
    assert!(stack.peer(0).bytes_received_on(IPERF_PORT) >= 32 * 1024);
    assert!(stack.peer(1).bytes_received_on(IPERF_PORT) >= 32 * 1024);
    stack.shutdown();
}

#[test]
fn concurrent_clients_share_the_stack() {
    let stack = NewtStack::start(test_config());
    let mut handles = Vec::new();
    for i in 0..3u8 {
        let client = stack.client().with_timeout(Duration::from_secs(20));
        handles.push(std::thread::spawn(move || {
            let socket = client.tcp_socket().expect("socket");
            socket
                .connect(StackConfig::peer_addr(0), SSH_PORT)
                .expect("connect");
            let line = vec![i; 512];
            socket.send_all(&line).expect("send");
            let mut reply = vec![0u8; line.len()];
            socket.recv_exact(&mut reply).expect("recv");
            assert_eq!(reply, line);
        }));
    }
    for handle in handles {
        handle.join().expect("client thread");
    }
    assert_eq!(stack.peer(0).established_connections(SSH_PORT), 3);
    stack.shutdown();
}

#[test]
fn telemetry_and_kernel_stats_reflect_traffic() {
    let stack = NewtStack::start(test_config());
    let client = stack.client().with_timeout(Duration::from_secs(20));
    let socket = client.tcp_socket().expect("socket");
    socket
        .connect(StackConfig::peer_addr(0), IPERF_PORT)
        .expect("connect");
    socket.send_all(&vec![0u8; 64 * 1024]).expect("send");
    assert!(wait_for(
        || stack.peer(0).bytes_received_on(IPERF_PORT) >= 64 * 1024,
        Duration::from_secs(60)
    ));
    // The synchronous POSIX calls went through the kernel (socket + connect),
    // but the data path did not: far fewer kernel messages than TCP segments.
    let kernel = stack.kernel_stats();
    let telemetry = stack.telemetry();
    assert!(
        kernel.messages >= 4,
        "socket/connect calls must use kernel IPC"
    );
    assert!(
        telemetry.tcp.segments_out > kernel.messages,
        "the data path must not be kernel-IPC bound (segments {} vs kernel messages {})",
        telemetry.tcp.segments_out,
        kernel.messages
    );
    stack.shutdown();
}
