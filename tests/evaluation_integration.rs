//! Integration tests of the evaluation harnesses themselves: the Table II
//! model, a miniature fault-injection campaign and a miniature crash-trace
//! experiment, exercised exactly as the `newt-bench` binaries drive them.

use std::time::Duration;

use newtos::faults::campaign::{run_campaign, CampaignConfig};
use newtos::faults::figures::{run_trace_experiment, TraceExperimentConfig};
use newtos::sim::{ablation, table2};
use newtos::Component;
use newtos::CostModel;

#[test]
fn table2_model_reproduces_the_paper_shape() {
    let rows = table2::run(&CostModel::default());
    assert_eq!(rows.len(), 7);
    // MINIX baseline orders of magnitude below NewtOS; TSO rows saturate the
    // five links; Linux 10 GbE on top.
    assert!(rows[0].model_mbps < 400.0);
    assert!(rows[1].model_mbps > 2000.0);
    assert!(rows[4].model_mbps >= 4900.0);
    assert!(rows[5].model_mbps >= 4900.0);
    assert!(rows[6].model_mbps > rows[5].model_mbps);
    let rendered = table2::render(&rows);
    assert!(rendered.contains("Linux"));
}

#[test]
fn ablations_are_monotone_where_the_paper_expects_it() {
    let model = CostModel::default();
    let ipc = ablation::ipc_cost_sweep(&model);
    assert!(ipc.first().unwrap().throughput_mbps >= ipc.last().unwrap().throughput_mbps);
    let cores = ablation::core_share_sweep(&model);
    assert!(cores.first().unwrap().throughput_mbps > cores.last().unwrap().throughput_mbps);
    let kinds = ablation::ipc_kind_comparison(&model);
    assert!(kinds[0].throughput_mbps > kinds[1].throughput_mbps);
}

#[test]
fn miniature_campaign_produces_table3_and_table4() {
    let config = CampaignConfig {
        clock_speedup: 60.0,
        ..CampaignConfig::quick(2)
    };
    let report = run_campaign(&config);
    assert_eq!(report.total(), 2);
    let table3 = report.render_table3();
    let table4 = report.render_table4();
    assert!(table3.contains("Total"));
    assert!(table4.contains("Transparent to UDP"));
    // Sanity: every run either recovered automatically, was manually fixed,
    // or is flagged as needing a reboot.
    for run in &report.runs {
        assert!(
            run.recovered_automatically || run.manually_fixed || run.reboot_needed || run.reachable
        );
    }
}

#[test]
fn miniature_crash_trace_has_the_figure5_shape() {
    // One packet-filter crash in the middle of a short transfer: traffic
    // keeps flowing and the component restarts.
    let config = TraceExperimentConfig {
        duration: Duration::from_secs(5),
        fault_times: vec![Duration::from_secs(2)],
        target: Component::PacketFilter,
        bucket: Duration::from_millis(500),
        clock_speedup: 10.0,
        filter_rules: 128,
    };
    let result = run_trace_experiment(&config);
    assert!(result.restarts >= 1);
    assert!(result.total_bytes > 0);
    let after_crash: f64 = result
        .series
        .iter()
        .filter(|p| p.time_s >= 2.5)
        .map(|p| p.mbps)
        .sum();
    assert!(
        after_crash > 0.0,
        "traffic must keep flowing after the packet-filter crash"
    );
}
